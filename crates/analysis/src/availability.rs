//! Availability metrics over the parsed serial log.
//!
//! Figure 3 is titled "non-root cell *availability*": the cell counts
//! as available while it keeps producing observable output. This
//! module computes windowed liveness from the log — including the
//! "USART output left completely blank" predicate of experiment E2.

use crate::logparse::{LogEvent, LogSource};
use certify_core::{CampaignStats, Outcome};
use serde::{Deserialize, Serialize};

/// Campaign-level availability from online statistics: the share of
/// trials whose outcome left the non-root cell observably available —
/// *correct* runs and *silent data corruption* (every observation
/// channel stayed green, so the cell was still producing output; the
/// corruption is latent). Panic park, CPU park, the inconsistent
/// state, translation storms and rejected bring-ups all count as
/// unavailable. Composes with the streamed engine: no per-trial
/// reports needed.
pub fn campaign_availability(stats: &CampaignStats) -> f64 {
    stats.fraction(Outcome::Correct) + stats.fraction(Outcome::SilentDataCorruption)
}

/// Windowed availability of one log source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityReport {
    /// The analysed source.
    pub source: LogSource,
    /// Window size in simulator steps.
    pub window: u64,
    /// Observation span `[start, end)`.
    pub start: u64,
    /// End of the observation span.
    pub end: u64,
    /// Per-window event counts.
    pub per_window: Vec<u64>,
}

impl AvailabilityReport {
    /// Computes the report for `source` over `[start, end)` with the
    /// given window size.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero or `end < start`.
    pub fn compute(
        events: &[(u64, LogEvent)],
        source: LogSource,
        start: u64,
        end: u64,
        window: u64,
    ) -> AvailabilityReport {
        assert!(window > 0, "window must be non-zero");
        assert!(end >= start, "end before start");
        let windows = (end - start).div_ceil(window);
        let mut per_window = vec![0u64; windows as usize];
        for (step, event) in events {
            if *step < start || *step >= end || event.source() != source {
                continue;
            }
            per_window[((step - start) / window) as usize] += 1;
        }
        AvailabilityReport {
            source,
            window,
            start,
            end,
            per_window,
        }
    }

    /// Fraction of windows with at least one event.
    pub fn availability(&self) -> f64 {
        if self.per_window.is_empty() {
            return 0.0;
        }
        let live = self.per_window.iter().filter(|&&c| c > 0).count();
        live as f64 / self.per_window.len() as f64
    }

    /// Total events in the span.
    pub fn total_events(&self) -> u64 {
        self.per_window.iter().sum()
    }

    /// The E2 predicate: completely silent over the whole span.
    pub fn is_blank(&self) -> bool {
        self.total_events() == 0
    }

    /// The longest run of consecutive silent windows.
    pub fn longest_gap_windows(&self) -> usize {
        let mut best = 0;
        let mut current = 0;
        for &count in &self.per_window {
            if count == 0 {
                current += 1;
                best = best.max(current);
            } else {
                current = 0;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logparse::parse_log;

    fn rtos_events(steps: &[u64]) -> Vec<(u64, LogEvent)> {
        let lines: Vec<(u64, String)> = steps
            .iter()
            .map(|&s| (s, "[rtos] blink #32".to_string()))
            .collect();
        parse_log(&lines)
    }

    #[test]
    fn full_availability_when_every_window_has_output() {
        let events = rtos_events(&[5, 15, 25, 35]);
        let report = AvailabilityReport::compute(&events, LogSource::Rtos, 0, 40, 10);
        assert_eq!(report.per_window, vec![1, 1, 1, 1]);
        assert!((report.availability() - 1.0).abs() < f64::EPSILON);
        assert!(!report.is_blank());
        assert_eq!(report.longest_gap_windows(), 0);
    }

    #[test]
    fn blank_log_is_blank() {
        let events = rtos_events(&[]);
        let report = AvailabilityReport::compute(&events, LogSource::Rtos, 0, 100, 10);
        assert!(report.is_blank());
        assert_eq!(report.availability(), 0.0);
        assert_eq!(report.longest_gap_windows(), 10);
    }

    #[test]
    fn gap_detection_finds_the_silent_stretch() {
        let events = rtos_events(&[5, 15, 65, 75]);
        let report = AvailabilityReport::compute(&events, LogSource::Rtos, 0, 80, 10);
        // Windows: 1 1 0 0 0 0 1 1
        assert_eq!(report.longest_gap_windows(), 4);
        assert!((report.availability() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn other_sources_are_filtered_out() {
        let lines = vec![
            (5, "[linux] Booting Linux on physical CPU 0x0".to_string()),
            (6, "[rtos] blink #32".to_string()),
        ];
        let events = parse_log(&lines);
        let report = AvailabilityReport::compute(&events, LogSource::Rtos, 0, 10, 10);
        assert_eq!(report.total_events(), 1);
    }

    #[test]
    fn events_outside_span_ignored() {
        let events = rtos_events(&[5, 95]);
        let report = AvailabilityReport::compute(&events, LogSource::Rtos, 10, 90, 10);
        assert_eq!(report.total_events(), 0);
    }

    #[test]
    #[should_panic(expected = "window must be non-zero")]
    fn zero_window_rejected() {
        let _ = AvailabilityReport::compute(&[], LogSource::Rtos, 0, 10, 0);
    }

    #[test]
    fn campaign_availability_counts_green_channel_outcomes() {
        use certify_core::campaign::{Campaign, Scenario};
        use certify_core::NullSink;
        // E1 rejects every bring-up: the cell never exists, so the
        // campaign-level availability is zero.
        let stats = Campaign::new(Scenario::e1_root_high(), 3, 1).run_streamed(&mut NullSink);
        assert_eq!(campaign_availability(&stats), 0.0);
        // A golden campaign is fully available.
        let stats = Campaign::new(Scenario::golden(800), 2, 1).run_streamed(&mut NullSink);
        assert_eq!(campaign_availability(&stats), 1.0);
    }
}

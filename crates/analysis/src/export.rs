//! CSV export of campaign results.
//!
//! Every campaign can be dumped to a flat per-trial CSV for external
//! analysis (spreadsheets, R, pandas). Fields are quoted only when
//! needed; the writer is deliberately dependency-free.

use certify_core::campaign::CampaignResult;

/// Escapes one CSV field (RFC-4180 quoting).
fn field(value: &str) -> String {
    if value.contains(',') || value.contains('"') || value.contains('\n') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a campaign as per-trial CSV rows.
///
/// Columns: `seed,outcome,injections,cell_state,cpu1_park,
/// serial_lines,watchdog_expiry,monitor_alarms,notes`.
pub fn campaign_to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "seed,outcome,injections,cell_state,cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,notes\n",
    );
    for trial in &result.trials {
        let cell_state = trial
            .report
            .cell_state
            .map(|s| s.to_string())
            .unwrap_or_default();
        let cpu1_park = trial.report.cpu1_park.clone().unwrap_or_default();
        let watchdog = trial
            .report
            .watchdog_first_expiry
            .map(|s| s.to_string())
            .unwrap_or_default();
        let notes = trial.report.notes.join("; ");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            trial.seed,
            field(&trial.outcome.to_string()),
            trial.injection_count,
            field(&cell_state),
            field(&cpu1_park),
            trial.report.serial_line_count,
            watchdog,
            trial.report.monitor_alarms,
            field(&notes),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::campaign::{Campaign, Scenario};

    #[test]
    fn csv_has_one_row_per_trial_plus_header() {
        let result = Campaign::new(Scenario::e1_root_high(), 3, 1).run();
        let csv = campaign_to_csv(&result);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("seed,outcome"));
        assert!(csv.contains("invalid arguments"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn csv_is_parseable_back_to_the_same_row_count() {
        let result = Campaign::new(Scenario::golden(800), 2, 5).run();
        let csv = campaign_to_csv(&result);
        // Quoted fields may contain separators but not newlines, so a
        // line count check is a faithful row count.
        assert_eq!(csv.lines().count() - 1, result.trials.len());
    }
}

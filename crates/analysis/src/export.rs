//! CSV export of campaign results — buffered or row-streaming.
//!
//! Every campaign can be dumped to a flat per-trial CSV for external
//! analysis (spreadsheets, R, pandas). The writer is deliberately
//! dependency-free, and it streams: [`CsvSink`] implements
//! [`TrialSink`], emitting each trial's row the moment the campaign
//! engine delivers it and dropping the report — a million-trial
//! campaign exports in O(workers) resident reports. The buffered
//! [`campaign_to_csv`] renders the same bytes from an in-memory
//! [`CampaignResult`] through the identical row writer.

use certify_core::campaign::{CampaignResult, TrialResult};
use certify_core::TrialSink;
use std::fmt::Write as _;
use std::io::{self, Write};

/// The CSV header row (with trailing newline) shared by the buffered
/// and streaming writers.
pub const CSV_HEADER: &str = "seed,outcome,injections,mem_injections,cell_state,cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,applied_faults,notes\n";

/// Escapes one CSV field (RFC-4180 quoting). A bare carriage return
/// must be quoted like a line feed — RFC 4180 treats CRLF (and by
/// extension any CR) as a record terminator, so an unquoted `\r` in a
/// note or fault rendering would split the row.
fn field(value: &str) -> String {
    if value.contains(',') || value.contains('"') || value.contains('\n') || value.contains('\r') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Appends one trial's CSV row (including the trailing newline) to
/// `out`.
///
/// Columns: `seed,outcome,injections,mem_injections,cell_state,
/// cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,
/// applied_faults,notes`. The `applied_faults` column renders every
/// register and memory fault of the trial through its `Display` impl,
/// joined with `"; "`.
pub fn trial_to_csv_row(trial: &TrialResult, out: &mut String) {
    let cell_state = trial
        .report
        .cell_state
        .map(|s| s.to_string())
        .unwrap_or_default();
    let cpu1_park = trial.report.cpu1_park.clone().unwrap_or_default();
    let watchdog = trial
        .report
        .watchdog_first_expiry
        .map(|s| s.to_string())
        .unwrap_or_default();
    let applied_faults = trial
        .report
        .injections
        .iter()
        .flat_map(|r| r.faults.iter().map(|f| f.to_string()))
        .chain(
            trial
                .report
                .mem_injections
                .iter()
                .flat_map(|r| r.faults.iter().map(|f| f.to_string())),
        )
        .collect::<Vec<String>>()
        .join("; ");
    let notes = trial.report.notes.join("; ");
    let _ = writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{}",
        trial.seed,
        field(&trial.outcome.to_string()),
        trial.injection_count,
        trial.mem_injection_count,
        field(&cell_state),
        field(&cpu1_park),
        trial.report.serial_line_count,
        watchdog,
        trial.report.monitor_alarms,
        field(&applied_faults),
        field(&notes),
    );
}

/// Renders a buffered campaign as per-trial CSV rows (header
/// included). Byte-identical to streaming the same trials through a
/// [`CsvSink`].
pub fn campaign_to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(CSV_HEADER);
    for trial in &result.trials {
        trial_to_csv_row(trial, &mut out);
    }
    out
}

/// A row-streaming CSV writer: a [`TrialSink`] that writes each
/// trial's row on delivery and drops the report, keeping campaign
/// exports bounded-memory.
///
/// I/O errors don't panic the campaign: the first error is latched,
/// further rows are skipped, and [`CsvSink::finish`] surfaces it. A
/// write that fails *midway through a row* leaves a truncated partial
/// row in the output; the sink tracks the bytes actually accepted and
/// reports the truncation through the latched error (and
/// [`CsvSink::truncated_row_bytes`]) so `finish()` can never hand
/// back a silently corrupt CSV.
#[derive(Debug)]
pub struct CsvSink<W: Write> {
    out: W,
    /// Row scratch buffer, reused across every trial of the campaign.
    row: String,
    rows: usize,
    /// Bytes the writer has accepted (header, full rows, and any
    /// truncated partial row) — the sink's `bytes_written` telemetry.
    bytes: u64,
    error: Option<io::Error>,
    /// Bytes of a partially written row left in the output when the
    /// latched error struck mid-row (0 = the output ends on a row
    /// boundary and is valid CSV up to that point).
    truncated_row_bytes: usize,
}

impl<W: Write> CsvSink<W> {
    /// Wraps `out`, writing the header row immediately.
    pub fn new(mut out: W) -> io::Result<CsvSink<W>> {
        out.write_all(CSV_HEADER.as_bytes())?;
        Ok(CsvSink {
            out,
            row: String::new(),
            rows: 0,
            bytes: CSV_HEADER.len() as u64,
            error: None,
            truncated_row_bytes: 0,
        })
    }

    /// Data rows accepted so far (not counting the header).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Bytes the underlying writer has accepted so far — the header,
    /// every complete row, and any truncated partial row.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Bytes of an incomplete final row left in the output by a
    /// mid-row write failure (0 when the output ends cleanly).
    pub fn truncated_row_bytes(&self) -> usize {
        self.truncated_row_bytes
    }

    /// The latched error, if any write has failed. Boundary runners
    /// (a shard worker, a campaign driver) must consult this — or
    /// call [`CsvSink::finish`] — after the run and fail loudly: a
    /// latched sink has silently dropped every row since the error,
    /// so treating the campaign as complete would report a truncated
    /// export as a successful one.
    pub fn latched_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Writes one full row, tracking how many bytes the writer
    /// actually accepted so a mid-row failure is distinguishable from
    /// a clean between-rows failure.
    fn write_row(&mut self) -> io::Result<()> {
        let mut written = 0;
        let bytes = self.row.as_bytes();
        while written < bytes.len() {
            match self.out.write(&bytes[written..]) {
                Ok(0) => {
                    self.truncated_row_bytes = written;
                    self.bytes += written as u64;
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        format!(
                            "csv row {} truncated after {written} of {} bytes",
                            self.rows + 1,
                            bytes.len()
                        ),
                    ));
                }
                Ok(n) => written += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.truncated_row_bytes = written;
                    self.bytes += written as u64;
                    return Err(if written > 0 {
                        io::Error::new(
                            e.kind(),
                            format!(
                                "csv row {} truncated after {written} of {} bytes: {e}",
                                self.rows + 1,
                                bytes.len()
                            ),
                        )
                    } else {
                        e
                    });
                }
            }
        }
        self.bytes += bytes.len() as u64;
        Ok(())
    }

    /// Flushes and returns the underlying writer, or the first I/O
    /// error hit while streaming (including a mid-row truncation —
    /// see [`CsvSink::truncated_row_bytes`]).
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(error) = self.error.take() {
            return Err(error);
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

impl CsvSink<Vec<u8>> {
    /// An in-memory sink (header already written).
    pub fn in_memory() -> CsvSink<Vec<u8>> {
        CsvSink::new(Vec::new()).expect("writing to a Vec cannot fail")
    }

    /// The accumulated CSV text of an in-memory sink.
    pub fn into_csv(self) -> String {
        let bytes = self.finish().expect("writing to a Vec cannot fail");
        String::from_utf8(bytes).expect("CSV rows are UTF-8")
    }
}

impl<W: Write> TrialSink for CsvSink<W> {
    fn accept(&mut self, _seq: usize, trial: TrialResult) {
        if self.error.is_some() {
            return;
        }
        self.row.clear();
        trial_to_csv_row(&trial, &mut self.row);
        match self.write_row() {
            Ok(()) => self.rows += 1,
            Err(error) => self.error = Some(error),
        }
        // `trial` (and its full RunReport) drops here: the sink keeps
        // only the scratch row buffer.
    }

    fn bytes_written(&self) -> Option<u64> {
        Some(self.bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::campaign::{Campaign, Scenario};

    #[test]
    fn csv_has_one_row_per_trial_plus_header() {
        let result = Campaign::new(Scenario::e1_root_high(), 3, 1).run();
        let csv = campaign_to_csv(&result);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("seed,outcome"));
        assert!(csv.contains("invalid arguments"));
    }

    #[test]
    fn streamed_csv_is_byte_identical_to_buffered() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 11);
        let buffered = campaign_to_csv(&campaign.run());
        let mut sink = CsvSink::in_memory();
        campaign.run_parallel_streamed(4, &mut sink);
        assert_eq!(sink.rows(), 4);
        assert_eq!(sink.into_csv(), buffered);
    }

    #[test]
    fn sink_latches_io_errors_instead_of_panicking() {
        /// Fails every write after the header.
        struct FailAfterHeader {
            wrote_header: bool,
        }
        impl Write for FailAfterHeader {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.wrote_header {
                    Err(io::Error::other("disk full"))
                } else {
                    self.wrote_header = true;
                    Ok(buf.len())
                }
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = CsvSink::new(FailAfterHeader {
            wrote_header: false,
        })
        .unwrap();
        Campaign::new(Scenario::golden(800), 2, 5).run_streamed(&mut sink);
        assert_eq!(sink.rows(), 0);
        // The failure struck before any row byte landed: the output is
        // valid (if empty) CSV, and the error still surfaces.
        assert_eq!(sink.truncated_row_bytes(), 0);
        assert!(sink.finish().is_err());
    }

    #[test]
    fn latched_error_is_visible_at_the_boundary_before_finish() {
        // A worker process must be able to decide its exit code from
        // the sink state *without* consuming the sink: `latched_error`
        // exposes the latch, and deliveries after the latch are
        // dropped (rows() freezes) rather than partially written.
        struct FailAfter {
            budget: usize,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::other("disk full"));
                }
                let n = buf.len().min(self.budget);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let campaign = Campaign::new(Scenario::golden(800), 3, 5);
        // Budget for the header plus roughly one row: the second row
        // latches, the third is skipped entirely.
        let mut sink = CsvSink::new(FailAfter {
            budget: CSV_HEADER.len() + 40,
        })
        .unwrap();
        assert!(sink.latched_error().is_none(), "clean sink has no latch");
        campaign.run_streamed(&mut sink);
        let error = sink.latched_error().expect("error must latch");
        assert_eq!(error.to_string(), sink.latched_error().unwrap().to_string());
        let rows_at_latch = sink.rows();
        // Feeding more trials after the latch changes nothing.
        campaign.run_streamed(&mut sink);
        assert_eq!(sink.rows(), rows_at_latch, "post-latch rows must drop");
        assert!(sink.finish().is_err(), "finish surfaces the same latch");
    }

    #[test]
    fn mid_row_write_failure_surfaces_the_truncation() {
        /// Accepts the header, then 7 bytes of the first row, then
        /// fails every write — leaving a truncated partial row behind.
        #[derive(Debug)]
        struct TruncateMidRow {
            accepted: Vec<u8>,
            budget: usize,
        }
        impl Write for TruncateMidRow {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::other("disk full"));
                }
                let n = buf.len().min(self.budget);
                self.accepted.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let mut sink = CsvSink::new(TruncateMidRow {
            accepted: Vec::new(),
            budget: CSV_HEADER.len() + 7,
        })
        .unwrap();
        Campaign::new(Scenario::golden(800), 2, 5).run_streamed(&mut sink);
        // No row was fully accepted, and the sink knows exactly how
        // many stray bytes sit past the last row boundary.
        assert_eq!(sink.rows(), 0);
        assert_eq!(sink.truncated_row_bytes(), 7);
        let err = sink.finish().expect_err("truncation must surface");
        let message = err.to_string();
        assert!(
            message.contains("truncated after 7"),
            "error does not describe the truncation: {message}"
        );
    }

    #[test]
    fn interrupted_writes_are_retried_not_latched() {
        /// Interrupts every other write, accepting one byte at a time
        /// otherwise — the sink must retry through `Interrupted` and
        /// deliver every row intact.
        struct Flaky {
            accepted: Vec<u8>,
            tick: usize,
        }
        impl Write for Flaky {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                self.tick += 1;
                if self.tick.is_multiple_of(2) {
                    return Err(io::Error::new(io::ErrorKind::Interrupted, "signal"));
                }
                self.accepted.push(buf[0]);
                Ok(1)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let campaign = Campaign::new(Scenario::golden(800), 2, 5);
        let mut sink = CsvSink::new(Flaky {
            accepted: Vec::new(),
            tick: 0,
        })
        .unwrap();
        campaign.run_streamed(&mut sink);
        assert_eq!(sink.rows(), 2);
        assert_eq!(sink.truncated_row_bytes(), 0);
        let out = sink.finish().expect("no hard error");
        let text = String::from_utf8(out.accepted).unwrap();
        assert_eq!(text, campaign_to_csv(&campaign.run()));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn fields_with_bare_carriage_returns_are_quoted() {
        // RFC 4180: CR participates in the record terminator, so a
        // bare `\r` inside a field must force quoting or the row
        // splits in consumers that accept lone-CR line endings.
        assert_eq!(field("a\rb"), "\"a\rb\"");
        assert_eq!(field("a\r\nb"), "\"a\r\nb\"");
        assert_eq!(field("\r"), "\"\r\"");
    }

    #[test]
    fn rfc4180_quoting_round_trips_every_special_character() {
        // RFC 4180: fields with comma, quote or newline are wrapped in
        // double quotes and embedded quotes are doubled.
        assert_eq!(field("a\nb"), "\"a\nb\"");
        assert_eq!(field("\""), "\"\"\"\"");
        assert_eq!(
            field("r0, r1: \"both\"\ncorrupted"),
            "\"r0, r1: \"\"both\"\"\ncorrupted\""
        );
        // Unquoting a quoted field restores the original.
        let original = "notes, with \"quotes\" and, commas";
        let quoted = field(original);
        let inner = quoted
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap();
        assert_eq!(inner.replace("\"\"", "\""), original);
    }

    #[test]
    fn applied_faults_column_renders_register_and_memory_faults() {
        use certify_core::memfault::{MemFaultModel, MemTarget};
        use certify_core::Scenario;
        let header = campaign_to_csv(&Campaign::new(Scenario::golden(800), 1, 1).run());
        assert!(header.starts_with(
            "seed,outcome,injections,mem_injections,cell_state,cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,applied_faults,notes"
        ));

        // A register campaign renders register faults…
        let reg = campaign_to_csv(&Campaign::new(Scenario::e1_root_high(), 2, 1).run());
        assert!(reg.contains("bit"), "no register fault rendered:\n{reg}");

        // …and a memory campaign renders memory faults; the multi-
        // fault column is comma-free or quoted, so row counts hold.
        let mem = campaign_to_csv(
            &Campaign::new(
                Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
                4,
                0xE6,
            )
            .run(),
        );
        assert!(
            mem.contains("ram") || mem.contains("s2-desc") || mem.contains("comm"),
            "no memory fault rendered:\n{mem}"
        );
        assert_eq!(mem.lines().count(), 5, "one row per trial plus header");
    }

    #[test]
    fn csv_is_parseable_back_to_the_same_row_count() {
        let result = Campaign::new(Scenario::golden(800), 2, 5).run();
        let csv = campaign_to_csv(&result);
        // Quoted fields may contain separators but not newlines, so a
        // line count check is a faithful row count.
        assert_eq!(csv.lines().count() - 1, result.trials.len());
    }
}

//! CSV export of campaign results.
//!
//! Every campaign can be dumped to a flat per-trial CSV for external
//! analysis (spreadsheets, R, pandas). Fields are quoted only when
//! needed; the writer is deliberately dependency-free.

use certify_core::campaign::CampaignResult;

/// Escapes one CSV field (RFC-4180 quoting).
fn field(value: &str) -> String {
    if value.contains(',') || value.contains('"') || value.contains('\n') {
        format!("\"{}\"", value.replace('"', "\"\""))
    } else {
        value.to_string()
    }
}

/// Renders a campaign as per-trial CSV rows.
///
/// Columns: `seed,outcome,injections,mem_injections,cell_state,
/// cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,
/// applied_faults,notes`. The `applied_faults` column renders every
/// register and memory fault of the trial through its `Display` impl,
/// joined with `"; "`.
pub fn campaign_to_csv(result: &CampaignResult) -> String {
    let mut out = String::from(
        "seed,outcome,injections,mem_injections,cell_state,cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,applied_faults,notes\n",
    );
    for trial in &result.trials {
        let cell_state = trial
            .report
            .cell_state
            .map(|s| s.to_string())
            .unwrap_or_default();
        let cpu1_park = trial.report.cpu1_park.clone().unwrap_or_default();
        let watchdog = trial
            .report
            .watchdog_first_expiry
            .map(|s| s.to_string())
            .unwrap_or_default();
        let applied_faults = trial
            .report
            .injections
            .iter()
            .flat_map(|r| r.faults.iter().map(|f| f.to_string()))
            .chain(
                trial
                    .report
                    .mem_injections
                    .iter()
                    .flat_map(|r| r.faults.iter().map(|f| f.to_string())),
            )
            .collect::<Vec<String>>()
            .join("; ");
        let notes = trial.report.notes.join("; ");
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{}\n",
            trial.seed,
            field(&trial.outcome.to_string()),
            trial.injection_count,
            trial.mem_injection_count,
            field(&cell_state),
            field(&cpu1_park),
            trial.report.serial_line_count,
            watchdog,
            trial.report.monitor_alarms,
            field(&applied_faults),
            field(&notes),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::campaign::{Campaign, Scenario};

    #[test]
    fn csv_has_one_row_per_trial_plus_header() {
        let result = Campaign::new(Scenario::e1_root_high(), 3, 1).run();
        let csv = campaign_to_csv(&result);
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.starts_with("seed,outcome"));
        assert!(csv.contains("invalid arguments"));
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(field("a,b"), "\"a,b\"");
        assert_eq!(field("plain"), "plain");
        assert_eq!(field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn rfc4180_quoting_round_trips_every_special_character() {
        // RFC 4180: fields with comma, quote or newline are wrapped in
        // double quotes and embedded quotes are doubled.
        assert_eq!(field("a\nb"), "\"a\nb\"");
        assert_eq!(field("\""), "\"\"\"\"");
        assert_eq!(
            field("r0, r1: \"both\"\ncorrupted"),
            "\"r0, r1: \"\"both\"\"\ncorrupted\""
        );
        // Unquoting a quoted field restores the original.
        let original = "notes, with \"quotes\" and, commas";
        let quoted = field(original);
        let inner = quoted
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .unwrap();
        assert_eq!(inner.replace("\"\"", "\""), original);
    }

    #[test]
    fn applied_faults_column_renders_register_and_memory_faults() {
        use certify_core::memfault::{MemFaultModel, MemTarget};
        use certify_core::Scenario;
        let header = campaign_to_csv(&Campaign::new(Scenario::golden(800), 1, 1).run());
        assert!(header.starts_with(
            "seed,outcome,injections,mem_injections,cell_state,cpu1_park,serial_lines,watchdog_expiry,monitor_alarms,applied_faults,notes"
        ));

        // A register campaign renders register faults…
        let reg = campaign_to_csv(&Campaign::new(Scenario::e1_root_high(), 2, 1).run());
        assert!(reg.contains("bit"), "no register fault rendered:\n{reg}");

        // …and a memory campaign renders memory faults; the multi-
        // fault column is comma-free or quoted, so row counts hold.
        let mem = campaign_to_csv(
            &Campaign::new(
                Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
                4,
                0xE6,
            )
            .run(),
        );
        assert!(
            mem.contains("ram") || mem.contains("s2-desc") || mem.contains("comm"),
            "no memory fault rendered:\n{mem}"
        );
        assert_eq!(mem.lines().count(), 5, "one row per trial plus header");
    }

    #[test]
    fn csv_is_parseable_back_to_the_same_row_count() {
        let result = Campaign::new(Scenario::golden(800), 2, 5).run();
        let csv = campaign_to_csv(&result);
        // Quoted fields may contain separators but not newlines, so a
        // line count check is a faithful row count.
        assert_eq!(csv.lines().count() - 1, result.trials.len());
    }
}

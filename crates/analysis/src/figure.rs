//! Figure 3 regeneration.
//!
//! The paper's only results figure is a distribution of non-root-cell
//! availability outcomes under medium-intensity injection: a clear
//! majority of *correct* runs, about 30 % *panic park*, and a limited
//! share of *CPU park*. This module renders the measured distribution
//! next to the paper's reported shares, as an aligned table, an ASCII
//! bar chart, and CSV.

use certify_core::campaign::CampaignResult;
use certify_core::{CampaignStats, Outcome};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The paper's Figure 3 shares (read off the chart): correct ≈ 65 %,
/// panic park ≈ 30 %, CPU park ≈ 5 %.
pub const PAPER_FIG3_SHARES: [(Outcome, f64); 3] = [
    (Outcome::Correct, 0.65),
    (Outcome::PanicPark, 0.30),
    (Outcome::CpuPark, 0.05),
];

/// A regenerated Figure 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure3 {
    /// Scenario name.
    pub scenario: String,
    /// Number of trials.
    pub trials: usize,
    /// `(outcome, measured_share, paper_share)` rows.
    pub rows: Vec<(Outcome, f64, Option<f64>)>,
}

impl Figure3 {
    /// Builds the figure data from online campaign statistics — no
    /// per-trial reports needed, so it composes with the streamed
    /// engine (`Campaign::run_parallel_streamed`).
    pub fn from_stats(stats: &CampaignStats) -> Figure3 {
        let mut rows = Vec::new();
        for outcome in Outcome::ALL {
            let measured = stats.fraction(outcome);
            let paper = PAPER_FIG3_SHARES
                .iter()
                .find(|(o, _)| *o == outcome)
                .map(|(_, share)| *share);
            if measured > 0.0 || paper.is_some() {
                rows.push((outcome, measured, paper));
            }
        }
        Figure3 {
            scenario: stats.scenario_name.clone(),
            trials: stats.trials,
            rows,
        }
    }

    /// Builds the figure data from a buffered campaign result.
    pub fn from_campaign(result: &CampaignResult) -> Figure3 {
        Figure3::from_stats(&result.stats())
    }

    /// Renders an ASCII bar chart (one `#` per 2 %).
    pub fn render_chart(&self) -> String {
        let mut out = format!(
            "Figure 3 — non-root cell availability ({}, {} trials)\n",
            self.scenario, self.trials
        );
        for (outcome, measured, paper) in &self.rows {
            let bar = "#".repeat((measured * 50.0).round() as usize);
            let paper_note = paper
                .map(|p| format!(" (paper ≈ {:.0}%)", p * 100.0))
                .unwrap_or_default();
            out.push_str(&format!(
                "{:>20} |{:<50}| {:5.1}%{}\n",
                outcome.to_string(),
                bar,
                measured * 100.0,
                paper_note
            ));
        }
        out
    }

    /// Renders CSV: `outcome,measured,paper`.
    pub fn render_csv(&self) -> String {
        let mut out = String::from("outcome,measured_share,paper_share\n");
        for (outcome, measured, paper) in &self.rows {
            out.push_str(&format!(
                "{},{:.4},{}\n",
                outcome,
                measured,
                paper.map(|p| format!("{p:.4}")).unwrap_or_default()
            ));
        }
        out
    }

    /// Whether the measured distribution reproduces the paper's
    /// *shape*: correct is the majority, panic park is second and
    /// substantial, CPU park is a limited share, and the ordering
    /// correct > panic park > CPU park holds.
    pub fn matches_paper_shape(&self) -> bool {
        let share = |o: Outcome| {
            self.rows
                .iter()
                .find(|(outcome, _, _)| *outcome == o)
                .map(|(_, m, _)| *m)
                .unwrap_or(0.0)
        };
        let correct = share(Outcome::Correct);
        let panic = share(Outcome::PanicPark);
        let park = share(Outcome::CpuPark);
        correct > 0.5 && panic > 0.1 && panic < 0.5 && park > 0.0 && park < panic
    }
}

impl fmt::Display for Figure3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_chart())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::campaign::{CampaignResult, TrialResult};
    use certify_core::classify::RunReport;

    fn fake_result(outcomes: &[(Outcome, usize)]) -> CampaignResult {
        let mut trials = Vec::new();
        let mut seed = 0;
        for (outcome, count) in outcomes {
            for _ in 0..*count {
                trials.push(TrialResult {
                    seed,
                    outcome: *outcome,
                    injection_count: 1,
                    mem_injection_count: 0,
                    report: RunReport {
                        outcome: *outcome,
                        injections: Vec::new(),
                        mem_injections: Vec::new(),
                        notes: Vec::new(),
                        cell_state: None,
                        cpu1_park: None,
                        serial_line_count: 0,
                        watchdog_first_expiry: None,
                        monitor_alarms: 0,
                    },
                });
                seed += 1;
            }
        }
        CampaignResult {
            scenario_name: "fake".into(),
            trials,
        }
    }

    #[test]
    fn stats_and_campaign_paths_agree() {
        let result = fake_result(&[
            (Outcome::Correct, 13),
            (Outcome::PanicPark, 6),
            (Outcome::CpuPark, 1),
        ]);
        assert_eq!(
            Figure3::from_campaign(&result),
            Figure3::from_stats(&result.stats())
        );
    }

    #[test]
    fn paper_shares_sum_to_one() {
        let sum: f64 = PAPER_FIG3_SHARES.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn figure_rows_track_measured_shares() {
        let result = fake_result(&[
            (Outcome::Correct, 13),
            (Outcome::PanicPark, 6),
            (Outcome::CpuPark, 1),
        ]);
        let fig = Figure3::from_campaign(&result);
        let correct = fig
            .rows
            .iter()
            .find(|(o, _, _)| *o == Outcome::Correct)
            .unwrap();
        assert!((correct.1 - 0.65).abs() < 1e-9);
        assert_eq!(correct.2, Some(0.65));
    }

    #[test]
    fn paper_shape_detection() {
        let good = fake_result(&[
            (Outcome::Correct, 13),
            (Outcome::PanicPark, 6),
            (Outcome::CpuPark, 1),
        ]);
        assert!(Figure3::from_campaign(&good).matches_paper_shape());

        let inverted = fake_result(&[
            (Outcome::Correct, 3),
            (Outcome::PanicPark, 16),
            (Outcome::CpuPark, 1),
        ]);
        assert!(!Figure3::from_campaign(&inverted).matches_paper_shape());
    }

    #[test]
    fn renders_contain_all_rows() {
        let result = fake_result(&[
            (Outcome::Correct, 13),
            (Outcome::PanicPark, 6),
            (Outcome::CpuPark, 1),
        ]);
        let fig = Figure3::from_campaign(&result);
        let chart = fig.render_chart();
        assert!(chart.contains("correct"));
        assert!(chart.contains("panic park"));
        assert!(chart.contains("cpu park"));
        assert!(chart.contains("paper"));
        let csv = fig.render_csv();
        assert_eq!(csv.lines().count(), 1 + fig.rows.len());
    }
}

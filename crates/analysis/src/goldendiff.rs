//! Golden-diff propagation analysis: where did a faulty trial first
//! leave the golden path?
//!
//! An anomalous trial's [`TraceDump`] is a causal event stream; the
//! same scenario stripped of its injectors
//! ([`Scenario::fault_free`]) re-run at the *same seed* produces the
//! golden stream the trial would have followed without faults.
//! [`golden_diff`] runs that fault-free twin, aligns the two streams
//! event by event and reports the first divergence — typically the
//! injection itself, with the divergent suffix showing how the fault
//! propagated from there to the classified outcome (trap → park →
//! watchdog bite, or the silent scheduler drift of an SDC).
//!
//! The comparison is exact: both streams are pure functions of the
//! seed, so any difference is caused by the injectors and nothing
//! else.

use certify_core::campaign::Scenario;
use certify_core::trace::{DumpPolicy, TraceConfig, TraceDump};
use certify_core::Outcome;
use certify_obs::trace::{TraceEvent, NO_CPU};
use std::fmt;

/// The first point where the faulty stream leaves the golden one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Event index (into both streams) of the first mismatch.
    pub index: usize,
    /// Machine step of the first divergent event (the earlier of the
    /// two sides when both exist).
    pub step: u64,
    /// The faulty side's event at that index (`None`: the faulty
    /// stream ended first).
    pub faulty: Option<TraceEvent>,
    /// The golden side's event at that index (`None`: the golden
    /// stream ended first).
    pub golden: Option<TraceEvent>,
}

/// A faulty trial's trace diffed against its fault-free twin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoldenDiff {
    /// The shared trial seed.
    pub seed: u64,
    /// The faulty scenario's name.
    pub scenario: String,
    /// The faulty trial's classified outcome.
    pub faulty_outcome: Outcome,
    /// The fault-free twin's classified outcome (almost always
    /// [`Outcome::Correct`]; anything else means the scenario itself
    /// misbehaves without faults).
    pub golden_outcome: Outcome,
    /// Events dropped off the faulty ring (> 0 means the prefix is
    /// truncated and the "divergence" may be an alignment artifact —
    /// re-capture with a larger ring).
    pub faulty_dropped: u64,
    /// Events dropped off the golden ring.
    pub golden_dropped: u64,
    /// Events identical on both sides before the divergence.
    pub common_prefix: usize,
    /// The first mismatch, or `None` if the streams are identical
    /// (the injectors never perturbed anything the trace observes).
    pub divergence: Option<Divergence>,
    /// The faulty stream from the divergence on.
    pub faulty_suffix: Vec<TraceEvent>,
    /// The golden stream from the divergence on.
    pub golden_suffix: Vec<TraceEvent>,
}

impl GoldenDiff {
    /// Whether the two streams differ at all.
    pub fn diverged(&self) -> bool {
        self.divergence.is_some()
    }
}

/// Diffs `dump` (a trace captured from a faulty run of `scenario`)
/// against the fault-free twin re-run at the same seed.
///
/// The twin is traced with the same ring capacity as `dump` retained
/// events would suggest — pass the capacity the campaign used via
/// `config` so both sides truncate identically (the stock
/// [`TraceConfig::default`] matches a stock campaign).
pub fn golden_diff(scenario: &Scenario, dump: &TraceDump, config: &TraceConfig) -> GoldenDiff {
    let golden_scenario = scenario.fault_free();
    // Dump every outcome: the twin is expected to be Correct, which
    // the stock anomaly policy would not capture.
    let golden_config = TraceConfig {
        capacity: config.capacity,
        policy: DumpPolicy::all_outcomes(),
    };
    let (golden_trial, golden_dump) = golden_scenario
        .runner()
        .run_trial_traced(dump.seed, Some(&golden_config));
    let golden_dump = golden_dump.expect("traced trial always yields a dump");

    let faulty = &dump.events;
    let golden = &golden_dump.events;
    let common_prefix = faulty
        .iter()
        .zip(golden.iter())
        .take_while(|(a, b)| a == b)
        .count();
    let divergence = if common_prefix == faulty.len() && common_prefix == golden.len() {
        None
    } else {
        let f = faulty.get(common_prefix).copied();
        let g = golden.get(common_prefix).copied();
        let step = match (f, g) {
            (Some(a), Some(b)) => a.step.min(b.step),
            (Some(a), None) => a.step,
            (None, Some(b)) => b.step,
            (None, None) => unreachable!("divergence with two exhausted streams"),
        };
        Some(Divergence {
            index: common_prefix,
            step,
            faulty: f,
            golden: g,
        })
    };
    GoldenDiff {
        seed: dump.seed,
        scenario: dump.scenario.clone(),
        faulty_outcome: dump.outcome,
        golden_outcome: golden_trial.outcome,
        faulty_dropped: dump.dropped,
        golden_dropped: golden_dump.dropped,
        common_prefix,
        divergence,
        faulty_suffix: faulty[common_prefix..].to_vec(),
        golden_suffix: golden[common_prefix..].to_vec(),
    }
}

fn write_event(f: &mut fmt::Formatter<'_>, event: &TraceEvent) -> fmt::Result {
    write!(f, "{} step={}", event.kind.name(), event.step)?;
    if event.cpu != NO_CPU {
        write!(f, " cpu={}", event.cpu)?;
    }
    write!(f, " a={:#x} b={:#x}", event.arg_a, event.arg_b)
}

impl fmt::Display for GoldenDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "golden-diff {} seed {}: {} (faulty) vs {} (fault-free)",
            self.scenario, self.seed, self.faulty_outcome, self.golden_outcome
        )?;
        if self.faulty_dropped > 0 || self.golden_dropped > 0 {
            writeln!(
                f,
                "  warning: ring truncation (faulty dropped {}, golden dropped {}) — prefix alignment is unreliable",
                self.faulty_dropped, self.golden_dropped
            )?;
        }
        let Some(divergence) = &self.divergence else {
            return writeln!(
                f,
                "  streams identical over {} events: no observable propagation",
                self.common_prefix
            );
        };
        writeln!(
            f,
            "  first divergence at event {} (step {}), after {} identical events:",
            divergence.index, divergence.step, self.common_prefix
        )?;
        match &divergence.faulty {
            Some(event) => {
                write!(f, "    faulty: ")?;
                write_event(f, event)?;
                writeln!(f)?;
            }
            None => writeln!(f, "    faulty: <stream ended>")?,
        }
        match &divergence.golden {
            Some(event) => {
                write!(f, "    golden: ")?;
                write_event(f, event)?;
                writeln!(f)?;
            }
            None => writeln!(f, "    golden: <stream ended>")?,
        }
        writeln!(
            f,
            "  divergent suffix: {} faulty events vs {} golden events",
            self.faulty_suffix.len(),
            self.golden_suffix.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::Campaign;

    /// An E3 seed known to classify anomalously in a short sweep —
    /// found by scanning; asserted below, so a classifier change that
    /// invalidates it fails loudly here rather than silently testing
    /// nothing.
    fn anomalous_dump(scenario: &Scenario) -> TraceDump {
        let config = TraceConfig::new().with_policy(DumpPolicy::all_outcomes());
        for seed in 0..64u64 {
            let (trial, dump) = scenario.runner().run_trial_traced(seed, Some(&config));
            if trial.outcome != Outcome::Correct {
                return dump.unwrap();
            }
        }
        panic!("no anomalous trial in the first 64 seeds");
    }

    #[test]
    fn fault_free_twin_matches_itself() {
        let scenario = Scenario::golden(800);
        let config = TraceConfig::new().with_policy(DumpPolicy::all_outcomes());
        let (_, dump) = scenario.runner().run_trial_traced(5, Some(&config));
        let diff = golden_diff(&scenario, &dump.unwrap(), &config);
        assert!(!diff.diverged(), "{diff}");
        assert_eq!(diff.golden_outcome, Outcome::Correct);
    }

    #[test]
    fn faulty_trial_diverges_and_reports_the_first_step() {
        let scenario = Scenario::e3_fig3();
        let dump = anomalous_dump(&scenario);
        let config = TraceConfig::default();
        let diff = golden_diff(&scenario, &dump, &config);
        assert!(diff.diverged(), "anomalous trial did not diverge");
        let divergence = diff.divergence.as_ref().unwrap();
        // The injection window opens once the trap stream reaches the
        // spec's cadence — the first divergence cannot precede boot.
        assert!(divergence.step > 0);
        assert!(!diff.faulty_suffix.is_empty());
        let rendered = diff.to_string();
        assert!(rendered.contains("first divergence"), "{rendered}");
    }

    #[test]
    fn sdc_diff_pinpoints_the_injection_step() {
        // The acceptance case: on a known silent-data-corruption seed
        // (E6 comm-state corruption, seed 0 — asserted, so a
        // classifier change fails loudly), with untruncated streams
        // on both sides, the first divergence must be the memory
        // injection itself — the diff names the exact step the fault
        // entered the system.
        use certify_core::memfault::{MemFaultModel, MemTarget};
        use certify_obs::trace::TraceKind;

        let scenario = Scenario::e6_memory(MemFaultModel::CommStateCorrupt, MemTarget::e6());
        let config = TraceConfig::new()
            .with_capacity(1 << 16)
            .with_policy(DumpPolicy::all_outcomes());
        let (trial, dump) = scenario.runner().run_trial_traced(0, Some(&config));
        assert_eq!(
            trial.outcome,
            Outcome::SilentDataCorruption,
            "seed 0 must classify as SDC for this pin to mean anything"
        );
        let diff = golden_diff(&scenario, &dump.unwrap(), &config);
        assert_eq!(diff.faulty_dropped, 0, "faulty stream truncated");
        assert_eq!(diff.golden_dropped, 0, "golden stream truncated");
        let divergence = diff.divergence.as_ref().expect("SDC trial must diverge");
        let faulty = divergence.faulty.as_ref().expect("faulty side present");
        assert_eq!(
            faulty.kind,
            TraceKind::MemInjectionApplied,
            "first divergence must be the injection itself:\n{diff}"
        );
    }

    #[test]
    fn diff_is_deterministic() {
        let scenario = Scenario::e3_fig3();
        let dump = anomalous_dump(&scenario);
        let config = TraceConfig::default();
        assert_eq!(
            golden_diff(&scenario, &dump, &config),
            golden_diff(&scenario, &dump, &config)
        );
    }

    #[test]
    fn campaign_dumps_feed_the_diff() {
        // End-to-end: a traced campaign delivers dumps whose diff
        // pinpoints a divergence.
        let scenario = Scenario::e3_fig3();
        let config = TraceConfig::new().with_policy(DumpPolicy::all_outcomes());
        let campaign = Campaign::new(scenario.clone(), 2, 0).with_trace(config.clone());
        let mut sink = certify_core::CollectSink::new();
        campaign.run_streamed(&mut sink);
        let (_, dumps) = sink.into_parts();
        assert_eq!(dumps.len(), 2, "all-outcomes policy dumps every trial");
        for (_, dump) in &dumps {
            let diff = golden_diff(&scenario, dump, &config);
            assert_eq!(diff.golden_outcome, Outcome::Correct);
        }
    }
}

//! Log analytics and report rendering.
//!
//! Figure 2 of the paper ends in "*Log file → Analytics*": the serial
//! capture is mined for evidence and aggregated into the tables and
//! the availability chart (Figure 3). This crate is that stage:
//!
//! * [`logparse`] — a structured parser for the serial log (Linux
//!   dmesg lines, hypervisor park/panic banners, RTOS heartbeats);
//! * [`availability`] — windowed liveness metrics over the parsed log
//!   (output rate, gap detection, the "USART completely blank" test)
//!   plus campaign-level availability from online stats;
//! * [`export`] — per-trial CSV, buffered ([`campaign_to_csv`]) or
//!   row-streaming ([`CsvSink`], a `TrialSink` that drops each report
//!   after writing its row);
//! * [`figure`] — Figure 3 regeneration: outcome distributions as
//!   aligned tables, ASCII bar charts and CSV, with the paper's
//!   reported shares next to the measured ones, built from
//!   `CampaignStats`;
//! * [`report`] — per-experiment textual reports combining all of the
//!   above, built from `CampaignStats`;
//! * [`goldendiff`] — trace-level propagation analysis: an anomalous
//!   trial's flight-recorder dump diffed against a fault-free re-run
//!   of the same seed, pinpointing the first divergent event.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod export;
pub mod figure;
pub mod goldendiff;
pub mod logparse;
pub mod report;
pub mod timeline;

pub use availability::{campaign_availability, AvailabilityReport};
pub use export::{campaign_to_csv, trial_to_csv_row, CsvSink, CSV_HEADER};
pub use figure::{Figure3, PAPER_FIG3_SHARES};
pub use goldendiff::{golden_diff, Divergence, GoldenDiff};
pub use logparse::{parse_line, parse_log, LogEvent, LogSource};
pub use report::ExperimentReport;
pub use timeline::{Timeline, TimelineEntry};

//! Structured parsing of the serial log.
//!
//! Every guest and the hypervisor share one UART, exactly like the
//! paper's board; lines are distinguishable by their prefix. The
//! parser is total: unknown lines are preserved as
//! [`LogEvent::Other`], never dropped, so analytics can always account
//! for the full capture.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Who emitted a log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogSource {
    /// The root-cell Linux guest.
    Linux,
    /// The non-root FreeRTOS guest (via the hypervisor debug console).
    Rtos,
    /// The hypervisor itself.
    Hypervisor,
    /// Unattributable output (corrupted or partial lines).
    Unknown,
}

impl fmt::Display for LogSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            LogSource::Linux => "linux",
            LogSource::Rtos => "rtos",
            LogSource::Hypervisor => "hyp",
            LogSource::Unknown => "?",
        };
        f.write_str(name)
    }
}

/// A parsed log line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogEvent {
    /// Root kernel boot progress.
    LinuxBoot {
        /// The boot message.
        message: String,
    },
    /// The root kernel panicked — the paper's panic-park evidence.
    KernelPanic {
        /// The panic message.
        message: String,
    },
    /// A jailhouse-driver management message.
    Management {
        /// The message.
        message: String,
    },
    /// The hypervisor parked a CPU; carries the CPU number and, for
    /// unhandled traps, the exception-class code (`0x24` in the
    /// paper).
    CpuParked {
        /// Which CPU.
        cpu: u32,
        /// The trap class code, if the park was an unhandled trap.
        code: Option<u8>,
        /// The raw reason text.
        reason: String,
    },
    /// The hypervisor panicked.
    HypervisorPanic {
        /// The panic message.
        message: String,
    },
    /// An RTOS liveness line (blink/send/recv/compute heartbeat).
    RtosHeartbeat {
        /// The task-class tag (`blink`, `sent`, `recv`, `float`,
        /// `int`).
        task: String,
        /// The full message.
        message: String,
    },
    /// Anything else.
    Other {
        /// The raw line.
        line: String,
    },
}

impl LogEvent {
    /// The source of this event.
    pub fn source(&self) -> LogSource {
        match self {
            LogEvent::LinuxBoot { .. }
            | LogEvent::KernelPanic { .. }
            | LogEvent::Management { .. } => LogSource::Linux,
            LogEvent::CpuParked { .. } | LogEvent::HypervisorPanic { .. } => LogSource::Hypervisor,
            LogEvent::RtosHeartbeat { .. } => LogSource::Rtos,
            LogEvent::Other { .. } => LogSource::Unknown,
        }
    }
}

/// Parses one serial line.
pub fn parse_line(line: &str) -> LogEvent {
    if let Some(rest) = line.strip_prefix("[hyp] ") {
        if let Some(msg) = rest.strip_prefix("PANIC: ") {
            return LogEvent::HypervisorPanic {
                message: msg.to_string(),
            };
        }
        if let Some(park) = rest.strip_prefix("parking cpu") {
            // Format: "parking cpu<N>: <reason>", reason may end with
            // "0x<code>".
            let mut parts = park.splitn(2, ':');
            let cpu = parts
                .next()
                .and_then(|c| c.trim().parse::<u32>().ok())
                .unwrap_or(u32::MAX);
            let reason = parts.next().unwrap_or("").trim().to_string();
            let code = reason
                .rsplit("0x")
                .next()
                .filter(|_| reason.contains("0x"))
                .and_then(|hex| u8::from_str_radix(hex.trim(), 16).ok());
            return LogEvent::CpuParked { cpu, code, reason };
        }
        return LogEvent::Other {
            line: line.to_string(),
        };
    }
    if let Some(rest) = line.strip_prefix("[linux] ") {
        if rest.contains("Kernel panic") || rest.contains("Unable to handle kernel") {
            return LogEvent::KernelPanic {
                message: rest.to_string(),
            };
        }
        if rest.starts_with("jailhouse:") || rest.starts_with("smp:") {
            return LogEvent::Management {
                message: rest.to_string(),
            };
        }
        return LogEvent::LinuxBoot {
            message: rest.to_string(),
        };
    }
    if let Some(rest) = line.strip_prefix("[rtos] ") {
        let task = rest
            .split_whitespace()
            .next()
            .unwrap_or("")
            .trim_end_matches(|c: char| c.is_ascii_digit() || c == '#')
            .to_string();
        return LogEvent::RtosHeartbeat {
            task,
            message: rest.to_string(),
        };
    }
    LogEvent::Other {
        line: line.to_string(),
    }
}

/// Parses a `(step, line)` capture into `(step, event)` pairs.
pub fn parse_log(lines: &[(u64, String)]) -> Vec<(u64, LogEvent)> {
    lines
        .iter()
        .map(|(step, line)| (*step, parse_line(line)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_park_banner_with_code() {
        let event = parse_line("[hyp] parking cpu1: unhandled trap 0x24");
        match event {
            LogEvent::CpuParked { cpu, code, .. } => {
                assert_eq!(cpu, 1);
                assert_eq!(code, Some(0x24));
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn parses_park_banner_without_code() {
        let event = parse_line("[hyp] parking cpu1: failed to come online");
        match event {
            LogEvent::CpuParked { cpu, code, .. } => {
                assert_eq!(cpu, 1);
                assert_eq!(code, None);
            }
            other => panic!("wrong event: {other:?}"),
        }
    }

    #[test]
    fn parses_kernel_panic() {
        let event = parse_line("[linux] Kernel panic - not syncing: Fatal exception");
        assert!(matches!(event, LogEvent::KernelPanic { .. }));
        assert_eq!(event.source(), LogSource::Linux);
    }

    #[test]
    fn parses_hypervisor_panic() {
        let event = parse_line("[hyp] PANIC: HYP data abort at 0x09000000");
        assert!(matches!(event, LogEvent::HypervisorPanic { .. }));
        assert_eq!(event.source(), LogSource::Hypervisor);
    }

    #[test]
    fn parses_rtos_heartbeats_with_task_tags() {
        for (line, task) in [
            ("[rtos] blink #32", "blink"),
            ("[rtos] sent 64", "sent"),
            ("[rtos] recv 64 sum 0a0b0c0d", "recv"),
            ("[rtos] float0 pi~3.141593", "float"),
            ("[rtos] int07 deadbeef", "int"),
        ] {
            match parse_line(line) {
                LogEvent::RtosHeartbeat { task: t, .. } => assert_eq!(t, task, "line {line}"),
                other => panic!("wrong event for {line}: {other:?}"),
            }
        }
    }

    #[test]
    fn parses_management_lines() {
        let event = parse_line("[linux] jailhouse: cell 1 created");
        assert!(matches!(event, LogEvent::Management { .. }));
        let event = parse_line("[linux] smp: CPU1 offlined");
        assert!(matches!(event, LogEvent::Management { .. }));
    }

    #[test]
    fn unknown_lines_are_preserved() {
        let event = parse_line("garbage \u{fffd}\u{fffd}");
        match &event {
            LogEvent::Other { line } => assert!(line.starts_with("garbage")),
            other => panic!("wrong event: {other:?}"),
        }
        assert_eq!(event.source(), LogSource::Unknown);
    }

    #[test]
    fn parse_log_keeps_steps() {
        let lines = vec![
            (5, "[linux] Booting Linux on physical CPU 0x0".to_string()),
            (9, "[rtos] blink #32".to_string()),
        ];
        let events = parse_log(&lines);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, 5);
        assert_eq!(events[1].0, 9);
    }
}

//! Per-experiment reports: paper claim vs. measured behaviour.
//!
//! Each constructor digests the raw campaign/profile results of one
//! experiment into the row EXPERIMENTS.md records: the paper's claim,
//! what the reproduction measured, and whether the *shape* of the
//! claim holds.

use crate::figure::Figure3;
use certify_core::profiler::ProfileReport;
use certify_core::{CampaignStats, Outcome};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One experiment's paper-vs-measured record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment id (`E1`…`E4`).
    pub id: String,
    /// Short title.
    pub title: String,
    /// What the paper reports.
    pub paper_claim: String,
    /// What the reproduction measured.
    pub measured: String,
    /// Whether the claim's shape holds in the measurement.
    pub reproduced: bool,
}

impl ExperimentReport {
    /// E1: high-intensity root-context injections always produce a
    /// clean "invalid arguments" rejection and no allocation.
    ///
    /// All constructors take the online [`CampaignStats`] a streamed
    /// run returns (for a buffered run, use
    /// `CampaignResult::stats()`), so report generation never needs
    /// the per-trial reports resident.
    pub fn e1(stats: &CampaignStats) -> ExperimentReport {
        let total = stats.trials;
        let rejected = stats.count(Outcome::InvalidArguments);
        let injected = stats.injected_trials;
        ExperimentReport {
            id: "E1".into(),
            title: "High intensity, root-cell context".into(),
            paper_claim: "always returns \"invalid arguments\"; the root cell is \
                          not allocated at all (correct, expected fail-stop)"
                .into(),
            measured: format!(
                "{rejected}/{total} trials rejected with invalid arguments \
                 ({injected} trials saw injections)"
            ),
            reproduced: total > 0 && rejected == total && injected == total,
        }
    }

    /// E2: high-intensity CPU-1 injections across the cell-boot window
    /// leave the cell allocated-but-dead while reported running.
    pub fn e2(boot_window: &CampaignStats, full: &CampaignStats) -> ExperimentReport {
        let bw_total = boot_window.trials;
        let bw_inconsistent = boot_window.count(Outcome::InconsistentState);
        let full_inconsistent = full.count(Outcome::InconsistentState);
        ExperimentReport {
            id: "E2".into(),
            title: "High intensity, non-root (CPU 1) context".into(),
            paper_claim: "cell allocated but CPU fails to come online or cell left \
                          non-executable; USART blank; Jailhouse still reports it \
                          running; shutdown returns resources (inconsistent, dangerous)"
                .into(),
            measured: format!(
                "boot-window aligned: {bw_inconsistent}/{bw_total} trials inconsistent; \
                 free-running campaign: {full_inconsistent}/{} trials inconsistent \
                 (remainder isolated CPU parks)",
                full.trials
            ),
            reproduced: bw_total > 0 && bw_inconsistent == bw_total && full_inconsistent > 0,
        }
    }

    /// E3 (Figure 3): medium-intensity trap injections — correct
    /// majority, ~30 % panic park, limited CPU park.
    pub fn e3(stats: &CampaignStats) -> ExperimentReport {
        let figure = Figure3::from_stats(stats);
        let measured = figure
            .rows
            .iter()
            .map(|(o, m, _)| format!("{o} {:.1}%", m * 100.0))
            .collect::<Vec<_>>()
            .join(", ");
        ExperimentReport {
            id: "E3".into(),
            title: "Figure 3: medium intensity, non-root arch_handle_trap".into(),
            paper_claim: "correct majority (~65%), ~30% panic park (fault propagates \
                          to a whole-system kernel panic), limited CPU park (0x24, \
                          fault isolated)"
                .into(),
            measured,
            reproduced: figure.matches_paper_shape(),
        }
    }

    /// E4: golden-run profiling finds the three candidate handlers.
    pub fn e4(profile: &ProfileReport) -> ExperimentReport {
        let candidates = profile.candidates();
        let measured = candidates
            .iter()
            .map(|h| h.function_name().to_string())
            .collect::<Vec<_>>()
            .join(", ");
        ExperimentReport {
            id: "E4".into(),
            title: "Golden-run profiling of injection points".into(),
            paper_claim: "profiling yields three candidate functions: \
                          irqchip_handle_irq, arch_handle_trap, arch_handle_hvc"
                .into(),
            measured: format!("active handlers (desc. activations): {measured}"),
            reproduced: candidates.len() == 3,
        }
    }

    /// E5a (extension): the armed hardware watchdog detects panic-park
    /// outcomes. `stats` must come from the watchdog scenario.
    pub fn e5a(stats: &CampaignStats) -> ExperimentReport {
        let panic_trials = stats.count(Outcome::PanicPark);
        let detected = stats.watchdog_detected;
        let mean_latency = stats.watchdog_mean_latency();
        ExperimentReport {
            id: "E5a".into(),
            title: "Extension: watchdog detection of panic park".into(),
            paper_claim: "future work: mechanisms that detect hypervisor/system \
                          malfunction (paper outlook)"
                .into(),
            measured: format!(
                "{detected}/{panic_trials} panic-park trials detected by the armed \
                 watchdog (mean first expiry at step {mean_latency})"
            ),
            reproduced: panic_trials > 0 && detected == panic_trials,
        }
    }

    /// E5b (extension): the heartbeat safety monitor detects the E2
    /// inconsistent state. `stats` must come from the monitor
    /// scenario.
    pub fn e5b(stats: &CampaignStats) -> ExperimentReport {
        let inconsistent = stats.count(Outcome::InconsistentState);
        let detected = stats.monitor_detected;
        ExperimentReport {
            id: "E5b".into(),
            title: "Extension: heartbeat monitor detection of the inconsistent state".into(),
            paper_claim: "E2's inconsistent state is dangerous precisely because the \
                          operator believes the cell is running; the paper's outlook \
                          asks for detection mechanisms"
                .into(),
            measured: format!(
                "{detected}/{inconsistent} inconsistent-state trials raised a heartbeat alarm"
            ),
            reproduced: inconsistent > 0 && detected == inconsistent,
        }
    }

    /// Renders the report block.
    pub fn render(&self) -> String {
        format!(
            "## {} — {}\n\n* paper: {}\n* measured: {}\n* reproduced: {}\n",
            self.id,
            self.title,
            self.paper_claim,
            self.measured,
            if self.reproduced { "YES" } else { "NO" }
        )
    }
}

impl fmt::Display for ExperimentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_core::campaign::{CampaignResult, TrialResult};
    use certify_core::classify::RunReport;

    fn fake(outcomes: &[(Outcome, usize)], injected: bool) -> CampaignStats {
        let mut trials = Vec::new();
        for (outcome, count) in outcomes {
            for i in 0..*count {
                trials.push(TrialResult {
                    seed: i as u64,
                    outcome: *outcome,
                    injection_count: usize::from(injected),
                    mem_injection_count: 0,
                    report: RunReport {
                        outcome: *outcome,
                        injections: Vec::new(),
                        mem_injections: Vec::new(),
                        notes: Vec::new(),
                        cell_state: None,
                        cpu1_park: None,
                        serial_line_count: 0,
                        watchdog_first_expiry: None,
                        monitor_alarms: 0,
                    },
                });
            }
        }
        CampaignResult {
            scenario_name: "fake".into(),
            trials,
        }
        .stats()
    }

    #[test]
    fn e1_reproduced_only_when_all_reject() {
        let all = fake(&[(Outcome::InvalidArguments, 5)], true);
        assert!(ExperimentReport::e1(&all).reproduced);
        let mixed = fake(
            &[(Outcome::InvalidArguments, 4), (Outcome::Correct, 1)],
            true,
        );
        assert!(!ExperimentReport::e1(&mixed).reproduced);
        let uninjected = fake(&[(Outcome::InvalidArguments, 5)], false);
        assert!(!ExperimentReport::e1(&uninjected).reproduced);
    }

    #[test]
    fn e2_requires_deterministic_boot_window_and_field_sightings() {
        let bw = fake(&[(Outcome::InconsistentState, 10)], true);
        let full = fake(
            &[(Outcome::CpuPark, 30), (Outcome::InconsistentState, 5)],
            true,
        );
        assert!(ExperimentReport::e2(&bw, &full).reproduced);
        let no_sightings = fake(&[(Outcome::CpuPark, 30)], true);
        assert!(!ExperimentReport::e2(&bw, &no_sightings).reproduced);
    }

    #[test]
    fn e3_shape_gate() {
        let good = fake(
            &[
                (Outcome::Correct, 13),
                (Outcome::PanicPark, 6),
                (Outcome::CpuPark, 1),
            ],
            true,
        );
        assert!(ExperimentReport::e3(&good).reproduced);
    }

    #[test]
    fn render_mentions_everything() {
        let report = ExperimentReport {
            id: "E9".into(),
            title: "t".into(),
            paper_claim: "c".into(),
            measured: "m".into(),
            reproduced: true,
        };
        let text = report.render();
        assert!(text.contains("E9"));
        assert!(text.contains("reproduced: YES"));
    }
}

//! Unified run timelines.
//!
//! Debugging a fault-injection run means correlating three streams:
//! the injections, the hypervisor's structured events, and the serial
//! log. A [`Timeline`] merges them into one chronologically sorted,
//! source-tagged trace — the view an engineer would build by hand from
//! the paper's log files.

use certify_core::injector::InjectionRecord;
use certify_hypervisor::HvEvent;
use serde::Serialize;
use std::fmt;

/// One timeline entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct TimelineEntry {
    /// Simulator step.
    pub step: u64,
    /// Source tag (`inject`, `hv`, `serial`).
    pub source: &'static str,
    /// Rendered content.
    pub text: String,
}

impl fmt::Display for TimelineEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>8} {:<7} {}", self.step, self.source, self.text)
    }
}

/// A merged, chronologically sorted run trace.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize)]
pub struct Timeline {
    entries: Vec<TimelineEntry>,
}

impl Timeline {
    /// Builds a timeline from the three observation streams.
    pub fn build(
        injections: &[InjectionRecord],
        events: &[HvEvent],
        serial: &[(u64, String)],
    ) -> Timeline {
        let mut entries = Vec::new();
        for record in injections {
            entries.push(TimelineEntry {
                step: record.step,
                source: "inject",
                text: record.to_string(),
            });
        }
        for event in events {
            entries.push(TimelineEntry {
                step: event.step(),
                source: "hv",
                text: event.to_string(),
            });
        }
        for (step, line) in serial {
            entries.push(TimelineEntry {
                step: *step,
                source: "serial",
                text: line.clone(),
            });
        }
        entries.sort_by_key(|e| e.step);
        Timeline { entries }
    }

    /// All entries in chronological order.
    pub fn entries(&self) -> &[TimelineEntry] {
        &self.entries
    }

    /// Entries within `margin` steps around `step` — the
    /// "what happened around the injection" view.
    pub fn around(&self, step: u64, margin: u64) -> Vec<&TimelineEntry> {
        self.entries
            .iter()
            .filter(|e| e.step >= step.saturating_sub(margin) && e.step <= step + margin)
            .collect()
    }

    /// Renders the whole timeline (or a tail of it).
    pub fn render(&self, last: Option<usize>) -> String {
        let skip = last
            .map(|n| self.entries.len().saturating_sub(n))
            .unwrap_or(0);
        self.entries
            .iter()
            .skip(skip)
            .map(|e| format!("{e}\n"))
            .collect()
    }
}

impl fmt::Display for Timeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render(None))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_arch::cpu::ParkReason;
    use certify_arch::CpuId;

    fn sample() -> Timeline {
        let events = vec![HvEvent::CpuParked {
            cpu: CpuId(1),
            reason: ParkReason::UnhandledTrap(0x24),
            step: 50,
        }];
        let serial = vec![
            (10, "[linux] boot".to_string()),
            (60, "[hyp] parking cpu1: unhandled trap 0x24".to_string()),
        ];
        Timeline::build(&[], &events, &serial)
    }

    #[test]
    fn entries_are_chronological() {
        let timeline = sample();
        let steps: Vec<u64> = timeline.entries().iter().map(|e| e.step).collect();
        assert_eq!(steps, vec![10, 50, 60]);
    }

    #[test]
    fn around_windows_the_trace() {
        let timeline = sample();
        let window = timeline.around(50, 5);
        assert_eq!(window.len(), 1);
        assert_eq!(window[0].source, "hv");
    }

    #[test]
    fn render_tail_limits_output() {
        let timeline = sample();
        let tail = timeline.render(Some(1));
        assert_eq!(tail.lines().count(), 1);
        assert!(tail.contains("parking"));
    }

    #[test]
    fn sources_are_tagged() {
        let timeline = sample();
        let sources: Vec<&str> = timeline.entries().iter().map(|e| e.source).collect();
        assert_eq!(sources, vec!["serial", "hv", "serial"]);
    }
}

//! Per-CPU execution state.
//!
//! A [`Cpu`] is the unit the partitioning hypervisor assigns to cells:
//! the Banana Pi of the paper has two of them, with core 0 statically
//! given to the root cell (Linux) and core 1 to the non-root cell
//! (FreeRTOS). The struct carries the architectural state a handler (or
//! a fault injector) can touch, plus the lifecycle flags the paper's
//! outcomes are phrased in: *online*, *parked* (with the park reason,
//! e.g. the unhandled-trap code `0x24`), and *waiting-for-event*.

use crate::mode::CpuMode;
use crate::psr::Psr;
use crate::registers::RegisterFile;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A physical CPU core identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub u32);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

/// Why a CPU was parked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParkReason {
    /// Parked at boot / after cell destruction, waiting for an
    /// assignment — the normal resting state of an unassigned core.
    Idle,
    /// Parked by the hypervisor because a trap could not be handled;
    /// carries the offending exception-class code (`0x24` in the
    /// paper's observation).
    UnhandledTrap(u8),
    /// Parked because the hypervisor shut the owning cell down.
    CellShutdown,
    /// Parked because the CPU failed to come online during the hot-plug
    /// swap (the E2 inconsistent-state ingredient).
    FailedOnline,
    /// Parked because the hypervisor itself panicked and froze the
    /// machine.
    HypervisorPanic,
}

impl ParkReason {
    /// A stable numeric discriminant for trace streams and logs. The
    /// trap class of an [`ParkReason::UnhandledTrap`] travels
    /// separately (see [`ParkReason::trap_code`]).
    pub fn code(&self) -> u8 {
        match self {
            ParkReason::Idle => 0,
            ParkReason::UnhandledTrap(_) => 1,
            ParkReason::CellShutdown => 2,
            ParkReason::FailedOnline => 3,
            ParkReason::HypervisorPanic => 4,
        }
    }

    /// The offending exception-class code for an unhandled trap, 0
    /// otherwise.
    pub fn trap_code(&self) -> u8 {
        match self {
            ParkReason::UnhandledTrap(code) => *code,
            _ => 0,
        }
    }
}

impl fmt::Display for ParkReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParkReason::Idle => write!(f, "idle"),
            ParkReason::UnhandledTrap(code) => write!(f, "unhandled trap 0x{code:02x}"),
            ParkReason::CellShutdown => write!(f, "cell shutdown"),
            ParkReason::FailedOnline => write!(f, "failed to come online"),
            ParkReason::HypervisorPanic => write!(f, "hypervisor panic"),
        }
    }
}

/// Architectural and lifecycle state of one core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cpu {
    /// This core's id.
    pub id: CpuId,
    /// Register state of the currently interrupted/running context.
    pub regs: RegisterFile,
    /// Current processor mode.
    pub mode: CpuMode,
    /// Saved program status of the interrupted context (`SPSR_hyp`).
    pub spsr: Psr,
    /// Whether the core has been brought online by the platform.
    online: bool,
    /// Park state, if parked.
    parked: Option<ParkReason>,
    /// Whether the core executed `WFI` and is waiting for an interrupt.
    wfi: bool,
}

impl Cpu {
    /// Creates an offline, idle-parked core.
    pub fn new(id: CpuId) -> Cpu {
        Cpu {
            id,
            regs: RegisterFile::new(),
            mode: CpuMode::Supervisor,
            spsr: Psr::default(),
            online: false,
            parked: Some(ParkReason::Idle),
            wfi: false,
        }
    }

    /// Brings the core online and clears any park state: the hot-plug
    /// "power on" step.
    pub fn power_on(&mut self) {
        self.online = true;
        self.parked = None;
        self.wfi = false;
    }

    /// Takes the core offline (it also becomes idle-parked).
    pub fn power_off(&mut self) {
        self.online = false;
        self.parked = Some(ParkReason::Idle);
        self.wfi = false;
    }

    /// Whether the core is online.
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Parks the core with the given reason. A parked core makes no
    /// guest progress until reset.
    pub fn park(&mut self, reason: ParkReason) {
        self.parked = Some(reason);
        self.wfi = false;
    }

    /// Whether the core is parked.
    pub fn is_parked(&self) -> bool {
        self.parked.is_some()
    }

    /// The park reason, if parked.
    pub fn park_reason(&self) -> Option<ParkReason> {
        self.parked
    }

    /// Clears park state without a full reset (used when a parked core
    /// is handed a new cell entry point).
    pub fn unpark(&mut self) {
        self.parked = None;
    }

    /// Marks the core as waiting-for-interrupt.
    pub fn enter_wfi(&mut self) {
        self.wfi = true;
    }

    /// Wakes the core from `WFI`.
    pub fn wake(&mut self) {
        self.wfi = false;
    }

    /// Whether the core is in `WFI`.
    pub fn in_wfi(&self) -> bool {
        self.wfi
    }

    /// Whether the core can execute guest instructions right now.
    pub fn can_run_guest(&self) -> bool {
        self.online && !self.is_parked() && !self.wfi
    }

    /// Architectural warm reset: clears registers and park state and
    /// enters supervisor mode at the given entry point — what the
    /// hypervisor does when (re)starting a cell on this core.
    pub fn reset_to(&mut self, entry: u32) {
        self.regs = RegisterFile::new();
        self.regs.write(crate::registers::Reg::PC, entry);
        self.mode = CpuMode::Supervisor;
        self.spsr = Psr::for_mode(CpuMode::Supervisor);
        self.parked = None;
        self.wfi = false;
    }
}

impl fmt::Display for Cpu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} mode={} online={} parked={}",
            self.id,
            self.mode,
            self.online,
            match self.parked {
                Some(reason) => reason.to_string(),
                None => "no".to_string(),
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registers::Reg;

    #[test]
    fn new_cpu_is_offline_and_idle_parked() {
        let cpu = Cpu::new(CpuId(1));
        assert!(!cpu.is_online());
        assert_eq!(cpu.park_reason(), Some(ParkReason::Idle));
        assert!(!cpu.can_run_guest());
    }

    #[test]
    fn power_on_enables_guest_execution() {
        let mut cpu = Cpu::new(CpuId(0));
        cpu.power_on();
        assert!(cpu.is_online());
        assert!(!cpu.is_parked());
        assert!(cpu.can_run_guest());
    }

    #[test]
    fn parked_cpu_cannot_run_guest() {
        let mut cpu = Cpu::new(CpuId(1));
        cpu.power_on();
        cpu.park(ParkReason::UnhandledTrap(0x24));
        assert!(!cpu.can_run_guest());
        assert_eq!(cpu.park_reason(), Some(ParkReason::UnhandledTrap(0x24)));
        assert_eq!(
            cpu.park_reason().unwrap().to_string(),
            "unhandled trap 0x24"
        );
    }

    #[test]
    fn wfi_blocks_until_wake() {
        let mut cpu = Cpu::new(CpuId(0));
        cpu.power_on();
        cpu.enter_wfi();
        assert!(!cpu.can_run_guest());
        cpu.wake();
        assert!(cpu.can_run_guest());
    }

    #[test]
    fn reset_to_clears_state_and_sets_pc() {
        let mut cpu = Cpu::new(CpuId(1));
        cpu.power_on();
        cpu.regs.write(Reg::R5, 0xdead);
        cpu.park(ParkReason::CellShutdown);
        cpu.reset_to(0x4800_0000);
        assert_eq!(cpu.regs.read(Reg::PC), 0x4800_0000);
        assert_eq!(cpu.regs.read(Reg::R5), 0);
        assert!(!cpu.is_parked());
        assert_eq!(cpu.mode, CpuMode::Supervisor);
    }

    #[test]
    fn power_off_returns_to_idle_park() {
        let mut cpu = Cpu::new(CpuId(1));
        cpu.power_on();
        cpu.power_off();
        assert_eq!(cpu.park_reason(), Some(ParkReason::Idle));
        assert!(!cpu.is_online());
    }

    #[test]
    fn display_is_informative() {
        let cpu = Cpu::new(CpuId(1));
        let s = cpu.to_string();
        assert!(s.contains("cpu1"));
        assert!(s.contains("parked=idle"));
    }
}

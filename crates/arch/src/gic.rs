//! A GIC-400-flavoured interrupt controller model.
//!
//! The model collapses the distributor and the per-CPU interfaces into a
//! single structure, keeping the behaviour the hypervisor and the fault
//! campaigns observe:
//!
//! * interrupt lines can be enabled, made pending, acknowledged and
//!   completed per CPU;
//! * software-generated interrupts (SGIs, ids 0–15) target a specific
//!   CPU and are how the root cell kicks a parked CPU when starting a
//!   cell (the *CPU hot-plug swap* of the paper);
//! * private peripheral interrupts (PPIs, ids 16–31) are banked per CPU
//!   (the per-core generic timer uses one);
//! * shared peripheral interrupts (SPIs, ids ≥ 32) are routed to the
//!   single CPU that owns the line — ownership is what the partitioning
//!   hypervisor configures from the cell configs.

use crate::cpu::CpuId;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// An interrupt line identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IrqId(pub u16);

impl IrqId {
    /// Whether this is a software-generated interrupt (0–15).
    pub fn is_sgi(self) -> bool {
        self.0 < 16
    }

    /// Whether this is a private peripheral interrupt (16–31).
    pub fn is_ppi(self) -> bool {
        (16..32).contains(&self.0)
    }

    /// Whether this is a shared peripheral interrupt (≥ 32).
    pub fn is_spi(self) -> bool {
        self.0 >= 32
    }
}

impl fmt::Display for IrqId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "irq{}", self.0)
    }
}

/// The id returned by an acknowledge when no interrupt is pending.
pub const SPURIOUS_IRQ: IrqId = IrqId(1023);

/// Highest modelled interrupt line (exclusive).
pub const NUM_IRQS: usize = 256;

/// Per-CPU interrupt queue and banked PPI state.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct CpuInterface {
    /// FIFO of pending interrupt ids awaiting acknowledge.
    pending: VecDeque<u16>,
    /// Currently active (acknowledged, not yet completed) interrupt.
    active: Option<u16>,
}

/// The interrupt controller.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gic {
    enabled: Vec<bool>,
    /// Owning CPU for SPI routing; SGIs/PPIs ignore this.
    target: Vec<Option<CpuId>>,
    interfaces: Vec<CpuInterface>,
    /// Count of interrupts raised while the line was disabled — a useful
    /// liveness diagnostic for the analysis crate.
    dropped: u64,
    /// Interrupts queued across all CPU interfaces, maintained
    /// incrementally so the per-step "anything pending?" check of the
    /// orchestrator costs one load instead of a per-CPU queue walk.
    pending_total: usize,
}

impl Gic {
    /// Creates a controller serving `num_cpus` CPU interfaces.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn new(num_cpus: usize) -> Gic {
        assert!(num_cpus > 0, "a GIC needs at least one CPU interface");
        Gic {
            enabled: vec![false; NUM_IRQS],
            target: vec![None; NUM_IRQS],
            interfaces: vec![CpuInterface::default(); num_cpus],
            dropped: 0,
            pending_total: 0,
        }
    }

    /// Number of CPU interfaces.
    pub fn num_cpus(&self) -> usize {
        self.interfaces.len()
    }

    /// Enables an interrupt line.
    pub fn enable(&mut self, irq: IrqId) {
        if let Some(slot) = self.enabled.get_mut(irq.0 as usize) {
            *slot = true;
        }
    }

    /// Disables an interrupt line; already-pending instances remain
    /// queued (matching GIC behaviour where disable gates forwarding of
    /// *new* interrupts).
    pub fn disable(&mut self, irq: IrqId) {
        if let Some(slot) = self.enabled.get_mut(irq.0 as usize) {
            *slot = false;
        }
    }

    /// Whether the line is enabled.
    pub fn is_enabled(&self, irq: IrqId) -> bool {
        self.enabled.get(irq.0 as usize).copied().unwrap_or(false)
    }

    /// Routes an SPI line to `cpu`. The partitioning hypervisor calls
    /// this when applying a cell configuration.
    pub fn set_target(&mut self, irq: IrqId, cpu: CpuId) {
        if let Some(slot) = self.target.get_mut(irq.0 as usize) {
            *slot = Some(cpu);
        }
    }

    /// Removes SPI routing (line returns to unrouted; raises are
    /// dropped). Called when a cell is destroyed.
    pub fn clear_target(&mut self, irq: IrqId) {
        if let Some(slot) = self.target.get_mut(irq.0 as usize) {
            *slot = None;
        }
    }

    /// The CPU an SPI is routed to.
    pub fn targeted_cpu(&self, irq: IrqId) -> Option<CpuId> {
        self.target.get(irq.0 as usize).copied().flatten()
    }

    /// Raises an SPI or PPI. SPIs follow their routing; PPIs must be
    /// raised with [`Gic::raise_private`]. Returns `true` if the
    /// interrupt was queued.
    pub fn raise(&mut self, irq: IrqId) -> bool {
        if !self.is_enabled(irq) {
            self.dropped += 1;
            return false;
        }
        let Some(cpu) = self.targeted_cpu(irq) else {
            self.dropped += 1;
            return false;
        };
        self.queue(cpu, irq)
    }

    /// Raises a banked (private) interrupt on a specific CPU — used by
    /// per-core timers.
    pub fn raise_private(&mut self, cpu: CpuId, irq: IrqId) -> bool {
        if !self.is_enabled(irq) {
            self.dropped += 1;
            return false;
        }
        self.queue(cpu, irq)
    }

    /// Sends a software-generated interrupt to `cpu`.
    ///
    /// SGIs are always deliverable (they have no enable gate in this
    /// model, matching their use as a kick mechanism for parked CPUs).
    pub fn send_sgi(&mut self, cpu: CpuId, irq: IrqId) -> bool {
        if !irq.is_sgi() {
            return false;
        }
        self.queue(cpu, irq)
    }

    fn queue(&mut self, cpu: CpuId, irq: IrqId) -> bool {
        match self.interfaces.get_mut(cpu.0 as usize) {
            Some(interface) => {
                // Level-ish semantics: collapse duplicates already queued.
                if !interface.pending.contains(&irq.0) {
                    interface.pending.push_back(irq.0);
                    self.pending_total += 1;
                }
                true
            }
            None => {
                self.dropped += 1;
                false
            }
        }
    }

    /// Whether `cpu` has an interrupt waiting to be acknowledged.
    pub fn has_pending(&self, cpu: CpuId) -> bool {
        self.interfaces
            .get(cpu.0 as usize)
            .map(|i| !i.pending.is_empty())
            .unwrap_or(false)
    }

    /// Whether any CPU interface has a pending interrupt — an O(1)
    /// gate for the orchestrator's per-step wake/drain pass.
    pub fn any_pending(&self) -> bool {
        self.pending_total > 0
    }

    /// Total interrupts queued across every CPU interface.
    pub fn total_pending(&self) -> usize {
        self.pending_total
    }

    /// Acknowledges the highest-priority (oldest, in this model) pending
    /// interrupt on `cpu`, making it active. Returns [`SPURIOUS_IRQ`]
    /// when nothing is pending.
    pub fn acknowledge(&mut self, cpu: CpuId) -> IrqId {
        let Some(interface) = self.interfaces.get_mut(cpu.0 as usize) else {
            return SPURIOUS_IRQ;
        };
        if interface.active.is_some() {
            // Nested acknowledge without completion: spurious.
            return SPURIOUS_IRQ;
        }
        match interface.pending.pop_front() {
            Some(id) => {
                interface.active = Some(id);
                self.pending_total -= 1;
                IrqId(id)
            }
            None => SPURIOUS_IRQ,
        }
    }

    /// Signals end-of-interrupt for the active interrupt on `cpu`.
    /// Completion of a non-active id is ignored (write to `EOIR` with a
    /// stale id).
    pub fn complete(&mut self, cpu: CpuId, irq: IrqId) {
        if let Some(interface) = self.interfaces.get_mut(cpu.0 as usize) {
            if interface.active == Some(irq.0) {
                interface.active = None;
            }
        }
    }

    /// The interrupt currently being serviced on `cpu`, if any.
    pub fn active(&self, cpu: CpuId) -> Option<IrqId> {
        self.interfaces
            .get(cpu.0 as usize)
            .and_then(|i| i.active)
            .map(IrqId)
    }

    /// Interrupts dropped because their line was disabled or unrouted.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// Drops all pending and active state for `cpu` — used when a CPU is
    /// reset as part of cell destruction.
    pub fn reset_cpu_interface(&mut self, cpu: CpuId) {
        if let Some(interface) = self.interfaces.get_mut(cpu.0 as usize) {
            self.pending_total -= interface.pending.len();
            interface.pending.clear();
            interface.active = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gic2() -> Gic {
        Gic::new(2)
    }

    #[test]
    fn irq_kind_predicates() {
        assert!(IrqId(0).is_sgi());
        assert!(IrqId(15).is_sgi());
        assert!(IrqId(16).is_ppi());
        assert!(IrqId(31).is_ppi());
        assert!(IrqId(32).is_spi());
        assert!(!IrqId(32).is_ppi());
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpus_rejected() {
        let _ = Gic::new(0);
    }

    #[test]
    fn spi_delivery_follows_routing() {
        let mut gic = gic2();
        let uart = IrqId(33);
        gic.enable(uart);
        gic.set_target(uart, CpuId(1));
        assert!(gic.raise(uart));
        assert!(!gic.has_pending(CpuId(0)));
        assert_eq!(gic.acknowledge(CpuId(1)), uart);
    }

    #[test]
    fn disabled_line_drops_and_counts() {
        let mut gic = gic2();
        let irq = IrqId(40);
        gic.set_target(irq, CpuId(0));
        assert!(!gic.raise(irq));
        assert_eq!(gic.dropped_count(), 1);
    }

    #[test]
    fn unrouted_spi_is_dropped() {
        let mut gic = gic2();
        let irq = IrqId(40);
        gic.enable(irq);
        assert!(!gic.raise(irq));
        assert_eq!(gic.dropped_count(), 1);
    }

    #[test]
    fn acknowledge_empty_is_spurious() {
        let mut gic = gic2();
        assert_eq!(gic.acknowledge(CpuId(0)), SPURIOUS_IRQ);
    }

    #[test]
    fn pending_duplicates_collapse() {
        let mut gic = gic2();
        let timer = IrqId(27);
        gic.enable(timer);
        gic.raise_private(CpuId(0), timer);
        gic.raise_private(CpuId(0), timer);
        assert_eq!(gic.acknowledge(CpuId(0)), timer);
        gic.complete(CpuId(0), timer);
        assert_eq!(gic.acknowledge(CpuId(0)), SPURIOUS_IRQ);
    }

    #[test]
    fn nested_acknowledge_is_spurious_until_completion() {
        let mut gic = gic2();
        let timer = IrqId(27);
        gic.enable(timer);
        gic.raise_private(CpuId(0), timer);
        assert_eq!(gic.acknowledge(CpuId(0)), timer);
        gic.raise_private(CpuId(0), IrqId(29));
        gic.enable(IrqId(29));
        assert_eq!(gic.acknowledge(CpuId(0)), SPURIOUS_IRQ);
        gic.complete(CpuId(0), timer);
        // After EOI the next pending interrupt can be taken. (29 was
        // raised while disabled, so re-raise it.)
        gic.raise_private(CpuId(0), IrqId(29));
        assert_eq!(gic.acknowledge(CpuId(0)), IrqId(29));
    }

    #[test]
    fn sgi_targets_specific_cpu_and_ignores_enable() {
        let mut gic = gic2();
        assert!(gic.send_sgi(CpuId(1), IrqId(7)));
        assert!(gic.has_pending(CpuId(1)));
        assert!(!gic.has_pending(CpuId(0)));
        // Non-SGI id refused.
        assert!(!gic.send_sgi(CpuId(1), IrqId(33)));
    }

    #[test]
    fn complete_with_stale_id_is_ignored() {
        let mut gic = gic2();
        let timer = IrqId(27);
        gic.enable(timer);
        gic.raise_private(CpuId(0), timer);
        let active = gic.acknowledge(CpuId(0));
        gic.complete(CpuId(0), IrqId(99));
        assert_eq!(gic.active(CpuId(0)), Some(active));
        gic.complete(CpuId(0), active);
        assert_eq!(gic.active(CpuId(0)), None);
    }

    #[test]
    fn pending_total_tracks_queue_drain_and_reset() {
        let mut gic = gic2();
        assert!(!gic.any_pending());
        let timer = IrqId(27);
        gic.enable(timer);
        gic.raise_private(CpuId(0), timer);
        gic.raise_private(CpuId(0), timer); // duplicate collapses
        gic.send_sgi(CpuId(1), IrqId(1));
        assert_eq!(gic.total_pending(), 2);
        assert_eq!(gic.acknowledge(CpuId(0)), timer);
        assert_eq!(gic.total_pending(), 1);
        assert!(gic.any_pending());
        gic.reset_cpu_interface(CpuId(1));
        assert_eq!(gic.total_pending(), 0);
        assert!(!gic.any_pending());
        // Spurious acknowledges don't underflow the counter.
        assert_eq!(gic.acknowledge(CpuId(1)), SPURIOUS_IRQ);
        assert_eq!(gic.total_pending(), 0);
    }

    #[test]
    fn reset_cpu_interface_clears_state() {
        let mut gic = gic2();
        gic.send_sgi(CpuId(0), IrqId(1));
        gic.acknowledge(CpuId(0));
        gic.send_sgi(CpuId(0), IrqId(2));
        gic.reset_cpu_interface(CpuId(0));
        assert!(!gic.has_pending(CpuId(0)));
        assert_eq!(gic.active(CpuId(0)), None);
    }
}

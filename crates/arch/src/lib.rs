//! ARMv7-style architecture model for the `certify-uncertified` simulator.
//!
//! This crate models the subset of the ARMv7-A architecture (with the
//! virtualization extensions) that the DSN'22 paper's fault-injection
//! experiments observe:
//!
//! * a 16-entry general-purpose [`RegisterFile`] plus the status and
//!   syndrome registers a hypervisor trap handler consumes
//!   ([`registers`]),
//! * processor [`mode`]s, including the `HYP` mode introduced by the
//!   virtualization extensions,
//! * exception [`syndrome`] encoding (the `HSR` register), including the
//!   `0x24` *data abort from a lower exception level* class whose
//!   unhandled variant drives the paper's *CPU park* outcome,
//! * a GIC-like interrupt controller ([`gic`]) with software-generated
//!   interrupts used for cross-core cell management,
//! * per-CPU generic [`timer`]s, and
//! * the per-CPU execution state ([`cpu`]).
//!
//! The model is deliberately *behavioural*, not cycle-accurate: the fault
//! injection campaigns of the paper corrupt architecture registers at
//! hypervisor handler entry and observe system-level outcomes, so what
//! must be faithful is the flow of handler arguments and decisions
//! through registers — which this crate preserves.
//!
//! # Example
//!
//! ```
//! use certify_arch::{Cpu, CpuId, Reg};
//!
//! let mut cpu = Cpu::new(CpuId(0));
//! cpu.regs.write(Reg::R0, 0x1c28_0000);
//! assert_eq!(cpu.regs.read(Reg::R0), 0x1c28_0000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gic;
pub mod mmu;
pub mod mode;
pub mod psr;
pub mod registers;
pub mod syndrome;
pub mod timer;

pub use cpu::{Cpu, CpuId};
pub use gic::{Gic, IrqId, SPURIOUS_IRQ};
pub use mmu::{AccessKind, S2Fault, S2Perms, Stage2Table};
pub use mode::CpuMode;
pub use psr::Psr;
pub use registers::{Reg, RegisterFile};
pub use syndrome::{ExceptionClass, Syndrome};
pub use timer::GenericTimer;

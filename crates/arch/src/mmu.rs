//! Second-stage (stage-2) translation tables.
//!
//! The ARMv7 virtualization extensions give the hypervisor a second
//! translation stage: guest *intermediate physical addresses* (IPAs)
//! are mapped to machine physical addresses with their own permission
//! bits, and any access outside the mapping traps to HYP mode. This is
//! the hardware mechanism behind Jailhouse's memory partitioning —
//! and, therefore, behind every isolation claim the paper tests.
//!
//! The model is a faithful two-level table: a first-level table of
//! 4 MiB entries, each either a *block* mapping, a pointer to a
//! second-level table of 4 KiB page entries, or invalid. Identity
//! mapping is used (IPA = PA), like Jailhouse's flat cell mappings,
//! but the structure supports arbitrary mappings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Page size (4 KiB).
pub const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;
/// Page shift.
pub const PAGE_SHIFT: u32 = 12;
/// First-level block size (4 MiB).
pub const BLOCK_SIZE: u32 = 1 << BLOCK_SHIFT;
/// First-level shift.
pub const BLOCK_SHIFT: u32 = 22;

/// Stage-2 access permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct S2Perms {
    /// Reads permitted.
    pub read: bool,
    /// Writes permitted.
    pub write: bool,
    /// Instruction fetch permitted.
    pub execute: bool,
}

impl S2Perms {
    /// Read/write/execute.
    pub const RWX: S2Perms = S2Perms {
        read: true,
        write: true,
        execute: true,
    };
    /// Read/write, no execute.
    pub const RW: S2Perms = S2Perms {
        read: true,
        write: true,
        execute: false,
    };
    /// Read-only.
    pub const RO: S2Perms = S2Perms {
        read: true,
        write: false,
        execute: false,
    };

    /// Whether an access of the given kind is allowed.
    pub fn allows(self, access: AccessKind) -> bool {
        match access {
            AccessKind::Read => self.read,
            AccessKind::Write => self.write,
            AccessKind::Fetch => self.execute,
        }
    }
}

impl fmt::Display for S2Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.execute { 'x' } else { '-' }
        )
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Fetch,
}

/// A stage-2 translation fault, as delivered to the hypervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum S2Fault {
    /// No mapping covers the address.
    Translation {
        /// Faulting IPA.
        ipa: u32,
    },
    /// A mapping exists but forbids this access kind.
    Permission {
        /// Faulting IPA.
        ipa: u32,
        /// The offending access kind.
        access: AccessKind,
    },
}

impl fmt::Display for S2Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            S2Fault::Translation { ipa } => write!(f, "stage-2 translation fault at {ipa:#010x}"),
            S2Fault::Permission { ipa, access } => {
                write!(f, "stage-2 permission fault at {ipa:#010x} ({access:?})")
            }
        }
    }
}

/// Entries in a first-level table (4 GiB of IPA space / 4 MiB blocks).
const L1_ENTRIES: usize = 1 << (32 - BLOCK_SHIFT);
/// Entries in a second-level table (4 MiB block / 4 KiB pages).
const L2_ENTRIES: usize = 1 << (BLOCK_SHIFT - PAGE_SHIFT);

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum L1Entry {
    /// No mapping: every access through this entry faults.
    Invalid,
    /// 4 MiB identity-style block.
    Block { frame: u32, perms: S2Perms },
    /// Second-level page table: one raw descriptor word per 4 KiB page
    /// in the [`desc`] encoding (`0` = unmapped) — the same flat-array
    /// shape the hardware walks, which also makes building a cell's
    /// table a plain array fill instead of per-page map insertions.
    Table(Box<[u32; L2_ENTRIES]>),
}

/// A per-cell stage-2 translation table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stage2Table {
    /// First-level table, allocated on first mapping.
    l1: Vec<L1Entry>,
    mapped_pages: u64,
}

/// Encodes a raw page descriptor word.
fn encode_desc(frame: u32, perms: S2Perms) -> u32 {
    let mut word = (frame << PAGE_SHIFT) | desc::VALID;
    if perms.read {
        word |= desc::READ;
    }
    if perms.write {
        word |= desc::WRITE;
    }
    if perms.execute {
        word |= desc::EXECUTE;
    }
    word
}

/// Decodes the permission bits of a raw descriptor word.
fn decode_perms(word: u32) -> S2Perms {
    S2Perms {
        read: word & desc::READ != 0,
        write: word & desc::WRITE != 0,
        execute: word & desc::EXECUTE != 0,
    }
}

impl Stage2Table {
    /// Creates an empty (all-faulting) table.
    pub fn new() -> Stage2Table {
        Stage2Table::default()
    }

    /// Mutable first-level entry for `ipa`, growing the table on first
    /// use.
    fn l1_entry_mut(&mut self, ipa: u32) -> &mut L1Entry {
        if self.l1.is_empty() {
            self.l1.resize(L1_ENTRIES, L1Entry::Invalid);
        }
        &mut self.l1[(ipa >> BLOCK_SHIFT) as usize]
    }

    /// Splits a block entry into an equivalent second-level table.
    fn split_block(entry: &mut L1Entry) {
        if let L1Entry::Block { frame, perms } = *entry {
            let mut pages = Box::new([0u32; L2_ENTRIES]);
            for (i, word) in pages.iter_mut().enumerate() {
                *word = encode_desc(frame + i as u32, perms);
            }
            *entry = L1Entry::Table(pages);
        }
    }

    /// Maps `[ipa, ipa + size)` to the identical physical range with
    /// the given permissions, coalescing whole 4 MiB-aligned spans
    /// into block entries.
    ///
    /// # Panics
    ///
    /// Panics if `ipa` or `size` is not page-aligned, or the range
    /// wraps the address space.
    pub fn map_identity(&mut self, ipa: u32, size: u32, perms: S2Perms) {
        assert_eq!(ipa % PAGE_SIZE, 0, "ipa must be page-aligned");
        assert_eq!(size % PAGE_SIZE, 0, "size must be page-aligned");
        assert!(
            size == 0 || ipa.checked_add(size - 1).is_some(),
            "range wraps the address space"
        );
        let mut addr = ipa;
        let end = ipa.wrapping_add(size);
        while addr != end {
            let remaining = end.wrapping_sub(addr);
            if addr.is_multiple_of(BLOCK_SIZE) && remaining >= BLOCK_SIZE {
                let entry = self.l1_entry_mut(addr);
                *entry = L1Entry::Block {
                    frame: addr >> PAGE_SHIFT,
                    perms,
                };
                self.mapped_pages += u64::from(BLOCK_SIZE / PAGE_SIZE);
                addr = addr.wrapping_add(BLOCK_SIZE);
            } else {
                // Fill the whole page run within this 4 MiB window in
                // one pass over the second-level array (building a
                // cell's table is a hot part of per-trial setup).
                let window_end = (addr & !(BLOCK_SIZE - 1)).wrapping_add(BLOCK_SIZE);
                let run_end = if remaining < window_end.wrapping_sub(addr) {
                    end
                } else {
                    window_end
                };
                let entry = self.l1_entry_mut(addr);
                if matches!(entry, L1Entry::Invalid) {
                    *entry = L1Entry::Table(Box::new([0u32; L2_ENTRIES]));
                }
                Self::split_block(entry);
                let L1Entry::Table(pages) = entry else {
                    unreachable!("entry was just converted to a table");
                };
                let mut fresh = 0;
                let mut page = addr;
                while page != run_end {
                    let slot = &mut pages[((page >> PAGE_SHIFT) & 0x3ff) as usize];
                    fresh += u64::from(*slot & desc::VALID == 0);
                    *slot = encode_desc(page >> PAGE_SHIFT, perms);
                    page = page.wrapping_add(PAGE_SIZE);
                }
                self.mapped_pages += fresh;
                addr = run_end;
            }
        }
    }

    /// Maps one 4 KiB page `ipa -> pa`.
    ///
    /// # Panics
    ///
    /// Panics if either address is not page-aligned.
    pub fn map_page(&mut self, ipa: u32, pa: u32, perms: S2Perms) {
        assert_eq!(ipa % PAGE_SIZE, 0, "ipa must be page-aligned");
        assert_eq!(pa % PAGE_SIZE, 0, "pa must be page-aligned");
        let entry = self.l1_entry_mut(ipa);
        if matches!(entry, L1Entry::Invalid) {
            *entry = L1Entry::Table(Box::new([0u32; L2_ENTRIES]));
        }
        Self::split_block(entry);
        let L1Entry::Table(pages) = entry else {
            unreachable!("entry was just converted to a table");
        };
        let slot = &mut pages[((ipa >> PAGE_SHIFT) & 0x3ff) as usize];
        let fresh = *slot & desc::VALID == 0;
        *slot = encode_desc(pa >> PAGE_SHIFT, perms);
        if fresh {
            self.mapped_pages += 1;
        }
    }

    /// Removes the mapping of `[ipa, ipa + size)`.
    ///
    /// # Panics
    ///
    /// Panics if `ipa` or `size` is not page-aligned.
    pub fn unmap(&mut self, ipa: u32, size: u32) {
        assert_eq!(ipa % PAGE_SIZE, 0, "ipa must be page-aligned");
        assert_eq!(size % PAGE_SIZE, 0, "size must be page-aligned");
        if self.l1.is_empty() {
            return;
        }
        let mut addr = ipa;
        let end = ipa.wrapping_add(size);
        while addr != end {
            let entry = &mut self.l1[(addr >> BLOCK_SHIFT) as usize];
            if addr.is_multiple_of(BLOCK_SIZE)
                && end.wrapping_sub(addr) >= BLOCK_SIZE
                && matches!(entry, L1Entry::Block { .. })
            {
                *entry = L1Entry::Invalid;
                self.mapped_pages -= u64::from(BLOCK_SIZE / PAGE_SIZE);
                addr = addr.wrapping_add(BLOCK_SIZE);
                continue;
            }
            // Partial unmap of a block: split first.
            Self::split_block(entry);
            if let L1Entry::Table(pages) = entry {
                let slot = &mut pages[((addr >> PAGE_SHIFT) & 0x3ff) as usize];
                if *slot & desc::VALID != 0 {
                    *slot = 0;
                    self.mapped_pages -= 1;
                }
                if pages.iter().all(|&w| w & desc::VALID == 0) {
                    *entry = L1Entry::Invalid;
                }
            }
            addr = addr.wrapping_add(PAGE_SIZE);
        }
    }

    /// Translates an access: returns the physical address or the
    /// stage-2 fault the hardware would report.
    ///
    /// # Errors
    ///
    /// Returns [`S2Fault::Translation`] for unmapped addresses and
    /// [`S2Fault::Permission`] for mapped-but-forbidden accesses.
    pub fn translate(&self, ipa: u32, access: AccessKind) -> Result<u32, S2Fault> {
        let entry = self
            .l1
            .get((ipa >> BLOCK_SHIFT) as usize)
            .ok_or(S2Fault::Translation { ipa })?;
        let (frame, perms, offset) = match entry {
            L1Entry::Invalid => return Err(S2Fault::Translation { ipa }),
            L1Entry::Block { frame, perms } => (*frame, *perms, ipa & (BLOCK_SIZE - 1)),
            L1Entry::Table(pages) => {
                let word = pages[((ipa >> PAGE_SHIFT) & 0x3ff) as usize];
                if word & desc::VALID == 0 {
                    return Err(S2Fault::Translation { ipa });
                }
                (
                    word >> PAGE_SHIFT,
                    decode_perms(word),
                    ipa & (PAGE_SIZE - 1),
                )
            }
        };
        if !perms.allows(access) {
            return Err(S2Fault::Permission { ipa, access });
        }
        Ok((frame << PAGE_SHIFT) | offset)
    }

    /// Number of 4 KiB pages currently mapped.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// The raw descriptor word describing the page containing `ipa`,
    /// in the simplified encoding of [`desc`]: `0` when the page is
    /// unmapped. This is the word a memory-fault campaign corrupts to
    /// model MMU-table faults.
    pub fn descriptor_word(&self, ipa: u32) -> u32 {
        let Some(entry) = self.l1.get((ipa >> BLOCK_SHIFT) as usize) else {
            return 0;
        };
        match entry {
            L1Entry::Invalid => 0,
            L1Entry::Block { frame, perms } => {
                // The page's output frame within the 4 MiB block.
                encode_desc(frame + ((ipa >> PAGE_SHIFT) & 0x3ff), *perms)
            }
            L1Entry::Table(pages) => {
                let word = pages[((ipa >> PAGE_SHIFT) & 0x3ff) as usize];
                if word & desc::VALID == 0 {
                    0
                } else {
                    word
                }
            }
        }
    }

    /// Replaces the descriptor of the page containing `ipa` with the
    /// raw `word` ([`desc`] encoding). A cleared [`desc::VALID`] bit
    /// unmaps the page; a set one (re)maps it to the encoded output
    /// frame and permissions. This is how injected table corruption is
    /// written back — including corruptions that conjure a mapping out
    /// of a previously invalid descriptor.
    pub fn set_descriptor_word(&mut self, ipa: u32, word: u32) {
        let page_base = ipa & !(PAGE_SIZE - 1);
        if word & desc::VALID == 0 {
            self.unmap(page_base, PAGE_SIZE);
            return;
        }
        let perms = S2Perms {
            read: word & desc::READ != 0,
            write: word & desc::WRITE != 0,
            execute: word & desc::EXECUTE != 0,
        };
        self.map_page(page_base, word & !(PAGE_SIZE - 1), perms);
    }
}

/// Bit layout of the simplified raw stage-2 descriptor word used by
/// [`Stage2Table::descriptor_word`] / [`Stage2Table::set_descriptor_word`]:
/// the output frame lives in bits 12 and up (like a real short-descriptor
/// small page entry), the low bits carry validity and permissions.
pub mod desc {
    /// Descriptor is valid (a cleared bit means "translation fault").
    pub const VALID: u32 = 1 << 0;
    /// Reads permitted.
    pub const READ: u32 = 1 << 1;
    /// Writes permitted.
    pub const WRITE: u32 = 1 << 2;
    /// Instruction fetch permitted.
    pub const EXECUTE: u32 = 1 << 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unmapped_address_faults() {
        let table = Stage2Table::new();
        assert_eq!(
            table.translate(0x4000_0000, AccessKind::Read),
            Err(S2Fault::Translation { ipa: 0x4000_0000 })
        );
    }

    #[test]
    fn identity_block_mapping_translates() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, 0x0080_0000, S2Perms::RWX);
        assert_eq!(
            table.translate(0x4040_1234, AccessKind::Read),
            Ok(0x4040_1234)
        );
        assert_eq!(
            table.translate(0x4000_0000, AccessKind::Fetch),
            Ok(0x4000_0000)
        );
        // One byte past the end faults.
        assert!(table.translate(0x4080_0000, AccessKind::Read).is_err());
    }

    #[test]
    fn sub_block_ranges_use_page_entries() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_1000, 0x3000, S2Perms::RW);
        assert_eq!(table.mapped_pages(), 3);
        assert_eq!(
            table.translate(0x4000_2abc, AccessKind::Write),
            Ok(0x4000_2abc)
        );
        assert!(table.translate(0x4000_0000, AccessKind::Read).is_err());
        assert!(table.translate(0x4000_4000, AccessKind::Read).is_err());
    }

    #[test]
    fn permissions_are_enforced() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, 0x1000, S2Perms::RO);
        assert!(table.translate(0x4000_0000, AccessKind::Read).is_ok());
        assert_eq!(
            table.translate(0x4000_0000, AccessKind::Write),
            Err(S2Fault::Permission {
                ipa: 0x4000_0000,
                access: AccessKind::Write
            })
        );
        assert!(table.translate(0x4000_0000, AccessKind::Fetch).is_err());
    }

    #[test]
    fn non_identity_page_mapping() {
        let mut table = Stage2Table::new();
        table.map_page(0x0000_1000, 0x4567_8000, S2Perms::RW);
        assert_eq!(
            table.translate(0x0000_1040, AccessKind::Read),
            Ok(0x4567_8040)
        );
    }

    #[test]
    fn mapping_a_page_splits_a_block() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, BLOCK_SIZE, S2Perms::RWX);
        // Remap one page read-only.
        table.map_page(0x4010_0000, 0x4010_0000, S2Perms::RO);
        assert!(table.translate(0x4010_0000, AccessKind::Write).is_err());
        // Neighbouring pages keep the block permissions.
        assert!(table.translate(0x4010_1000, AccessKind::Write).is_ok());
    }

    #[test]
    fn unmap_whole_block() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, BLOCK_SIZE, S2Perms::RWX);
        table.unmap(0x4000_0000, BLOCK_SIZE);
        assert!(table.translate(0x4000_0000, AccessKind::Read).is_err());
        assert_eq!(table.mapped_pages(), 0);
    }

    #[test]
    fn partial_unmap_splits_block() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, BLOCK_SIZE, S2Perms::RW);
        table.unmap(0x4000_0000, PAGE_SIZE);
        assert!(table.translate(0x4000_0000, AccessKind::Read).is_err());
        assert!(table.translate(0x4000_1000, AccessKind::Read).is_ok());
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn unaligned_map_rejected() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0800, 0x1000, S2Perms::RW);
    }

    #[test]
    fn perms_display() {
        assert_eq!(S2Perms::RWX.to_string(), "rwx");
        assert_eq!(S2Perms::RO.to_string(), "r--");
    }

    #[test]
    fn descriptor_word_round_trips_page_mappings() {
        let mut table = Stage2Table::new();
        table.map_page(0x0000_1000, 0x4567_8000, S2Perms::RW);
        let word = table.descriptor_word(0x0000_1abc);
        assert_eq!(word & !0xfff, 0x4567_8000);
        assert_eq!(word & 0xf, desc::VALID | desc::READ | desc::WRITE);
        assert_eq!(table.descriptor_word(0x0000_2000), 0, "unmapped page");

        // Writing the same word back is a no-op for translation.
        table.set_descriptor_word(0x0000_1abc, word);
        assert_eq!(
            table.translate(0x0000_1040, AccessKind::Read),
            Ok(0x4567_8040)
        );
    }

    #[test]
    fn descriptor_word_reads_through_blocks() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, BLOCK_SIZE, S2Perms::RWX);
        let word = table.descriptor_word(0x4010_1234);
        assert_eq!(word & !0xfff, 0x4010_1000, "block entry resolves per page");
        assert_eq!(
            word & 0xf,
            desc::VALID | desc::READ | desc::WRITE | desc::EXECUTE
        );
    }

    #[test]
    fn clearing_the_valid_bit_unmaps_the_page() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, 0x3000, S2Perms::RW);
        let word = table.descriptor_word(0x4000_1000);
        table.set_descriptor_word(0x4000_1000, word & !desc::VALID);
        assert!(table.translate(0x4000_1800, AccessKind::Read).is_err());
        // The neighbours keep translating.
        assert!(table.translate(0x4000_0000, AccessKind::Read).is_ok());
        assert!(table.translate(0x4000_2000, AccessKind::Read).is_ok());
        assert_eq!(table.mapped_pages(), 2);
    }

    #[test]
    fn corrupted_frame_bits_redirect_the_translation() {
        let mut table = Stage2Table::new();
        table.map_identity(0x4000_0000, PAGE_SIZE, S2Perms::RW);
        let word = table.descriptor_word(0x4000_0000);
        // Flip one output-frame bit: the page now aliases other memory.
        table.set_descriptor_word(0x4000_0000, word ^ (1 << 20));
        assert_eq!(
            table.translate(0x4000_0040, AccessKind::Read),
            Ok(0x4010_0040)
        );
    }

    #[test]
    fn valid_word_on_an_unmapped_page_conjures_a_mapping() {
        let mut table = Stage2Table::new();
        table.set_descriptor_word(0x4000_0000, 0x4567_8000 | desc::VALID | desc::READ);
        assert_eq!(
            table.translate(0x4000_0010, AccessKind::Read),
            Ok(0x4567_8010)
        );
        assert!(table.translate(0x4000_0010, AccessKind::Write).is_err());
    }
}

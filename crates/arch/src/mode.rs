//! ARMv7 processor modes.
//!
//! Only the distinctions the hypervisor model cares about are kept: user
//! and supervisor for guests, `HYP` for the hypervisor itself (the mode
//! the virtualization extensions add), and the exception-entry modes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An ARMv7 processor mode, as encoded in the low five bits of the CPSR.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CpuMode {
    /// Unprivileged application mode.
    User,
    /// Fast-interrupt handling mode.
    Fiq,
    /// Interrupt handling mode.
    Irq,
    /// Supervisor mode — the privileged mode a guest kernel runs in.
    #[default]
    Supervisor,
    /// Abort mode, entered on memory faults taken within the same
    /// privilege level.
    Abort,
    /// Hypervisor mode (virtualization extensions) — where Jailhouse
    /// lives and where all three injected handlers execute.
    Hyp,
    /// Undefined-instruction handling mode.
    Undefined,
    /// Privileged mode sharing the user-mode register view.
    System,
}

impl CpuMode {
    /// The CPSR mode-field encoding of this mode (ARM ARM table B1-1).
    pub fn encoding(self) -> u32 {
        match self {
            CpuMode::User => 0b10000,
            CpuMode::Fiq => 0b10001,
            CpuMode::Irq => 0b10010,
            CpuMode::Supervisor => 0b10011,
            CpuMode::Abort => 0b10111,
            CpuMode::Hyp => 0b11010,
            CpuMode::Undefined => 0b11011,
            CpuMode::System => 0b11111,
        }
    }

    /// Decodes a CPSR mode field; returns `None` for reserved encodings.
    pub fn from_encoding(bits: u32) -> Option<CpuMode> {
        match bits & 0x1f {
            0b10000 => Some(CpuMode::User),
            0b10001 => Some(CpuMode::Fiq),
            0b10010 => Some(CpuMode::Irq),
            0b10011 => Some(CpuMode::Supervisor),
            0b10111 => Some(CpuMode::Abort),
            0b11010 => Some(CpuMode::Hyp),
            0b11011 => Some(CpuMode::Undefined),
            0b11111 => Some(CpuMode::System),
            _ => None,
        }
    }

    /// Whether this mode executes at a privilege level above the guest
    /// (i.e. the hypervisor's own mode).
    pub fn is_hyp(self) -> bool {
        matches!(self, CpuMode::Hyp)
    }

    /// Whether this mode is privileged (everything except `User`).
    pub fn is_privileged(self) -> bool {
        !matches!(self, CpuMode::User)
    }
}

impl fmt::Display for CpuMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CpuMode::User => "usr",
            CpuMode::Fiq => "fiq",
            CpuMode::Irq => "irq",
            CpuMode::Supervisor => "svc",
            CpuMode::Abort => "abt",
            CpuMode::Hyp => "hyp",
            CpuMode::Undefined => "und",
            CpuMode::System => "sys",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [CpuMode; 8] = [
        CpuMode::User,
        CpuMode::Fiq,
        CpuMode::Irq,
        CpuMode::Supervisor,
        CpuMode::Abort,
        CpuMode::Hyp,
        CpuMode::Undefined,
        CpuMode::System,
    ];

    #[test]
    fn encoding_round_trips() {
        for mode in ALL {
            assert_eq!(CpuMode::from_encoding(mode.encoding()), Some(mode));
        }
    }

    #[test]
    fn reserved_encodings_are_rejected() {
        // 0b10100 (old 26-bit modes) and 0b10110 (monitor, not modelled)
        // must not decode.
        assert_eq!(CpuMode::from_encoding(0b10100), None);
        assert_eq!(CpuMode::from_encoding(0b10110), None);
    }

    #[test]
    fn from_encoding_masks_high_bits() {
        let bits = 0xffff_ff00 | CpuMode::Hyp.encoding();
        assert_eq!(CpuMode::from_encoding(bits), Some(CpuMode::Hyp));
    }

    #[test]
    fn privilege_predicates() {
        assert!(CpuMode::Hyp.is_hyp());
        assert!(!CpuMode::Supervisor.is_hyp());
        assert!(CpuMode::Supervisor.is_privileged());
        assert!(!CpuMode::User.is_privileged());
    }

    #[test]
    fn display_names() {
        assert_eq!(CpuMode::Hyp.to_string(), "hyp");
        assert_eq!(CpuMode::Supervisor.to_string(), "svc");
    }
}

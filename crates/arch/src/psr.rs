//! Program status register (CPSR/SPSR) helpers.
//!
//! Only the fields the hypervisor model inspects are given accessors:
//! the mode field, the IRQ/FIQ mask bits, and the Thumb bit. Everything
//! else is carried opaquely so that bit flips injected into a saved CPSR
//! still round-trip faithfully.

use crate::mode::CpuMode;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Bit positions of the CPSR fields we interpret.
mod bits {
    /// Thumb execution state.
    pub const T: u32 = 1 << 5;
    /// FIQ mask (set = masked).
    pub const F: u32 = 1 << 6;
    /// IRQ mask (set = masked).
    pub const I: u32 = 1 << 7;
    /// Asynchronous abort mask.
    pub const A: u32 = 1 << 8;
}

/// A typed wrapper over a raw 32-bit program status register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Psr(pub u32);

impl Psr {
    /// Builds a PSR for entering `mode` with IRQs and FIQs unmasked.
    pub fn for_mode(mode: CpuMode) -> Psr {
        Psr(mode.encoding())
    }

    /// The processor mode encoded in the low five bits, if valid.
    pub fn mode(self) -> Option<CpuMode> {
        CpuMode::from_encoding(self.0)
    }

    /// Returns a copy with the mode field replaced.
    pub fn with_mode(self, mode: CpuMode) -> Psr {
        Psr((self.0 & !0x1f) | mode.encoding())
    }

    /// Whether IRQs are masked.
    pub fn irq_masked(self) -> bool {
        self.0 & bits::I != 0
    }

    /// Returns a copy with the IRQ mask set or cleared.
    pub fn with_irq_masked(self, masked: bool) -> Psr {
        if masked {
            Psr(self.0 | bits::I)
        } else {
            Psr(self.0 & !bits::I)
        }
    }

    /// Whether FIQs are masked.
    pub fn fiq_masked(self) -> bool {
        self.0 & bits::F != 0
    }

    /// Whether asynchronous aborts are masked.
    pub fn aborts_masked(self) -> bool {
        self.0 & bits::A != 0
    }

    /// Whether the Thumb bit is set. A corrupted saved CPSR that flips
    /// this bit makes the resumed guest decode garbage — one of the
    /// crash paths the campaign can take.
    pub fn thumb(self) -> bool {
        self.0 & bits::T != 0
    }
}

impl From<u32> for Psr {
    fn from(raw: u32) -> Self {
        Psr(raw)
    }
}

impl From<Psr> for u32 {
    fn from(psr: Psr) -> Self {
        psr.0
    }
}

impl fmt::Display for Psr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:08x}[{}{}{}{}]",
            self.0,
            if self.irq_masked() { 'I' } else { '-' },
            if self.fiq_masked() { 'F' } else { '-' },
            if self.thumb() { 'T' } else { '-' },
            self.mode()
                .map(|m| m.to_string())
                .unwrap_or_else(|| "???".into()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_mode_sets_only_mode() {
        let psr = Psr::for_mode(CpuMode::Hyp);
        assert_eq!(psr.mode(), Some(CpuMode::Hyp));
        assert!(!psr.irq_masked());
        assert!(!psr.fiq_masked());
        assert!(!psr.thumb());
    }

    #[test]
    fn with_mode_preserves_flags() {
        let psr = Psr::for_mode(CpuMode::User).with_irq_masked(true);
        let moved = psr.with_mode(CpuMode::Supervisor);
        assert_eq!(moved.mode(), Some(CpuMode::Supervisor));
        assert!(moved.irq_masked());
    }

    #[test]
    fn irq_mask_round_trips() {
        let psr = Psr::for_mode(CpuMode::Supervisor);
        assert!(psr.with_irq_masked(true).irq_masked());
        assert!(!psr
            .with_irq_masked(true)
            .with_irq_masked(false)
            .irq_masked());
    }

    #[test]
    fn corrupted_mode_field_reads_as_none() {
        // 0b00000 is not a valid ARMv7 mode.
        let psr = Psr(0);
        assert_eq!(psr.mode(), None);
    }

    #[test]
    fn display_marks_flags() {
        let psr = Psr::for_mode(CpuMode::Hyp).with_irq_masked(true);
        let s = psr.to_string();
        assert!(s.contains('I'));
        assert!(s.contains("hyp"));
    }
}

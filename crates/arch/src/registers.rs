//! The general-purpose register file and hypervisor-visible system
//! registers.
//!
//! The paper's fault model is "a random bit flip of a random architecture
//! register" at handler entry, so the register file is the central data
//! structure of the whole reproduction: every hypervisor handler argument
//! and every piece of saved guest context flows through it.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Number of general-purpose registers visible at an exception boundary
/// (`r0`–`r15`).
pub const NUM_GPRS: usize = 16;

/// A general-purpose register name.
///
/// `R13`–`R15` carry their conventional roles (`SP`, `LR`, `PC`); the
/// aliases are provided as associated constants so call sites can speak
/// the convention while the underlying index stays uniform for the
/// injector, which picks targets uniformly at random.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Reg {
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    R10,
    R11,
    R12,
    R13,
    R14,
    R15,
}

impl Reg {
    /// Stack pointer alias for [`Reg::R13`].
    pub const SP: Reg = Reg::R13;
    /// Link register alias for [`Reg::R14`].
    pub const LR: Reg = Reg::R14;
    /// Program counter alias for [`Reg::R15`].
    pub const PC: Reg = Reg::R15;

    /// All sixteen registers in index order.
    pub const ALL: [Reg; NUM_GPRS] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Returns the register with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`; use [`Reg::try_from_index`] for fallible
    /// conversion.
    pub fn from_index(index: usize) -> Reg {
        Reg::try_from_index(index).expect("register index out of range")
    }

    /// Returns the register with the given index, or `None` if the index
    /// is out of range.
    pub fn try_from_index(index: usize) -> Option<Reg> {
        Reg::ALL.get(index).copied()
    }

    /// The index of this register (0 for `r0` … 15 for `pc`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The AAPCS argument registers `r0`–`r3`, the subset a hypercall
    /// interface consumes. Used by the register-subset ablation (D2).
    pub const ARGUMENT: [Reg; 4] = [Reg::R0, Reg::R1, Reg::R2, Reg::R3];
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reg::R13 => write!(f, "sp"),
            Reg::R14 => write!(f, "lr"),
            Reg::R15 => write!(f, "pc"),
            other => write!(f, "r{}", other.index()),
        }
    }
}

/// The register state captured at an exception boundary.
///
/// This corresponds to Jailhouse's `struct trap_context` on ARM: the
/// sixteen general-purpose registers of the interrupted context plus the
/// status/syndrome registers the hypervisor reads (`CPSR`, `HSR`,
/// `HDFAR`/`HIFAR` merged as `far`, and `ELR_hyp`).
///
/// The fault injector mutates values *in place* here, exactly like the
/// dozen-line patch the paper added to Jailhouse.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct RegisterFile {
    gprs: [u32; NUM_GPRS],
    /// Current program status register of the interrupted context.
    pub cpsr: u32,
    /// Hyp syndrome register: why the exception was taken.
    pub hsr: u32,
    /// Fault address register (virtual/intermediate physical address of a
    /// faulting access).
    pub far: u32,
    /// Exception link register: where to resume the interrupted context.
    pub elr: u32,
}

impl RegisterFile {
    /// Creates a zeroed register file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads a general-purpose register.
    pub fn read(&self, reg: Reg) -> u32 {
        self.gprs[reg.index()]
    }

    /// Writes a general-purpose register.
    pub fn write(&mut self, reg: Reg, value: u32) {
        self.gprs[reg.index()] = value;
    }

    /// Flips bit `bit` (0–31) of `reg`, returning the new value.
    ///
    /// This is the paper's single-bit-flip transient fault. Flipping the
    /// same bit twice restores the original value (an involution — see
    /// the property tests).
    ///
    /// # Panics
    ///
    /// Panics if `bit >= 32`.
    pub fn flip_bit(&mut self, reg: Reg, bit: u8) -> u32 {
        assert!(bit < 32, "bit index out of range: {bit}");
        let idx = reg.index();
        self.gprs[idx] ^= 1 << bit;
        self.gprs[idx]
    }

    /// A view of all sixteen general-purpose registers in index order.
    pub fn gprs(&self) -> &[u32; NUM_GPRS] {
        &self.gprs
    }

    /// Copies the sixteen general-purpose registers from `other`,
    /// leaving status registers untouched. Used when restoring guest
    /// context on exception return.
    pub fn restore_gprs_from(&mut self, other: &RegisterFile) {
        self.gprs = other.gprs;
    }

    /// Iterator over `(register, value)` pairs, useful for diffing a
    /// corrupted context against a golden one.
    pub fn iter(&self) -> impl Iterator<Item = (Reg, u32)> + '_ {
        Reg::ALL.iter().map(move |&r| (r, self.read(r)))
    }
}

impl fmt::Display for RegisterFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (reg, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{reg}={value:08x}")?;
        }
        write!(
            f,
            " cpsr={:08x} hsr={:08x} far={:08x} elr={:08x}",
            self.cpsr, self.hsr, self.far, self.elr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_indices_round_trip() {
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(reg.index(), i);
            assert_eq!(Reg::from_index(i), *reg);
        }
    }

    #[test]
    fn try_from_index_rejects_out_of_range() {
        assert_eq!(Reg::try_from_index(16), None);
        assert_eq!(Reg::try_from_index(usize::MAX), None);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn from_index_panics_out_of_range() {
        let _ = Reg::from_index(16);
    }

    #[test]
    fn aliases_map_to_high_registers() {
        assert_eq!(Reg::SP, Reg::R13);
        assert_eq!(Reg::LR, Reg::R14);
        assert_eq!(Reg::PC, Reg::R15);
        assert_eq!(Reg::SP.to_string(), "sp");
        assert_eq!(Reg::R7.to_string(), "r7");
    }

    #[test]
    fn read_write_round_trip() {
        let mut rf = RegisterFile::new();
        for (i, reg) in Reg::ALL.iter().enumerate() {
            rf.write(*reg, (i as u32) * 0x1111);
        }
        for (i, reg) in Reg::ALL.iter().enumerate() {
            assert_eq!(rf.read(*reg), (i as u32) * 0x1111);
        }
    }

    #[test]
    fn flip_bit_is_involution() {
        let mut rf = RegisterFile::new();
        rf.write(Reg::R3, 0xdead_beef);
        let flipped = rf.flip_bit(Reg::R3, 17);
        assert_ne!(flipped, 0xdead_beef);
        let restored = rf.flip_bit(Reg::R3, 17);
        assert_eq!(restored, 0xdead_beef);
    }

    #[test]
    #[should_panic(expected = "bit index out of range")]
    fn flip_bit_rejects_bit_32() {
        let mut rf = RegisterFile::new();
        rf.flip_bit(Reg::R0, 32);
    }

    #[test]
    fn restore_gprs_leaves_status_registers() {
        let mut saved = RegisterFile::new();
        saved.write(Reg::R4, 44);
        let mut live = RegisterFile::new();
        live.hsr = 0x9000_0000;
        live.restore_gprs_from(&saved);
        assert_eq!(live.read(Reg::R4), 44);
        assert_eq!(live.hsr, 0x9000_0000);
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        let rf = RegisterFile::new();
        let rendered = rf.to_string();
        assert!(rendered.starts_with("r0=00000000"));
        assert!(rendered.contains("pc=00000000"));
        assert!(rendered.contains("hsr=00000000"));
    }
}

//! Hyp syndrome register (`HSR`) encoding and decoding.
//!
//! When a guest action traps to the hypervisor, the hardware reports
//! *why* in the `HSR`: a 6-bit *exception class* (EC), an instruction-
//! length bit, and 25 class-specific *instruction specific syndrome*
//! (ISS) bits. Jailhouse's `arch_handle_trap()` dispatches on the EC —
//! and when it encounters a class it has no handler for, it prints the
//! class and parks the CPU. The paper observes exactly this for class
//! **`0x24`** (data abort from a lower exception level) whose ISS marks
//! the abort as un-emulatable: the *CPU park* outcome.
//!
//! Because the paper's faults flip bits of a register holding a raw
//! `HSR` value, this module keeps encoding/decoding total: *any* u32
//! decodes to *some* [`Syndrome`], possibly with an
//! [`ExceptionClass::Unknown`] class — just like hardware.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Exception classes reported in `HSR[31:26]` (ARMv7 virtualization
/// extensions subset relevant to a partitioning hypervisor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExceptionClass {
    /// `0x00` — unknown reason; always unhandled.
    Unknown,
    /// `0x01` — trapped `WFI`/`WFE`. Used by parked CPUs waiting for a
    /// cell start event.
    WfiWfe,
    /// `0x03` — trapped CP15 access (system register emulation).
    Cp15Trap,
    /// `0x11` — supervisor call taken from the guest (not routed to hyp
    /// in our configuration, listed for completeness).
    Svc,
    /// `0x12` — hypervisor call: the entry point of
    /// `arch_handle_hvc()`.
    Hvc,
    /// `0x13` — secure monitor call (always rejected).
    Smc,
    /// `0x20` — prefetch abort from a lower exception level (guest
    /// fetched from an unmapped/not-executable address).
    PrefetchAbortLower,
    /// `0x24` — data abort from a lower exception level. The MMIO
    /// emulation entry point, and — when the ISS says the access cannot
    /// be emulated — the paper's `0x24` unhandled-trap park path.
    DataAbortLower,
    /// Any other 6-bit class value, carried verbatim.
    Other(u8),
}

impl ExceptionClass {
    /// The raw 6-bit class code.
    pub fn code(self) -> u8 {
        match self {
            ExceptionClass::Unknown => 0x00,
            ExceptionClass::WfiWfe => 0x01,
            ExceptionClass::Cp15Trap => 0x03,
            ExceptionClass::Svc => 0x11,
            ExceptionClass::Hvc => 0x12,
            ExceptionClass::Smc => 0x13,
            ExceptionClass::PrefetchAbortLower => 0x20,
            ExceptionClass::DataAbortLower => 0x24,
            ExceptionClass::Other(code) => code & 0x3f,
        }
    }

    /// Decodes a 6-bit class code. Total: unknown codes map to
    /// [`ExceptionClass::Other`].
    pub fn from_code(code: u8) -> ExceptionClass {
        match code & 0x3f {
            0x00 => ExceptionClass::Unknown,
            0x01 => ExceptionClass::WfiWfe,
            0x03 => ExceptionClass::Cp15Trap,
            0x11 => ExceptionClass::Svc,
            0x12 => ExceptionClass::Hvc,
            0x13 => ExceptionClass::Smc,
            0x20 => ExceptionClass::PrefetchAbortLower,
            0x24 => ExceptionClass::DataAbortLower,
            other => ExceptionClass::Other(other),
        }
    }

    /// Whether a partitioning hypervisor has a handler for this class.
    /// Unhandled classes lead to `cpu_park()`.
    pub fn is_handled(self) -> bool {
        matches!(
            self,
            ExceptionClass::WfiWfe
                | ExceptionClass::Cp15Trap
                | ExceptionClass::Hvc
                | ExceptionClass::DataAbortLower
        )
    }
}

impl fmt::Display for ExceptionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ec=0x{:02x}", self.code())
    }
}

/// Bit layout of the `HSR` as we model it.
mod layout {
    /// EC occupies bits 31:26.
    pub const EC_SHIFT: u32 = 26;
    /// Instruction-length bit.
    pub const IL: u32 = 1 << 25;
    /// ISS mask (bits 24:0).
    pub const ISS_MASK: u32 = (1 << 25) - 1;
    /// ISS valid bit inside a data-abort ISS: the abort carries enough
    /// information (register, size, direction) to be emulated as MMIO.
    pub const ISS_ISV: u32 = 1 << 24;
    /// Write-not-read bit inside a data-abort ISS.
    pub const ISS_WNR: u32 = 1 << 6;
    /// Source/target register field (bits 19:16) inside a data-abort ISS.
    pub const ISS_SRT_SHIFT: u32 = 16;
    /// Access-size field (bits 23:22): 0 byte, 1 halfword, 2 word.
    pub const ISS_SAS_SHIFT: u32 = 22;
}

/// A decoded hyp syndrome value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Syndrome {
    /// Why the trap was taken.
    pub class: ExceptionClass,
    /// 32-bit (true) or 16-bit (false) trapping instruction.
    pub il: bool,
    /// Class-specific syndrome bits (25 bits).
    pub iss: u32,
}

impl Syndrome {
    /// Builds a syndrome for a hypervisor call with the given 16-bit
    /// immediate in the ISS (the immediate is ignored by Jailhouse; the
    /// call number travels in `r0`).
    pub fn hvc(imm: u16) -> Syndrome {
        Syndrome {
            class: ExceptionClass::Hvc,
            il: true,
            iss: imm as u32,
        }
    }

    /// Builds a syndrome for an emulatable MMIO data abort: `ISV` set,
    /// direction, access size of one word, and the guest register that
    /// sources/receives the data.
    pub fn mmio_data_abort(write: bool, srt: u8) -> Syndrome {
        let mut iss = layout::ISS_ISV | (2 << layout::ISS_SAS_SHIFT);
        if write {
            iss |= layout::ISS_WNR;
        }
        iss |= u32::from(srt & 0xf) << layout::ISS_SRT_SHIFT;
        Syndrome {
            class: ExceptionClass::DataAbortLower,
            il: true,
            iss,
        }
    }

    /// Builds a syndrome for a data abort *without* valid decode
    /// information (`ISV` clear) — the un-emulatable abort that an
    /// unhandled-trap path turns into a CPU park.
    pub fn invalid_data_abort() -> Syndrome {
        Syndrome {
            class: ExceptionClass::DataAbortLower,
            il: true,
            iss: 0,
        }
    }

    /// Builds a trapped-WFI syndrome.
    pub fn wfi() -> Syndrome {
        Syndrome {
            class: ExceptionClass::WfiWfe,
            il: true,
            iss: 0,
        }
    }

    /// Encodes to the raw `HSR` value.
    pub fn encode(self) -> u32 {
        (u32::from(self.class.code()) << layout::EC_SHIFT)
            | if self.il { layout::IL } else { 0 }
            | (self.iss & layout::ISS_MASK)
    }

    /// Decodes a raw `HSR` value. Total — never fails, matching
    /// hardware behaviour under corrupted values.
    pub fn decode(raw: u32) -> Syndrome {
        Syndrome {
            class: ExceptionClass::from_code((raw >> layout::EC_SHIFT) as u8),
            il: raw & layout::IL != 0,
            iss: raw & layout::ISS_MASK,
        }
    }

    /// For a data abort: whether the ISS carries valid decode
    /// information, i.e. the abort can be emulated as MMIO.
    pub fn isv(self) -> bool {
        self.iss & layout::ISS_ISV != 0
    }

    /// For a data abort: whether the access was a write.
    pub fn is_write(self) -> bool {
        self.iss & layout::ISS_WNR != 0
    }

    /// For a data abort: the index of the guest register that sources
    /// (write) or receives (read) the data.
    pub fn srt(self) -> u8 {
        ((self.iss >> layout::ISS_SRT_SHIFT) & 0xf) as u8
    }

    /// For a data abort: the access size in bytes (1, 2 or 4); corrupted
    /// size fields decode to `None`.
    pub fn access_size(self) -> Option<u8> {
        match (self.iss >> layout::ISS_SAS_SHIFT) & 0x3 {
            0 => Some(1),
            1 => Some(2),
            2 => Some(4),
            _ => None,
        }
    }
}

impl fmt::Display for Syndrome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} iss=0x{:07x}", self.class, self.iss)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_codes_match_architecture() {
        assert_eq!(ExceptionClass::Hvc.code(), 0x12);
        assert_eq!(ExceptionClass::DataAbortLower.code(), 0x24);
        assert_eq!(ExceptionClass::PrefetchAbortLower.code(), 0x20);
        assert_eq!(ExceptionClass::WfiWfe.code(), 0x01);
    }

    #[test]
    fn class_round_trips_all_codes() {
        for code in 0u8..64 {
            assert_eq!(ExceptionClass::from_code(code).code(), code);
        }
    }

    #[test]
    fn handled_set_is_exactly_the_hypervisor_handlers() {
        let handled: Vec<u8> = (0u8..64)
            .filter(|&c| ExceptionClass::from_code(c).is_handled())
            .collect();
        assert_eq!(handled, vec![0x01, 0x03, 0x12, 0x24]);
    }

    #[test]
    fn syndrome_encode_decode_round_trips() {
        let syndromes = [
            Syndrome::hvc(0),
            Syndrome::hvc(0x4a48),
            Syndrome::mmio_data_abort(true, 2),
            Syndrome::mmio_data_abort(false, 15),
            Syndrome::invalid_data_abort(),
            Syndrome::wfi(),
        ];
        for s in syndromes {
            assert_eq!(Syndrome::decode(s.encode()), s);
        }
    }

    #[test]
    fn decode_is_total() {
        // Any u32 decodes without panicking; spot-check a few corrupted
        // values of an MMIO abort.
        let base = Syndrome::mmio_data_abort(true, 1).encode();
        for bit in 0..32 {
            let _ = Syndrome::decode(base ^ (1 << bit));
        }
    }

    #[test]
    fn mmio_abort_iss_fields() {
        let s = Syndrome::mmio_data_abort(true, 7);
        assert!(s.isv());
        assert!(s.is_write());
        assert_eq!(s.srt(), 7);
        assert_eq!(s.access_size(), Some(4));

        let r = Syndrome::mmio_data_abort(false, 0);
        assert!(!r.is_write());
    }

    #[test]
    fn invalid_abort_has_no_isv() {
        assert!(!Syndrome::invalid_data_abort().isv());
    }

    #[test]
    fn flipping_ec_bits_changes_class() {
        // Flipping bit 27 of an HVC syndrome (EC 0x12) yields EC 0x10 —
        // an unhandled class. This is precisely the fault path that
        // produces the paper's unhandled-trap outcomes.
        let hvc = Syndrome::hvc(0).encode();
        let corrupted = Syndrome::decode(hvc ^ (1 << 27));
        assert_eq!(corrupted.class.code(), 0x10);
        assert!(!corrupted.class.is_handled());
    }
}

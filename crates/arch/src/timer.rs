//! Per-CPU generic timer model.
//!
//! Each core owns a down-counting timer that raises a private peripheral
//! interrupt when it expires and (optionally) reloads itself. The root
//! cell's guest uses it as the scheduler tick; the RTOS cell uses its
//! own instance for the FreeRTOS tick. Time is counted in simulator
//! steps, not nanoseconds — the paper's "1 minute test" becomes a fixed
//! step budget (see `certify-core`).

use crate::gic::IrqId;
use serde::{Deserialize, Serialize};

/// The PPI line conventionally used by the virtual generic timer.
pub const TIMER_IRQ: IrqId = IrqId(27);

/// A down-counting, auto-reloading timer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenericTimer {
    period: u64,
    remaining: u64,
    enabled: bool,
    irq: IrqId,
    fired: u64,
}

impl GenericTimer {
    /// Creates a disabled timer with the given reload period (in steps)
    /// wired to [`TIMER_IRQ`].
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn new(period: u64) -> GenericTimer {
        Self::with_irq(period, TIMER_IRQ)
    }

    /// Creates a disabled timer wired to a custom interrupt line.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_irq(period: u64, irq: IrqId) -> GenericTimer {
        assert!(period > 0, "timer period must be non-zero");
        GenericTimer {
            period,
            remaining: period,
            enabled: false,
            irq,
            fired: 0,
        }
    }

    /// Starts the timer from a full period.
    pub fn start(&mut self) {
        self.enabled = true;
        self.remaining = self.period;
    }

    /// Stops the timer; the counter keeps its value.
    pub fn stop(&mut self) {
        self.enabled = false;
    }

    /// Whether the timer is running.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The reload period in steps.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Changes the reload period; takes effect at the next reload.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn set_period(&mut self, period: u64) {
        assert!(period > 0, "timer period must be non-zero");
        self.period = period;
    }

    /// The interrupt line this timer raises.
    pub fn irq(&self) -> IrqId {
        self.irq
    }

    /// How many times the timer has expired since creation.
    pub fn fired_count(&self) -> u64 {
        self.fired
    }

    /// Advances the timer by one step. Returns `Some(irq)` when the
    /// timer expires on this step (the caller forwards it to the GIC).
    pub fn step(&mut self) -> Option<IrqId> {
        if !self.enabled {
            return None;
        }
        self.remaining -= 1;
        if self.remaining == 0 {
            self.remaining = self.period;
            self.fired += 1;
            Some(self.irq)
        } else {
            None
        }
    }

    /// Advances the timer by `delta` steps *known not to reach an
    /// expiry boundary* — the deadline-driven fast path of the board's
    /// clock. Returns `Some(irq)` when the timer expires exactly at
    /// the end of the delta.
    ///
    /// # Panics
    ///
    /// Panics if `delta` would step past an expiry (the caller must
    /// synchronise at every deadline).
    pub fn advance_by(&mut self, delta: u64) -> Option<IrqId> {
        if !self.enabled || delta == 0 {
            return None;
        }
        assert!(delta <= self.remaining, "advance past a timer expiry");
        self.remaining -= delta;
        if self.remaining == 0 {
            self.remaining = self.period;
            self.fired += 1;
            Some(self.irq)
        } else {
            None
        }
    }

    /// Steps until the next expiry, or `None` when disabled.
    pub fn steps_until_fire(&self) -> Option<u64> {
        self.enabled.then_some(self.remaining)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "period must be non-zero")]
    fn zero_period_rejected() {
        let _ = GenericTimer::new(0);
    }

    #[test]
    fn disabled_timer_never_fires() {
        let mut t = GenericTimer::new(3);
        for _ in 0..10 {
            assert_eq!(t.step(), None);
        }
        assert_eq!(t.fired_count(), 0);
    }

    #[test]
    fn fires_every_period_steps() {
        let mut t = GenericTimer::new(3);
        t.start();
        let fires: Vec<bool> = (0..9).map(|_| t.step().is_some()).collect();
        assert_eq!(
            fires,
            vec![false, false, true, false, false, true, false, false, true]
        );
        assert_eq!(t.fired_count(), 3);
    }

    #[test]
    fn start_reloads_full_period() {
        let mut t = GenericTimer::new(4);
        t.start();
        t.step();
        t.step();
        t.start(); // restart mid-count
        assert_eq!(t.step(), None);
        assert_eq!(t.step(), None);
        assert_eq!(t.step(), None);
        assert!(t.step().is_some());
    }

    #[test]
    fn set_period_applies_at_reload() {
        let mut t = GenericTimer::new(2);
        t.start();
        t.step();
        t.set_period(5);
        assert!(t.step().is_some()); // old period completes
        let mut count = 0;
        while t.step().is_none() {
            count += 1;
        }
        assert_eq!(count, 4); // new period of 5 steps
    }

    #[test]
    fn custom_irq_line_is_reported() {
        let mut t = GenericTimer::with_irq(1, IrqId(30));
        t.start();
        assert_eq!(t.step(), Some(IrqId(30)));
        assert_eq!(t.irq(), IrqId(30));
    }
}

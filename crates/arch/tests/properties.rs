//! Property-based tests for the architecture model.

use certify_arch::{CpuMode, ExceptionClass, Psr, Reg, RegisterFile, Syndrome};
use proptest::prelude::*;

fn any_reg() -> impl Strategy<Value = Reg> {
    (0usize..16).prop_map(Reg::from_index)
}

proptest! {
    /// Flipping the same bit twice is the identity: the paper's
    /// transient single-bit-flip fault is an involution.
    #[test]
    fn bit_flip_is_involution(value in any::<u32>(), reg in any_reg(), bit in 0u8..32) {
        let mut rf = RegisterFile::new();
        rf.write(reg, value);
        rf.flip_bit(reg, bit);
        rf.flip_bit(reg, bit);
        prop_assert_eq!(rf.read(reg), value);
    }

    /// A single bit flip always changes the register value.
    #[test]
    fn bit_flip_changes_value(value in any::<u32>(), reg in any_reg(), bit in 0u8..32) {
        let mut rf = RegisterFile::new();
        rf.write(reg, value);
        let flipped = rf.flip_bit(reg, bit);
        prop_assert_ne!(flipped, value);
    }

    /// A flip in one register never disturbs any other register.
    #[test]
    fn bit_flip_is_local(values in proptest::array::uniform16(any::<u32>()),
                         target in 0usize..16, bit in 0u8..32) {
        let mut rf = RegisterFile::new();
        for (i, v) in values.iter().enumerate() {
            rf.write(Reg::from_index(i), *v);
        }
        rf.flip_bit(Reg::from_index(target), bit);
        for (i, v) in values.iter().enumerate() {
            if i != target {
                prop_assert_eq!(rf.read(Reg::from_index(i)), *v);
            }
        }
    }

    /// HSR decode is total and encode∘decode is idempotent on the
    /// modelled bits: decoding any raw value and re-encoding yields a
    /// fixed point.
    #[test]
    fn syndrome_decode_encode_fixed_point(raw in any::<u32>()) {
        let decoded = Syndrome::decode(raw);
        let reencoded = decoded.encode();
        prop_assert_eq!(Syndrome::decode(reencoded), decoded);
    }

    /// Exception-class codes survive a round trip for every 6-bit code.
    #[test]
    fn exception_class_round_trip(code in 0u8..64) {
        prop_assert_eq!(ExceptionClass::from_code(code).code(), code);
    }

    /// PSR mode replacement touches only the mode field.
    #[test]
    fn psr_with_mode_preserves_upper_bits(raw in any::<u32>()) {
        let psr = Psr(raw).with_mode(CpuMode::Hyp);
        prop_assert_eq!(psr.0 & !0x1f, raw & !0x1f);
        prop_assert_eq!(psr.mode(), Some(CpuMode::Hyp));
    }

    /// Register Display names are unique (log parsing relies on this).
    #[test]
    fn register_names_unique(a in 0usize..16, b in 0usize..16) {
        prop_assume!(a != b);
        prop_assert_ne!(
            Reg::from_index(a).to_string(),
            Reg::from_index(b).to_string()
        );
    }
}

//! Ablations — the design-choice studies DESIGN.md calls out (D1–D4)
//! plus the paper's irqchip-exclusion rationale.
//!
//! * **A1 / D3 — occurrence rate**: sweep the injection cadence around
//!   the paper's 1/100; the outcome distribution shifts with exposure.
//! * **A2 / D2 — register subset**: restrict the flip target pool to
//!   the argument registers vs. the pointer-live registers vs. all
//!   sixteen; pointer-live flips drive fault propagation.
//! * **A3 / D4 — fault models**: the future-work model family
//!   (double-bit, register-zero, register-random) against the paper's
//!   single-bit flip.
//! * **A4 — irqchip inclusion**: the paper excluded
//!   `irqchip_handle_irq()` because corrupting its only live parameter
//!   (the vector number) "default[s] to an IRQ error, which is
//!   completely predictable"; injecting into it confirms the claim.
//!
//! Regenerate with `cargo bench -p certify_bench --bench ablations`.

use certify_arch::{CpuId, Reg};
use certify_bench::{banner, run_and_print, BASE_SEED};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::{FaultModel, InjectionSpec, Intensity, Outcome};
use certify_guest_linux::MgmtScript;
use certify_hypervisor::HandlerKind;
use criterion::{black_box, Criterion};

const TRIALS: usize = 60;

fn scenario_with_spec(name: &str, spec: InjectionSpec) -> Scenario {
    let mut scenario = Scenario::e3_fig3();
    scenario.name = name.to_string();
    scenario.spec = Some(spec);
    scenario
}

fn a0_trigger_mode() {
    banner("A0 (D1): call-count trigger (the paper's) vs time trigger");
    let call_based =
        scenario_with_spec("e3-trigger-calls", InjectionSpec::e3_nonroot_trap_medium());
    run_and_print(call_based, TRIALS);
    let time_based = scenario_with_spec(
        "e3-trigger-time",
        InjectionSpec::e3_nonroot_trap_medium().with_time_trigger(3200),
    );
    run_and_print(time_based, TRIALS);
}

fn a1_rate_sweep() {
    banner("A1 (D3): occurrence-rate sweep on the Figure-3 experiment");
    for rate in [25u64, 50, 100, 200] {
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_rate(rate);
        let mut scenario = scenario_with_spec(&format!("e3-rate-1/{rate}"), spec);
        // Scale the test duration with the cadence so every trial sees
        // at least one injection (the trap stream runs at roughly one
        // call per 16 steps).
        scenario.steps = rate * 32 + 1600;
        run_and_print(scenario, TRIALS);
    }
}

fn a2_register_subsets() {
    banner("A2 (D2): register-subset sweep (medium intensity)");
    let subsets: [(&str, Vec<Reg>); 3] = [
        ("argument r0-r3", Reg::ARGUMENT.to_vec()),
        (
            "pointer-live r3,r5,r7,r11,r13",
            certify_hypervisor::regconv::POINTER_LIVE.to_vec(),
        ),
        ("all sixteen", Reg::ALL.to_vec()),
    ];
    for (label, pool) in subsets {
        let spec =
            InjectionSpec::e3_nonroot_trap_medium().with_model(FaultModel::SingleBitFlip { pool });
        let scenario = scenario_with_spec(&format!("e3-regs-{label}"), spec);
        println!("-- pool: {label}");
        run_and_print(scenario, TRIALS);
    }
}

fn a3_fault_models() {
    banner("A3 (D4): fault-model family (future-work models)");
    let models = [
        FaultModel::single_bit_flip(),
        FaultModel::DoubleBitFlip {
            pool: Reg::ALL.to_vec(),
        },
        FaultModel::RegisterZero {
            pool: Reg::ALL.to_vec(),
        },
        FaultModel::RegisterRandom {
            pool: Reg::ALL.to_vec(),
        },
    ];
    for model in models {
        let name = model.name().to_string();
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_model(model);
        let scenario = scenario_with_spec(&format!("e3-model-{name}"), spec);
        run_and_print(scenario, TRIALS);
    }
}

fn a4_irqchip_inclusion() {
    banner("A4: injecting into irqchip_handle_irq (the excluded handler)");
    let spec = InjectionSpec::new(
        Intensity::Medium,
        [HandlerKind::IrqchipHandleIrq],
        Some(CpuId(1)),
    )
    .with_rate(20);
    let scenario = Scenario {
        name: "a4-irqchip".into(),
        script: MgmtScript::bring_up_and_run(u64::MAX / 2),
        spec: Some(spec),
        mem_spec: None,
        steps: 4500,
        rtos_heartbeat: false,
    };
    let result = Campaign::new(scenario, TRIALS, BASE_SEED).run_parallel(8);
    println!("{result}");
    // The paper's rationale: corrupting the vector number is
    // completely predictable — an IRQ error, never an escalation.
    let benign = result.fraction(Outcome::Correct);
    println!(
        "irqchip injections benign in {:.1}% of trials (paper: 'completely predictable')\n",
        benign * 100.0
    );
    assert!(
        benign > 0.9,
        "irqchip injections unexpectedly escalated: {result}"
    );
}

fn main() {
    a0_trigger_mode();
    a1_rate_sweep();
    a2_register_subsets();
    a3_fault_models();
    a4_irqchip_inclusion();

    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let runner = scenario_with_spec(
        "bench-register-random",
        InjectionSpec::e3_nonroot_trap_medium().with_model(FaultModel::RegisterRandom {
            pool: Reg::ALL.to_vec(),
        }),
    )
    .runner();
    criterion.bench_function("ablation_trial_register_random", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    criterion.final_summary();
}

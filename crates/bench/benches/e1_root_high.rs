//! E1 — high-intensity injection in root-cell context (§III prose).
//!
//! Paper claim: targeting `arch_handle_hvc()` and `arch_handle_trap()`
//! in the context of the root cell at high intensity *always* returns
//! "invalid arguments"; the root cell is not allocated at all — the
//! correct, expected fail-stop behaviour.
//!
//! Regenerate with `cargo bench -p certify_bench --bench e1_root_high`.

use certify_analysis::ExperimentReport;
use certify_bench::{banner, run_and_print_streamed, DETERMINISTIC_TRIALS};
use certify_core::campaign::Scenario;
use criterion::{black_box, Criterion};

fn regenerate() {
    banner("E1: high intensity, root-cell context (enable attempt)");
    let result = run_and_print_streamed(Scenario::e1_root_high(), DETERMINISTIC_TRIALS);
    let report = ExperimentReport::e1(&result);
    println!("{report}");
    assert!(report.reproduced, "E1 shape did not reproduce:\n{report}");
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(20);
    let runner = Scenario::e1_root_high().runner();
    criterion.bench_function("e1_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    criterion.final_summary();
}

//! E2 — high-intensity injection filtered to CPU 1 (§III prose).
//!
//! Paper claim: the cell is allocated but either the CPU fails to come
//! online (hot-plug swap) or the cell is left non-executable; the
//! USART stays completely blank, yet Jailhouse reports the cell
//! running; `cell shutdown` still returns the CPU and peripherals to
//! the root cell. An inconsistent — and dangerous — state.
//!
//! Two campaigns: the boot-window-aligned one (deterministic
//! reproduction of the peculiar observation) and the free-running one
//! (cadence phase swept per seed; inconsistent states appear alongside
//! isolated CPU parks).
//!
//! Regenerate with `cargo bench -p certify_bench --bench e2_nonroot_high`.

use certify_analysis::ExperimentReport;
use certify_bench::{banner, run_and_print_streamed, BASE_SEED, DETERMINISTIC_TRIALS};
use certify_core::campaign::Scenario;
use certify_core::Outcome;
use criterion::{black_box, Criterion};

fn regenerate() {
    banner("E2a: boot-window aligned (deterministic)");
    let boot_window = run_and_print_streamed(Scenario::e2_boot_window(), DETERMINISTIC_TRIALS);

    banner("E2b: free-running lifecycle cycling");
    let full = run_and_print_streamed(Scenario::e2_nonroot_high(), 80);

    // The paper's three supporting observations, checked on one
    // boot-window trial:
    banner("E2: inconsistent-state anatomy (one trial)");
    let trial = Scenario::e2_boot_window().run_trial(BASE_SEED);
    println!("outcome:     {}", trial.outcome);
    for note in &trial.report.notes {
        println!("evidence:    {note}");
    }
    assert_eq!(trial.outcome, Outcome::InconsistentState);

    let report = ExperimentReport::e2(&boot_window, &full);
    println!("{report}");
    assert!(report.reproduced, "E2 shape did not reproduce:\n{report}");
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let runner = Scenario::e2_boot_window().runner();
    criterion.bench_function("e2_boot_window_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    criterion.final_summary();
}

//! E3 — Figure 3: non-root cell availability under medium-intensity
//! injection into `arch_handle_trap()`.
//!
//! Paper claim: the cell behaves correctly in the majority of cases;
//! in ~30 % a *panic park* happens (the fault propagates to the whole
//! system, kernel panic); a limited number of tests end in a *CPU
//! park* (unhandled trap `0x24`, `cpu_park()` called, fault isolated —
//! destroying the cell returns CPU 1 without issue).
//!
//! Regenerate with `cargo bench -p certify_bench --bench e3_fig3_medium`.

use certify_analysis::{ExperimentReport, Figure3};
use certify_bench::{banner, run_and_print_streamed, DISTRIBUTION_TRIALS};
use certify_core::campaign::Scenario;
use criterion::{black_box, Criterion};

fn regenerate() {
    banner("E3: Figure 3 — medium intensity on non-root arch_handle_trap");
    let stats = run_and_print_streamed(Scenario::e3_fig3(), DISTRIBUTION_TRIALS);

    let figure = Figure3::from_stats(&stats);
    println!("{}", figure.render_chart());
    println!("CSV:\n{}", figure.render_csv());

    let report = ExperimentReport::e3(&stats);
    println!("{report}");
    assert!(
        report.reproduced,
        "Figure 3 shape did not reproduce:\n{report}"
    );
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let runner = Scenario::e3_fig3().runner();
    criterion.bench_function("e3_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    criterion.final_summary();
}

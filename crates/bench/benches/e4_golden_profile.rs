//! E4 — golden-run profiling of the injection points (§III).
//!
//! Paper claim: monitoring golden (fault-free) runs of the hypervisor
//! yields three candidate functions — `irqchip_handle_irq()`,
//! `arch_handle_trap()` and `arch_handle_hvc()` — the virtualization-
//! extension entry points of the ARMv7 port.
//!
//! Regenerate with `cargo bench -p certify_bench --bench e4_golden_profile`.

use certify_analysis::ExperimentReport;
use certify_bench::banner;
use certify_core::profiler::profile_golden_run;
use criterion::{black_box, Criterion};

fn regenerate() {
    banner("E4: golden-run profile");
    let profile = profile_golden_run(3000);
    println!("{profile}");
    let report = ExperimentReport::e4(&profile);
    println!("{report}");
    assert!(report.reproduced, "E4 did not reproduce:\n{report}");
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    criterion.bench_function("golden_profile_3000_steps", |b| {
        b.iter(|| black_box(profile_golden_run(3000)));
    });
    criterion.final_summary();
}

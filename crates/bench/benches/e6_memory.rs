//! E6 — memory-fault campaigns: model × region sweep over the memory
//! fault subsystem (the "wider and customizable set of fault models"
//! of the paper's future work, applied to RAM, stage-2 translation
//! tables and the communication region).
//!
//! Expected shape: RAM faults into the mostly-untouched non-root slice
//! are dominated by *silent data corruption*; stage-2 descriptor
//! corruption escalates to *translation fault storms*; comm-region
//! corruption either stays silent (a lying `cell list`) or kills the
//! cell outright when live words are hit.
//!
//! Regenerate with `cargo bench -p certify_bench --bench e6_memory`.

use certify_bench::{banner, run_and_print, BASE_SEED};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use certify_core::Outcome;
use criterion::{black_box, Criterion};

const TRIALS: usize = 40;

fn regenerate() {
    banner("E6: memory faults — model x region sweep");
    let regions = [
        MemRegionKind::NonRootRam,
        MemRegionKind::Stage2Tables,
        MemRegionKind::CommRegion,
    ];
    let mut storms = 0usize;
    let mut silent = 0usize;
    for model in MemFaultModel::e6_models() {
        for region in regions {
            let scenario = Scenario::e6_memory(model.clone(), MemTarget::only(region));
            println!("\n--- {model} x {region} ---");
            let result = run_and_print(scenario, TRIALS);
            assert!(
                result.mem_injected_trials() > 0,
                "{model} x {region}: no trial applied a memory fault"
            );
            storms += result
                .trials
                .iter()
                .filter(|t| t.outcome == Outcome::TranslationFaultStorm)
                .count();
            silent += result
                .trials
                .iter()
                .filter(|t| t.outcome == Outcome::SilentDataCorruption)
                .count();
        }
    }
    println!("\nsweep totals: {storms} translation-fault storms, {silent} silent corruptions");
    assert!(storms > 0, "no stage-2 corruption escalated to a storm");
    assert!(silent > 0, "no fault stayed silent");

    banner("E6b: mixed register+memory campaign (E7)");
    let mixed = Campaign::new(Scenario::e7_mixed(), TRIALS, BASE_SEED).run_parallel(8);
    println!("{mixed}");
    assert!(mixed.injected_trials() > 0);
    assert!(mixed.mem_injected_trials() > 0);
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let scenario = Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6());
    criterion.bench_function("e6_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(scenario.run_trial(seed))
        });
    });
    let mixed = Scenario::e7_mixed();
    criterion.bench_function("e7_mixed_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mixed.run_trial(seed))
        });
    });
    criterion.final_summary();
}

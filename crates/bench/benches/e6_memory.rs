//! E6 — memory-fault campaigns: model × region sweep over the memory
//! fault subsystem (the "wider and customizable set of fault models"
//! of the paper's future work, applied to RAM, stage-2 translation
//! tables and the communication region).
//!
//! Expected shape: RAM faults into the mostly-untouched non-root slice
//! are dominated by *silent data corruption*; stage-2 descriptor
//! corruption escalates to *translation fault storms*; comm-region
//! corruption either stays silent (a lying `cell list`) or kills the
//! cell outright when live words are hit.
//!
//! Regenerate with `cargo bench -p certify_bench --bench e6_memory`.
//!
//! This sweep is the bench suite's largest campaign volume, so it
//! runs on the streamed engine: trials fold into `CampaignStats` as
//! they complete and only O(workers) reports are ever resident.

use certify_bench::{banner, run_and_print_streamed, BASE_SEED};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use certify_core::{NullSink, Outcome};
use criterion::{black_box, Criterion};

const TRIALS: usize = 40;

fn regenerate() {
    banner("E6: memory faults — model x region sweep (streamed)");
    let regions = [
        MemRegionKind::NonRootRam,
        MemRegionKind::Stage2Tables,
        MemRegionKind::CommRegion,
    ];
    let mut storms = 0usize;
    let mut silent = 0usize;
    for model in MemFaultModel::e6_models() {
        for region in regions {
            let scenario = Scenario::e6_memory(model.clone(), MemTarget::only(region));
            println!("\n--- {model} x {region} ---");
            let stats = run_and_print_streamed(scenario, TRIALS);
            assert!(
                stats.mem_injected_trials > 0,
                "{model} x {region}: no trial applied a memory fault"
            );
            storms += stats.count(Outcome::TranslationFaultStorm);
            silent += stats.count(Outcome::SilentDataCorruption);
        }
    }
    println!("\nsweep totals: {storms} translation-fault storms, {silent} silent corruptions");
    assert!(storms > 0, "no stage-2 corruption escalated to a storm");
    assert!(silent > 0, "no fault stayed silent");

    banner("E6b: mixed register+memory campaign (E7)");
    let mixed = Campaign::new(Scenario::e7_mixed(), TRIALS, BASE_SEED)
        .run_parallel_streamed(8, &mut NullSink);
    println!("{mixed}");
    assert!(mixed.injected_trials > 0);
    assert!(mixed.mem_injected_trials > 0);
}

fn main() {
    regenerate();
    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    // Per-trial timings use a prepared runner, as campaigns do: the
    // script/spec Arcs are built once, not per trial.
    let runner = Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()).runner();
    criterion.bench_function("e6_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    let mixed = Scenario::e7_mixed().runner();
    criterion.bench_function("e7_mixed_single_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(mixed.run_trial(seed))
        });
    });
    criterion.final_summary();
}

//! E5 — extension experiments: turning the paper's dangerous outcomes
//! into *detected* events.
//!
//! The paper closes by asking for mechanisms that would move Jailhouse
//! towards certifiability. Two classics are evaluated here:
//!
//! * **E5a** — an armed hardware watchdog, fed from the root kernel's
//!   heartbeat path: every *panic park* (silent whole-system death in
//!   the paper) now produces a watchdog expiry, with a measurable
//!   detection latency.
//! * **E5b** — a shared-memory heartbeat from the FreeRTOS cell plus a
//!   root-side safety monitor: every E2 *inconsistent state* (cell
//!   reported running but dead) now raises an alarm.
//!
//! Regenerate with `cargo bench -p certify_bench --bench extensions`.

use certify_analysis::ExperimentReport;
use certify_bench::{banner, run_and_print, run_and_print_streamed, DISTRIBUTION_TRIALS};
use certify_core::campaign::Scenario;
use certify_core::Outcome;
use criterion::{black_box, Criterion};

fn e5a() {
    banner("E5a: Figure-3 campaign with the hardware watchdog armed");
    let result = run_and_print(Scenario::e5a_watchdog(), DISTRIBUTION_TRIALS);
    let report = ExperimentReport::e5a(&result.stats());
    println!("{report}");

    // Detection-latency detail for a few panic trials.
    for trial in result
        .trials
        .iter()
        .filter(|t| t.outcome == Outcome::PanicPark)
        .take(5)
    {
        println!(
            "seed {:>6}: watchdog first expiry at step {:?}",
            trial.seed, trial.report.watchdog_first_expiry
        );
    }
    assert!(report.reproduced, "E5a did not reproduce:\n{report}");
}

fn e5b() {
    banner("E5b: boot-window E2 with heartbeat + safety monitor");
    let result = run_and_print(Scenario::e5b_monitor(), 40);
    let report = ExperimentReport::e5b(&result.stats());
    println!("{report}");
    assert!(report.reproduced, "E5b did not reproduce:\n{report}");

    banner("E5b control: golden run with monitor (no false alarms)");
    let mut golden = Scenario::e5b_monitor();
    golden.name = "e5b-golden-control".into();
    golden.spec = None;
    let control = run_and_print_streamed(golden, 10);
    let false_alarms = control.monitor_alarms_total;
    println!("false alarms across golden trials: {false_alarms}");
    assert_eq!(false_alarms, 0, "monitor raised false alarms");
}

fn main() {
    e5a();
    e5b();

    let mut criterion = Criterion::default().configure_from_args().sample_size(10);
    let runner = Scenario::e5b_monitor().runner();
    criterion.bench_function("e5b_monitor_trial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(runner.run_trial(seed))
        });
    });
    criterion.final_summary();
}

//! Throughput of multi-process sharded campaigns.
//!
//! The sharding tier's reason to exist is wall-clock scale: the same
//! E3 campaign, run through `certify_shard::run_sharded` at 1, 2 and
//! 4 worker processes, must convert processes into trials/sec. This
//! harness measures exactly that (plus the in-process `run_streamed`
//! reference), prints a table, emits a machine-readable
//! `BENCH_shard.json` and gates CI:
//!
//! * the 1-worker throughput must stay within the regression factor
//!   of the committed baseline (protocol overhead creep shows here);
//! * on hosts with ≥ 2 cores, 4 workers must beat 1 worker by more
//!   than the 1.5× acceptance floor. On a single-core host (where no
//!   process count can beat serial execution) the speedup gate is
//!   skipped loudly rather than failing vacuously.
//!
//! Modes (after `--`): *(none)* — 3 rounds × 2000 trials; `--fast` —
//! 2 rounds × 600 trials; `--emit <path>`; `--check <path>`.
//!
//! The headline metric is the **best-round throughput** per worker
//! count, for the same co-tenancy reasons as `trial_latency`.
//!
//! Requires the `shard_worker` binary (`cargo build --release -p
//! certify_shard` first, or let CI's workspace build produce it).

use certify_bench::{json_number, resolve_baseline_path as resolve};
use certify_core::campaign::{Campaign, Scenario};
use certify_core::NullSink;
use certify_shard::{run_sharded, ShardOptions};
use std::time::Instant;

/// The acceptance floor: 4 workers vs 1 worker.
const SPEEDUP_FLOOR: f64 = 1.5;
/// CI failure threshold on 1-worker throughput vs the committed
/// baseline.
const REGRESSION_FACTOR: f64 = 1.25;

struct Config {
    rounds: usize,
    trials: usize,
    emit: Option<String>,
    check: Option<String>,
    fast: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        rounds: 3,
        trials: 2000,
        emit: None,
        check: None,
        fast: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => {
                config.fast = true;
                config.rounds = 2;
                config.trials = 600;
            }
            "--emit" => {
                config.emit = Some(args.next().unwrap_or_else(|| panic!("--emit needs a path")));
            }
            "--check" => {
                config.check = Some(
                    args.next()
                        .unwrap_or_else(|| panic!("--check needs a path")),
                );
            }
            "--bench" => {}
            flag if flag.starts_with('-') => panic!("unknown shard_throughput flag: {flag}"),
            _ => {}
        }
    }
    config
}

/// Best-round throughput (trials/sec) of a sharded run at the given
/// worker count.
fn measure_sharded(campaign: &Campaign, workers: usize, rounds: usize) -> f64 {
    let opts = ShardOptions::new(workers);
    let mut best = 0.0f64;
    for _ in 0..rounds {
        let start = Instant::now();
        let run = run_sharded(campaign, &opts, None)
            .unwrap_or_else(|e| panic!("sharded run failed: {e}"));
        assert_eq!(run.rows, campaign.trials() as u64);
        best = best.max(campaign.trials() as f64 / start.elapsed().as_secs_f64());
    }
    best
}

/// Best-round throughput of the single-process in-process engine (the
/// overhead reference: sharding at 1 worker pays protocol + process
/// cost over this).
fn measure_in_process(campaign: &Campaign, rounds: usize) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..rounds {
        let start = Instant::now();
        campaign.run_streamed(&mut NullSink);
        best = best.max(campaign.trials() as f64 / start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let config = parse_args();
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "==== shard_throughput: E3 trials/sec over worker processes \
         ({} rounds x {} trials, {} core(s){}) ====",
        config.rounds,
        config.trials,
        cores,
        if config.fast { ", fast" } else { "" }
    );

    let campaign = Campaign::new(Scenario::e3_fig3(), config.trials, 0xD5_2022);
    // Warm-up: shared platform blobs, page caches, one worker spawn.
    run_sharded(&campaign, &ShardOptions::new(1), None)
        .unwrap_or_else(|e| panic!("warm-up sharded run failed: {e}"));

    let in_process = measure_in_process(&campaign, config.rounds);
    let w1 = measure_sharded(&campaign, 1, config.rounds);
    let w2 = measure_sharded(&campaign, 2, config.rounds);
    let w4 = measure_sharded(&campaign, 4, config.rounds);
    let speedup_2 = w2 / w1;
    let speedup_4 = w4 / w1;

    println!(
        "{:>22}: {in_process:9.0} trials/sec",
        "in-process (1 thread)"
    );
    for (name, rate, speedup) in [
        ("1 worker process", w1, 1.0),
        ("2 worker processes", w2, speedup_2),
        ("4 worker processes", w4, speedup_4),
    ] {
        println!("{name:>22}: {rate:9.0} trials/sec ({speedup:4.2}x vs 1 worker)");
    }
    println!(
        "sharding overhead at 1 worker: {:.1}% vs in-process",
        100.0 * (1.0 - w1 / in_process)
    );

    let json = format!(
        "{{\n  \"bench\": \"shard_throughput\",\n  \"mode\": \"{}\",\n  \"rounds\": {},\n  \"trials\": {},\n  \"cores\": {},\n  \"in_process_trials_per_sec\": {:.0},\n  \"w1_trials_per_sec\": {:.0},\n  \"w2_trials_per_sec\": {:.0},\n  \"w4_trials_per_sec\": {:.0},\n  \"speedup_2v1\": {:.2},\n  \"speedup_4v1\": {:.2},\n  \"speedup_floor\": {:.1}\n}}\n",
        if config.fast { "fast" } else { "full" },
        config.rounds,
        config.trials,
        cores,
        in_process,
        w1,
        w2,
        w4,
        speedup_2,
        speedup_4,
        SPEEDUP_FLOOR,
    );
    print!("{json}");

    if let Some(path) = &config.emit {
        let path = resolve(path);
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }

    if let Some(path) = &config.check {
        let path = resolve(path);
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {}: {e}", path.display()));
        let committed = json_number(&baseline, "w1_trials_per_sec")
            .unwrap_or_else(|| panic!("no w1_trials_per_sec in {}", path.display()));
        let floor = committed / REGRESSION_FACTOR;
        println!(
            "regression check: measured {w1:.0} trials/sec at 1 worker \
             vs committed {committed:.0} (floor {floor:.0})"
        );
        assert!(
            w1 >= floor,
            "1-worker throughput regressed: {w1:.0} < {floor:.0} trials/sec \
             (committed {committed:.0} / {REGRESSION_FACTOR})"
        );
        // The hard floor only binds where 4 workers actually have 4
        // cores; on 2–3 cores the ideal speedup is the core count and
        // scheduler noise can graze 1.5x, so the gate reports instead
        // of failing (and a single core cannot beat serial at all).
        if cores >= 4 {
            println!(
                "speedup check: {speedup_4:.2}x at 4 workers (floor {SPEEDUP_FLOOR}x, \
                 {cores} cores)"
            );
            assert!(
                speedup_4 > SPEEDUP_FLOOR,
                "4-worker speedup {speedup_4:.2}x did not clear the {SPEEDUP_FLOOR}x floor"
            );
        } else if cores >= 2 {
            println!(
                "speedup check ADVISORY on {cores} cores: measured {speedup_4:.2}x \
                 at 4 workers (floor {SPEEDUP_FLOOR}x enforced at >= 4 cores)"
            );
        } else {
            println!(
                "speedup check SKIPPED: single-core host cannot demonstrate \
                 multi-process speedup (measured {speedup_4:.2}x)"
            );
        }
        println!("checks passed");
    }
}

//! Wall-clock per-trial latency of the campaign hot path.
//!
//! The ROADMAP's perf item tracks the cost of one fault-injection
//! trial end to end — `System` construction, the 4500-step E3 run and
//! classification — against a <0.2 ms target (the seed measured
//! ~0.8 ms). This harness measures it directly with `std::time`
//! (criterion's sampling adds nothing for a millisecond-scale,
//! deterministic workload), prints a per-scenario table and emits a
//! machine-readable `BENCH_hotpath.json` so CI can detect regressions.
//!
//! Modes (after `--`):
//!
//! * *(none)* — full run: 5 rounds × 400 trials per scenario;
//! * `--fast` — smoke run: 3 rounds × 120 trials;
//! * `--emit <path>` — also write the JSON report to `<path>`;
//! * `--check <path>` — compare the E3 mean against the committed
//!   baseline JSON and exit non-zero if it regressed by more than
//!   25 % (the CI gate);
//! * `--overhead-check` — interleave plain, telemetry-observed,
//!   tracing-off (`run_trial_traced(seed, None)`) and tracing-on E3
//!   rounds; fail if observation or the disarmed tracing path costs
//!   more than 5 % over plain (the observability overhead gates), and
//!   report the armed flight recorder's cost as an advisory JSON
//!   number (`e3_traced_on_mean_us`).
//!
//! Per-trial latencies are also folded into a `certify_obs::Histogram`
//! (5 µs buckets), so the report carries E3 p50/p90/p99 alongside the
//! round means; the JSON keys are appended after the original schema,
//! which stays backward-compatible for the committed baseline.
//!
//! The headline metric is the **best-round mean**: the mean per-trial
//! wall time of the fastest round. Rounds amortise interference from
//! co-tenants on shared CI hardware; the best round estimates the
//! unloaded cost, which is what code changes move.
//!
//! Regenerate with `cargo bench -p certify_bench --bench
//! trial_latency` (add `-- --fast` for the smoke configuration).

use certify_bench::{json_number, resolve_baseline_path as resolve};
use certify_core::campaign::Scenario;
use certify_core::{MemFaultModel, MemTarget, TraceConfig};
use certify_obs::{Histogram, MonotonicClock};
use std::time::Instant;

/// The per-trial budget the ROADMAP targets, in microseconds.
const TARGET_US: f64 = 200.0;
/// The seed-state cost this work started from, in microseconds.
const SEED_BASELINE_US: f64 = 805.0;
/// CI failure threshold: measured mean may exceed the committed
/// baseline by at most this factor.
const REGRESSION_FACTOR: f64 = 1.25;
/// Observability overhead gate: an observed trial may cost at most
/// this factor of an unobserved one.
const OVERHEAD_FACTOR: f64 = 1.05;

struct Config {
    rounds: usize,
    trials: usize,
    emit: Option<String>,
    check: Option<String>,
    overhead_check: bool,
    fast: bool,
}

fn parse_args() -> Config {
    let mut config = Config {
        rounds: 5,
        trials: 400,
        emit: None,
        check: None,
        overhead_check: false,
        fast: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => {
                config.fast = true;
                config.rounds = 3;
                config.trials = 120;
            }
            "--emit" => {
                config.emit = Some(args.next().unwrap_or_else(|| panic!("--emit needs a path")));
            }
            "--check" => {
                config.check = Some(
                    args.next()
                        .unwrap_or_else(|| panic!("--check needs a path")),
                );
            }
            "--overhead-check" => config.overhead_check = true,
            // Cargo's own bench plumbing.
            "--bench" => {}
            // Any other flag is a typo — failing loudly keeps the CI
            // gate from silently degrading into a no-op.
            flag if flag.starts_with('-') => panic!("unknown trial_latency flag: {flag}"),
            // Bare positionals are cargo bench-name filters; ignore.
            _ => {}
        }
    }
    config
}

/// Best-round (minimum) and worst-round (maximum) mean per-trial wall
/// time, in microseconds.
fn measure(scenario: Scenario, rounds: usize, trials: usize) -> (f64, f64) {
    let runner = scenario.runner();
    // Warm-up: populate caches, the jump tables and the shared
    // platform blobs.
    for seed in 0..(trials / 4).max(8) as u64 {
        std::hint::black_box(runner.run_trial(seed));
    }
    let mut best = f64::INFINITY;
    let mut worst = 0.0f64;
    for round in 0..rounds {
        let start = Instant::now();
        for i in 0..trials as u64 {
            let seed = 0xD5_2022 + round as u64 * trials as u64 + i;
            std::hint::black_box(runner.run_trial(seed));
        }
        let mean_us = start.elapsed().as_secs_f64() * 1e6 / trials as f64;
        best = best.min(mean_us);
        worst = worst.max(mean_us);
    }
    (best, worst)
}

/// Per-trial latency distribution over one round: each trial timed
/// individually into a 5 µs-bucket histogram (up to 2 ms, then
/// overflow), so the report can quote p50/p90/p99 and not just means.
fn measure_distribution(scenario: Scenario, trials: usize) -> Histogram {
    let runner = scenario.runner();
    let bounds: Vec<u64> = (1..=400).map(|i| i * 5_000).collect();
    let mut histogram = Histogram::with_bounds(bounds);
    for i in 0..trials as u64 {
        let seed = 0xD5_2022 + i;
        let start = Instant::now();
        std::hint::black_box(runner.run_trial(seed));
        histogram.record(start.elapsed().as_nanos() as u64);
    }
    histogram
}

/// Best-round means of plain vs telemetry-observed E3 trials, with
/// the two variants interleaved round by round so slow drift on
/// shared hardware hits both equally.
fn measure_overhead(rounds: usize, trials: usize) -> (f64, f64) {
    let runner = Scenario::e3_fig3().runner();
    let clock = MonotonicClock::new();
    for seed in 0..(trials / 4).max(8) as u64 {
        std::hint::black_box(runner.run_trial(seed));
        std::hint::black_box(runner.run_trial_observed(seed, &clock));
    }
    let mut plain_best = f64::INFINITY;
    let mut observed_best = f64::INFINITY;
    for round in 0..rounds {
        let base = 0xD5_2022 + round as u64 * trials as u64;
        let start = Instant::now();
        for i in 0..trials as u64 {
            std::hint::black_box(runner.run_trial(base + i));
        }
        plain_best = plain_best.min(start.elapsed().as_secs_f64() * 1e6 / trials as f64);
        let start = Instant::now();
        for i in 0..trials as u64 {
            std::hint::black_box(runner.run_trial_observed(base + i, &clock));
        }
        observed_best = observed_best.min(start.elapsed().as_secs_f64() * 1e6 / trials as f64);
    }
    (plain_best, observed_best)
}

/// Best-round means of plain vs tracing-off
/// (`run_trial_traced(seed, None)`) vs tracing-on E3 trials, the
/// three variants interleaved round by round. Tracing-off must be the
/// plain path (an `Option` check per component, nothing else);
/// tracing-on pays for the ring and is reported, not gated.
fn measure_tracing_overhead(rounds: usize, trials: usize) -> (f64, f64, f64) {
    let runner = Scenario::e3_fig3().runner();
    let trace = TraceConfig::new();
    for seed in 0..(trials / 4).max(8) as u64 {
        std::hint::black_box(runner.run_trial(seed));
        std::hint::black_box(runner.run_trial_traced(seed, None));
        std::hint::black_box(runner.run_trial_traced(seed, Some(&trace)));
    }
    let mut plain_best = f64::INFINITY;
    let mut off_best = f64::INFINITY;
    let mut on_best = f64::INFINITY;
    for round in 0..rounds {
        let base = 0xD5_2022 + round as u64 * trials as u64;
        let start = Instant::now();
        for i in 0..trials as u64 {
            std::hint::black_box(runner.run_trial(base + i));
        }
        plain_best = plain_best.min(start.elapsed().as_secs_f64() * 1e6 / trials as f64);
        let start = Instant::now();
        for i in 0..trials as u64 {
            std::hint::black_box(runner.run_trial_traced(base + i, None));
        }
        off_best = off_best.min(start.elapsed().as_secs_f64() * 1e6 / trials as f64);
        let start = Instant::now();
        for i in 0..trials as u64 {
            std::hint::black_box(runner.run_trial_traced(base + i, Some(&trace)));
        }
        on_best = on_best.min(start.elapsed().as_secs_f64() * 1e6 / trials as f64);
    }
    (plain_best, off_best, on_best)
}

fn main() {
    let config = parse_args();
    println!(
        "==== trial_latency: per-trial wall clock ({} rounds x {} trials{}) ====",
        config.rounds,
        config.trials,
        if config.fast { ", fast" } else { "" }
    );

    let (e3_best, e3_worst) = measure(Scenario::e3_fig3(), config.rounds, config.trials);
    let (golden_best, golden_worst) = measure(Scenario::golden(4500), config.rounds, config.trials);
    let (e6_best, e6_worst) = measure(
        Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
        config.rounds,
        config.trials / 2,
    );

    let distribution = measure_distribution(Scenario::e3_fig3(), config.trials);
    let (e3_p50, e3_p90, e3_p99) = (
        distribution.p50() as f64 / 1e3,
        distribution.p90() as f64 / 1e3,
        distribution.p99() as f64 / 1e3,
    );

    for (name, best, worst) in [
        ("e3_fig3 (4500 steps)", e3_best, e3_worst),
        ("golden (4500 steps)", golden_best, golden_worst),
        ("e6_memory (4500 steps)", e6_best, e6_worst),
    ] {
        println!("{name:>24}: best-round mean {best:8.1} us/trial, worst {worst:8.1}");
    }
    println!(
        "{:>24}: p50 {e3_p50:8.1} us, p90 {e3_p90:8.1} us, p99 {e3_p99:8.1} us",
        "e3_fig3 distribution"
    );
    println!(
        "e3 vs seed baseline ({SEED_BASELINE_US} us): {:.1}x faster; target {TARGET_US} us: {}",
        SEED_BASELINE_US / e3_best,
        if e3_best < TARGET_US { "MET" } else { "MISSED" }
    );

    // With --overhead-check, the tracing rounds run before the JSON
    // is assembled so their keys can ride in the report.
    let tracing = config
        .overhead_check
        .then(|| measure_tracing_overhead(config.rounds, config.trials));
    let tracing_keys = tracing
        .map(|(_, off, on)| {
            format!(
                ",\n  \"e3_traced_off_mean_us\": {off:.1},\n  \"e3_traced_on_mean_us\": {on:.1}"
            )
        })
        .unwrap_or_default();

    // The percentile and tracing keys are appended after the original
    // schema so a previously committed baseline (without them) still
    // `--check`s.
    let json = format!(
        "{{\n  \"bench\": \"trial_latency\",\n  \"mode\": \"{}\",\n  \"rounds\": {},\n  \"trials_per_round\": {},\n  \"e3_mean_us\": {:.1},\n  \"e3_worst_round_us\": {:.1},\n  \"golden_mean_us\": {:.1},\n  \"golden_worst_round_us\": {:.1},\n  \"e6_mean_us\": {:.1},\n  \"e6_worst_round_us\": {:.1},\n  \"target_us\": {:.1},\n  \"seed_baseline_us\": {:.1},\n  \"e3_p50_us\": {:.1},\n  \"e3_p90_us\": {:.1},\n  \"e3_p99_us\": {:.1}{tracing_keys}\n}}\n",
        if config.fast { "fast" } else { "full" },
        config.rounds,
        config.trials,
        e3_best,
        e3_worst,
        golden_best,
        golden_worst,
        e6_best,
        e6_worst,
        TARGET_US,
        SEED_BASELINE_US,
        e3_p50,
        e3_p90,
        e3_p99,
    );
    print!("{json}");

    if let Some(path) = &config.emit {
        let path = resolve(path);
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
        println!("wrote {}", path.display());
    }

    if let Some(path) = &config.check {
        let path = resolve(path);
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("reading baseline {}: {e}", path.display()));
        let committed = json_number(&baseline, "e3_mean_us")
            .unwrap_or_else(|| panic!("no e3_mean_us in {}", path.display()));
        let limit = committed * REGRESSION_FACTOR;
        println!(
            "regression check: measured {e3_best:.1} us vs committed {committed:.1} us \
             (limit {limit:.1} us)"
        );
        assert!(
            e3_best <= limit,
            "per-trial mean regressed: {e3_best:.1} us > {limit:.1} us \
             ({REGRESSION_FACTOR}x the committed {committed:.1} us baseline)"
        );
        println!("regression check passed");
    }

    if config.overhead_check {
        let (plain, observed) = measure_overhead(config.rounds, config.trials);
        let limit = plain * OVERHEAD_FACTOR;
        println!(
            "overhead check: plain {plain:.1} us vs observed {observed:.1} us \
             (limit {limit:.1} us)"
        );
        assert!(
            observed <= limit,
            "telemetry overhead too high: observed {observed:.1} us > {limit:.1} us \
             ({OVERHEAD_FACTOR}x the plain {plain:.1} us mean)"
        );
        println!("overhead check passed");

        let (t_plain, t_off, t_on) = tracing.expect("tracing rounds ran above");
        let limit = t_plain * OVERHEAD_FACTOR;
        println!(
            "tracing-off check: plain {t_plain:.1} us vs traced-off {t_off:.1} us \
             (limit {limit:.1} us)"
        );
        assert!(
            t_off <= limit,
            "tracing-off overhead too high: {t_off:.1} us > {limit:.1} us \
             ({OVERHEAD_FACTOR}x the plain {t_plain:.1} us mean) — the disarmed \
             recorder must be the plain path"
        );
        println!("tracing-off check passed");
        println!(
            "tracing-on (advisory): {t_on:.1} us/trial ({:.2}x plain)",
            t_on / t_plain
        );
    }
}

//! Shared helpers for the benchmark/figure harnesses.
//!
//! Each bench target regenerates one experiment of the paper: it runs
//! the campaign, prints the same rows/series the paper reports (with
//! the paper's numbers alongside), and then takes Criterion timings of
//! the per-trial cost so the harness doubles as a performance
//! regression net.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use certify_core::campaign::{Campaign, CampaignResult, Scenario};

/// Default trial count for distribution-style experiments.
pub const DISTRIBUTION_TRIALS: usize = 150;
/// Default trial count for deterministic experiments.
pub const DETERMINISTIC_TRIALS: usize = 40;
/// Base seed for all benches (any value works; fixed for
/// reproducibility of the printed tables).
pub const BASE_SEED: u64 = 0xD5_2022;

/// Runs a campaign on all available cores and prints its distribution.
pub fn run_and_print(scenario: Scenario, trials: usize) -> CampaignResult {
    let campaign = Campaign::new(scenario, trials, BASE_SEED);
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let result = campaign.run_parallel(workers);
    println!("{result}");
    result
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

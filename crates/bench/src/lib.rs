//! Shared helpers for the benchmark/figure harnesses.
//!
//! Each bench target regenerates one experiment of the paper: it runs
//! the campaign, prints the same rows/series the paper reports (with
//! the paper's numbers alongside), and then takes Criterion timings of
//! the per-trial cost so the harness doubles as a performance
//! regression net.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use certify_core::campaign::{Campaign, CampaignResult, Scenario};
use certify_core::{CampaignStats, NullSink};

/// Default trial count for distribution-style experiments.
pub const DISTRIBUTION_TRIALS: usize = 150;
/// Default trial count for deterministic experiments.
pub const DETERMINISTIC_TRIALS: usize = 40;
/// Base seed for all benches (any value works; fixed for
/// reproducibility of the printed tables).
pub const BASE_SEED: u64 = 0xD5_2022;

/// The worker count every bench harness uses: all available cores.
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Runs a campaign on all available cores, buffering every trial, and
/// prints its distribution. Prefer [`run_and_print_streamed`] unless
/// the harness needs per-trial evidence afterwards.
pub fn run_and_print(scenario: Scenario, trials: usize) -> CampaignResult {
    let campaign = Campaign::new(scenario, trials, BASE_SEED);
    let result = campaign.run_parallel(default_workers());
    println!("{result}");
    result
}

/// Runs a campaign on all available cores through the streamed engine
/// — trials are folded into [`CampaignStats`] as they complete, so
/// only O(workers) reports are ever resident — and prints the
/// distribution (identical bytes to [`run_and_print`] for the same
/// seeds).
pub fn run_and_print_streamed(scenario: Scenario, trials: usize) -> CampaignStats {
    let campaign = Campaign::new(scenario, trials, BASE_SEED);
    let stats = campaign.run_parallel_streamed(default_workers(), &mut NullSink);
    println!("{stats}");
    stats
}

/// Prints a section banner.
pub fn banner(title: &str) {
    println!("\n==== {title} ====");
}

/// Pulls `"key": value` out of a flat JSON report (the committed
/// `BENCH_*.json` baselines are emitted by the bench harnesses
/// themselves, so a scan is all the parsing the gates need).
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest.find([',', '}'])?;
    rest[..end].trim().parse().ok()
}

/// Resolves a bench report path: cargo runs bench binaries from the
/// package directory, but the committed `BENCH_*.json` baselines live
/// at the workspace root — so relative paths are anchored there.
pub fn resolve_baseline_path(path: &str) -> std::path::PathBuf {
    let path = std::path::Path::new(path);
    if path.is_absolute() {
        path.to_path_buf()
    } else {
        std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(path)
    }
}

//! GPIO block with per-pin toggle counters.
//!
//! The FreeRTOS workload of the paper includes "a task to blink an
//! onboard led". LED activity is therefore a liveness signal for the
//! non-root cell: a cell whose LED stops toggling but which the
//! hypervisor still reports *running* is in the inconsistent state of
//! experiment E2. The model counts toggles per pin so the analysis
//! crate can measure blink progress without sampling.

use crate::memmap::GPIO_DATA_OFFSET;
use serde::{Deserialize, Serialize};

/// Number of modelled pins (one data register's worth).
pub const NUM_PINS: u8 = 32;

/// The GPIO device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Gpio {
    levels: u32,
    toggles: [u64; NUM_PINS as usize],
    last_toggle_step: [Option<u64>; NUM_PINS as usize],
}

impl Default for Gpio {
    fn default() -> Self {
        Gpio {
            levels: 0,
            toggles: [0; NUM_PINS as usize],
            last_toggle_step: [None; NUM_PINS as usize],
        }
    }
}

impl Gpio {
    /// Creates a GPIO block with all pins low.
    pub fn new() -> Gpio {
        Gpio::default()
    }

    /// Handles a 32-bit register write at `offset` within the GPIO
    /// block: writing the data register sets all pin levels at once.
    pub fn write_reg(&mut self, offset: u32, value: u32, step: u64) {
        if offset == GPIO_DATA_OFFSET {
            let changed = self.levels ^ value;
            for pin in 0..NUM_PINS {
                if changed & (1 << pin) != 0 {
                    self.toggles[pin as usize] += 1;
                    self.last_toggle_step[pin as usize] = Some(step);
                }
            }
            self.levels = value;
        }
    }

    /// Handles a 32-bit register read.
    pub fn read_reg(&self, offset: u32) -> u32 {
        if offset == GPIO_DATA_OFFSET {
            self.levels
        } else {
            0
        }
    }

    /// Current level of `pin`.
    pub fn level(&self, pin: u8) -> bool {
        pin < NUM_PINS && self.levels & (1 << pin) != 0
    }

    /// Sets a single pin, preserving the others (what a read-modify-
    /// write driver does).
    pub fn set_pin(&mut self, pin: u8, high: bool, step: u64) {
        if pin >= NUM_PINS {
            return;
        }
        let mut value = self.levels;
        if high {
            value |= 1 << pin;
        } else {
            value &= !(1 << pin);
        }
        self.write_reg(GPIO_DATA_OFFSET, value, step);
    }

    /// How many times `pin` has changed level.
    pub fn toggle_count(&self, pin: u8) -> u64 {
        if pin < NUM_PINS {
            self.toggles[pin as usize]
        } else {
            0
        }
    }

    /// The step of the most recent level change on `pin`.
    pub fn last_toggle(&self, pin: u8) -> Option<u64> {
        if pin < NUM_PINS {
            self.last_toggle_step[pin as usize]
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmap::LED_PIN;

    #[test]
    fn pins_start_low() {
        let gpio = Gpio::new();
        for pin in 0..NUM_PINS {
            assert!(!gpio.level(pin));
            assert_eq!(gpio.toggle_count(pin), 0);
        }
    }

    #[test]
    fn set_pin_toggles_and_counts() {
        let mut gpio = Gpio::new();
        gpio.set_pin(LED_PIN, true, 10);
        gpio.set_pin(LED_PIN, false, 20);
        gpio.set_pin(LED_PIN, true, 30);
        assert!(gpio.level(LED_PIN));
        assert_eq!(gpio.toggle_count(LED_PIN), 3);
        assert_eq!(gpio.last_toggle(LED_PIN), Some(30));
    }

    #[test]
    fn rewriting_same_level_does_not_count() {
        let mut gpio = Gpio::new();
        gpio.set_pin(3, true, 1);
        gpio.set_pin(3, true, 2);
        assert_eq!(gpio.toggle_count(3), 1);
        assert_eq!(gpio.last_toggle(3), Some(1));
    }

    #[test]
    fn data_register_write_affects_multiple_pins() {
        let mut gpio = Gpio::new();
        gpio.write_reg(GPIO_DATA_OFFSET, 0b101, 5);
        assert!(gpio.level(0));
        assert!(!gpio.level(1));
        assert!(gpio.level(2));
        assert_eq!(gpio.toggle_count(0), 1);
        assert_eq!(gpio.toggle_count(2), 1);
        assert_eq!(gpio.read_reg(GPIO_DATA_OFFSET), 0b101);
    }

    #[test]
    fn out_of_range_pin_is_ignored() {
        let mut gpio = Gpio::new();
        gpio.set_pin(40, true, 1);
        assert!(!gpio.level(40));
        assert_eq!(gpio.toggle_count(40), 0);
        assert_eq!(gpio.last_toggle(40), None);
    }

    #[test]
    fn non_data_registers_read_zero() {
        let gpio = Gpio::new();
        assert_eq!(gpio.read_reg(0x0), 0);
    }
}

//! Banana-Pi-like board model for the `certify-uncertified` simulator.
//!
//! The paper's testbed is a Banana Pi: a dual-core ARM Cortex-A7 SoC
//! (Allwinner A20) with 1 GB of RAM, a UART wired to a serial console
//! (the only observation channel of the experiments besides the onboard
//! LED), and a GPIO-driven green LED that one FreeRTOS task blinks.
//!
//! This crate provides:
//!
//! * the physical [`memmap`] (RAM window, UART and GPIO register
//!   blocks, hypervisor-reserved carve-out),
//! * byte-addressable [`ram`] backing storage,
//! * a capturing [`uart`] (everything any guest prints is recorded and
//!   later mined by `certify-analysis`),
//! * a [`gpio`] block with per-pin toggle counters (LED liveness is an
//!   availability signal in Figure 3),
//! * and the [`machine`] tying two [`certify_arch::Cpu`]s, the GIC, the
//!   per-core timers and the devices together behind a bus-like
//!   [`machine::Machine::read32`]/[`machine::Machine::write32`]
//!   interface with bus-fault reporting.
//!
//! # Example
//!
//! ```
//! use certify_board::{Machine, memmap};
//!
//! let mut machine = Machine::new_banana_pi();
//! machine.write32(memmap::RAM_BASE, 0xdead_beef)?;
//! assert_eq!(machine.read32(memmap::RAM_BASE)?, 0xdead_beef);
//! # Ok::<(), certify_board::BusFault>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gpio;
pub mod machine;
pub mod memmap;
pub mod ram;
pub mod uart;
pub mod watchdog;

pub use gpio::Gpio;
pub use machine::{BusFault, Machine, MmioDevice};
pub use ram::{OutOfRange, Ram, RamFault};
pub use uart::Uart;
pub use watchdog::Watchdog;

//! The assembled board: CPUs, interrupt controller, timers, RAM and
//! devices behind one bus interface.
//!
//! [`Machine`] is deliberately passive — it performs accesses and
//! advances time but enforces no isolation. Partitioning (which cell
//! may touch which region) is the hypervisor's job; the machine's job
//! is to be a faithful substrate that also *records* everything the
//! experiments observe (serial bytes, LED toggles, step counts).

use crate::gpio::Gpio;
use crate::memmap;
use crate::ram::Ram;
use crate::uart::Uart;
use crate::watchdog::Watchdog;
use certify_arch::{Cpu, CpuId, GenericTimer, Gic, IrqId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default period (in simulator steps) of the per-core tick timers.
pub const DEFAULT_TIMER_PERIOD: u64 = 64;

/// A memory-mapped device, as decoded from a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MmioDevice {
    /// The serial port.
    Uart,
    /// The GPIO block.
    Gpio,
    /// The watchdog timer.
    Watchdog,
}

/// A failed bus access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusFault {
    /// No RAM or device decodes at this address.
    Unmapped {
        /// The faulting physical address.
        addr: u32,
    },
}

impl fmt::Display for BusFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusFault::Unmapped { addr } => {
                write!(f, "bus fault: no target decodes at 0x{addr:08x}")
            }
        }
    }
}

impl std::error::Error for BusFault {}

/// The dual-core board.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    cpus: Vec<Cpu>,
    /// Interrupt controller.
    pub gic: Gic,
    timers: Vec<GenericTimer>,
    ram: Ram,
    /// Serial port (public: the analysis crate reads the capture).
    pub uart: Uart,
    /// GPIO block (public: the analysis crate reads toggle counters).
    pub gpio: Gpio,
    /// Watchdog timer (public: the analysis crate reads expiries).
    pub wdt: Watchdog,
    step: u64,
    /// Step at which the per-core timers were last synchronised.
    timer_sync: u64,
    /// Absolute step of the earliest pending timer expiry (`u64::MAX`
    /// when no timer is enabled) — [`Machine::advance`] only walks the
    /// timer array at deadlines instead of every step.
    timer_next: u64,
}

impl Machine {
    /// Builds the paper's testbed: two Cortex-A7-style cores, 1 GiB of
    /// DRAM, one UART, one GPIO block, per-core tick timers.
    pub fn new_banana_pi() -> Machine {
        Machine::with_cpus(2)
    }

    /// Builds a machine with `num_cpus` cores (the memory map is
    /// unchanged). Useful for scaling experiments beyond the paper.
    ///
    /// # Panics
    ///
    /// Panics if `num_cpus` is zero.
    pub fn with_cpus(num_cpus: usize) -> Machine {
        assert!(num_cpus > 0, "a machine needs at least one CPU");
        let mut machine = Machine {
            cpus: (0..num_cpus).map(|i| Cpu::new(CpuId(i as u32))).collect(),
            gic: Gic::new(num_cpus),
            timers: (0..num_cpus)
                .map(|_| GenericTimer::new(DEFAULT_TIMER_PERIOD))
                .collect(),
            ram: Ram::new(memmap::RAM_BASE, memmap::RAM_SIZE),
            uart: Uart::new(),
            gpio: Gpio::new(),
            wdt: Watchdog::default(),
            step: 0,
            timer_sync: 0,
            timer_next: 0,
        };
        machine.gic.enable(IrqId(memmap::TIMER_IRQ));
        machine
    }

    /// Number of cores.
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Immutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cpu(&self, id: CpuId) -> &Cpu {
        &self.cpus[id.0 as usize]
    }

    /// Mutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn cpu_mut(&mut self, id: CpuId) -> &mut Cpu {
        &mut self.cpus[id.0 as usize]
    }

    /// All cores.
    pub fn cpus(&self) -> &[Cpu] {
        &self.cpus
    }

    /// The per-core tick timer.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn timer_mut(&mut self, id: CpuId) -> &mut GenericTimer {
        // Bring the timers up to the current step so the caller sees
        // live counters, and force a deadline recomputation on the
        // next advance (the caller may reconfigure the timer).
        self.sync_timers();
        self.timer_next = self.step;
        &mut self.timers[id.0 as usize]
    }

    /// Current simulator step.
    pub fn now(&self) -> u64 {
        self.step
    }

    /// Advances global time by one step and steps every core's timer,
    /// forwarding expirations to the GIC as private interrupts. Timer
    /// counters advance lazily: the array is only walked when the
    /// earliest deadline is due.
    ///
    /// Returns true when the watchdog expired on this step, so the
    /// caller can observe the bite at the step it happens instead of
    /// mining `wdt.expiries()` after the fact.
    pub fn advance(&mut self) -> bool {
        self.step += 1;
        if self.step >= self.timer_next {
            self.sync_timers();
        }
        self.wdt.step(self.step)
    }

    /// Applies the steps elapsed since the last synchronisation to
    /// every timer (firing those whose deadline is now) and recomputes
    /// the earliest deadline.
    fn sync_timers(&mut self) {
        let delta = self.step - self.timer_sync;
        self.timer_sync = self.step;
        let mut next = u64::MAX;
        for i in 0..self.timers.len() {
            if let Some(irq) = self.timers[i].advance_by(delta) {
                self.gic.raise_private(CpuId(i as u32), irq);
            }
            if let Some(remaining) = self.timers[i].steps_until_fire() {
                next = next.min(self.step + remaining);
            }
        }
        self.timer_next = next;
    }

    /// Decodes an address to its device, if it is device MMIO.
    pub fn decode_device(addr: u32) -> Option<(MmioDevice, u32)> {
        if memmap::in_region(addr, memmap::UART_BASE, memmap::UART_SIZE) {
            Some((MmioDevice::Uart, addr - memmap::UART_BASE))
        } else if memmap::in_region(addr, memmap::WDT_BASE, memmap::WDT_SIZE) {
            Some((MmioDevice::Watchdog, addr - memmap::WDT_BASE))
        } else if memmap::in_region(addr, memmap::GPIO_BASE, memmap::GPIO_SIZE) {
            Some((MmioDevice::Gpio, addr - memmap::GPIO_BASE))
        } else {
            None
        }
    }

    /// Whether `addr` decodes to RAM.
    pub fn is_ram(addr: u32) -> bool {
        memmap::in_region(addr, memmap::RAM_BASE, memmap::RAM_SIZE)
    }

    /// Reads a 32-bit word from RAM or a device.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault::Unmapped`] when nothing decodes at `addr`.
    pub fn read32(&self, addr: u32) -> Result<u32, BusFault> {
        if let Some((device, offset)) = Self::decode_device(addr) {
            return Ok(match device {
                MmioDevice::Uart => self.uart.read_reg(offset),
                MmioDevice::Gpio => self.gpio.read_reg(offset),
                MmioDevice::Watchdog => self.wdt.read_reg(offset),
            });
        }
        self.ram
            .read32(addr)
            .map_err(|e| BusFault::Unmapped { addr: e.addr })
    }

    /// Writes a 32-bit word to RAM or a device.
    ///
    /// # Errors
    ///
    /// Returns [`BusFault::Unmapped`] when nothing decodes at `addr`.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), BusFault> {
        if let Some((device, offset)) = Self::decode_device(addr) {
            match device {
                MmioDevice::Uart => self.uart.write_reg(offset, value, self.step),
                MmioDevice::Gpio => self.gpio.write_reg(offset, value, self.step),
                MmioDevice::Watchdog => self.wdt.write_reg(offset, value),
            }
            return Ok(());
        }
        self.ram
            .write32(addr, value)
            .map_err(|e| BusFault::Unmapped { addr: e.addr })
    }

    /// Direct RAM access (no device decode) — used by the hypervisor
    /// for its own bookkeeping structures.
    pub fn ram(&self) -> &Ram {
        &self.ram
    }

    /// Mutable direct RAM access.
    pub fn ram_mut(&mut self) -> &mut Ram {
        &mut self.ram
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn banana_pi_has_two_cores() {
        let machine = Machine::new_banana_pi();
        assert_eq!(machine.num_cpus(), 2);
        assert_eq!(machine.cpu(CpuId(1)).id, CpuId(1));
    }

    #[test]
    #[should_panic(expected = "at least one CPU")]
    fn zero_cpu_machine_rejected() {
        let _ = Machine::with_cpus(0);
    }

    #[test]
    fn ram_round_trip_through_bus() {
        let mut machine = Machine::new_banana_pi();
        machine
            .write32(memmap::RAM_BASE + 0x40, 0x1234_5678)
            .unwrap();
        assert_eq!(
            machine.read32(memmap::RAM_BASE + 0x40).unwrap(),
            0x1234_5678
        );
    }

    #[test]
    fn uart_write_through_bus_is_captured_with_step() {
        let mut machine = Machine::new_banana_pi();
        machine.advance();
        machine.advance();
        machine
            .write32(memmap::UART_BASE + memmap::UART_THR_OFFSET, u32::from(b'A'))
            .unwrap();
        assert_eq!(machine.uart.byte_count(), 1);
        assert_eq!(machine.uart.captured().next().unwrap().step, 2);
    }

    #[test]
    fn gpio_write_through_bus_toggles() {
        let mut machine = Machine::new_banana_pi();
        machine
            .write32(
                memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET,
                1 << memmap::LED_PIN,
            )
            .unwrap();
        assert_eq!(machine.gpio.toggle_count(memmap::LED_PIN), 1);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut machine = Machine::new_banana_pi();
        assert_eq!(
            machine.read32(0x0900_0000),
            Err(BusFault::Unmapped { addr: 0x0900_0000 })
        );
        assert!(machine.write32(0x0900_0000, 1).is_err());
    }

    #[test]
    fn decode_device_finds_uart_and_gpio() {
        assert_eq!(
            Machine::decode_device(memmap::UART_BASE),
            Some((MmioDevice::Uart, 0))
        );
        assert_eq!(
            Machine::decode_device(memmap::GPIO_BASE + 0x10),
            Some((MmioDevice::Gpio, 0x10))
        );
        assert_eq!(Machine::decode_device(memmap::RAM_BASE), None);
    }

    #[test]
    fn advance_fires_timers_into_gic() {
        let mut machine = Machine::new_banana_pi();
        machine.timer_mut(CpuId(0)).start();
        for _ in 0..DEFAULT_TIMER_PERIOD {
            machine.advance();
        }
        assert!(machine.gic.has_pending(CpuId(0)));
        assert!(!machine.gic.has_pending(CpuId(1)));
    }

    #[test]
    fn timers_are_per_core() {
        let mut machine = Machine::new_banana_pi();
        machine.timer_mut(CpuId(1)).start();
        for _ in 0..DEFAULT_TIMER_PERIOD {
            machine.advance();
        }
        assert!(machine.gic.has_pending(CpuId(1)));
        assert!(!machine.gic.has_pending(CpuId(0)));
    }
}

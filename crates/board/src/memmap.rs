//! Physical memory map of the modelled board.
//!
//! Addresses follow the Allwinner A20 (the Banana Pi SoC): device
//! registers live below 0x0200_0000 and DRAM starts at 0x4000_0000.
//! The layout of the DRAM carve-outs mirrors the Jailhouse deployment
//! of the paper: the root cell owns most of RAM, a slice at the top is
//! reserved for the hypervisor itself, a second slice holds the
//! FreeRTOS (non-root) cell, and a small page between them is the
//! inter-cell shared-memory (ivshmem) region.

/// Start of DRAM.
pub const RAM_BASE: u32 = 0x4000_0000;
/// 1 GiB of DRAM, as on the paper's Banana Pi.
pub const RAM_SIZE: u32 = 0x4000_0000;

/// UART0 register block base (Allwinner A20 `UART0`).
pub const UART_BASE: u32 = 0x01c2_8000;
/// Size of the UART register block.
pub const UART_SIZE: u32 = 0x400;
/// Transmit holding register offset within the UART block.
pub const UART_THR_OFFSET: u32 = 0x0;
/// Line status register offset within the UART block.
pub const UART_LSR_OFFSET: u32 = 0x14;
/// UART interrupt line (SPI).
pub const UART_IRQ: u16 = 33;

/// Watchdog register block base (Allwinner A20 `WDT`).
pub const WDT_BASE: u32 = 0x01c2_0c90;
/// Size of the watchdog register block.
pub const WDT_SIZE: u32 = 0x10;
/// Watchdog control register offset: writing [`WDT_RESTART_KEY`]
/// restarts (feeds) the countdown.
pub const WDT_CTRL_OFFSET: u32 = 0x0;
/// Watchdog mode register offset: bit 0 enables the countdown.
pub const WDT_MODE_OFFSET: u32 = 0x4;
/// The feed key.
pub const WDT_RESTART_KEY: u32 = 0xa57;

/// GPIO (PIO) register block base.
pub const GPIO_BASE: u32 = 0x01c2_0800;
/// Size of the GPIO register block.
pub const GPIO_SIZE: u32 = 0x400;
/// Data-register offset: each bit is one pin level.
pub const GPIO_DATA_OFFSET: u32 = 0x10;
/// The green onboard LED pin the FreeRTOS blink task toggles.
pub const LED_PIN: u8 = 24;
/// The red status LED pin the root cell's heartbeat toggles.
pub const ROOT_LED_PIN: u8 = 25;

/// Root cell (Linux) RAM: the bottom 768 MiB of DRAM.
pub const ROOT_RAM_BASE: u32 = RAM_BASE;
/// Size of the root cell RAM slice.
pub const ROOT_RAM_SIZE: u32 = 0x3000_0000;

/// Inter-cell shared memory (ivshmem) page, sitting directly between
/// the root slice and the RTOS slice. Its adjacency to the RTOS cell
/// RAM matters: a single-bit corruption of an address register in the
/// non-root cell easily lands here, which is the fault-propagation
/// path behind the paper's *panic park* outcomes.
pub const IVSHMEM_BASE: u32 = ROOT_RAM_BASE + ROOT_RAM_SIZE;
/// Size of the shared-memory region.
pub const IVSHMEM_SIZE: u32 = 0x0010_0000;

/// Non-root (FreeRTOS) cell RAM slice.
pub const RTOS_RAM_BASE: u32 = IVSHMEM_BASE + IVSHMEM_SIZE;
/// Size of the non-root cell RAM slice (255 MiB minus hypervisor carve-out).
pub const RTOS_RAM_SIZE: u32 = 0x0af0_0000;

/// Hypervisor-reserved carve-out at the top of DRAM (Jailhouse's
/// `hypervisor memory` in the system configuration).
pub const HV_RAM_BASE: u32 = RTOS_RAM_BASE + RTOS_RAM_SIZE;
/// Size of the hypervisor carve-out.
pub const HV_RAM_SIZE: u32 = RAM_BASE + RAM_SIZE - HV_RAM_BASE;

/// SGI used by the hypervisor to kick a parked CPU during cell start
/// (the "CPU hot plug swap" of the paper).
pub const MGMT_SGI: u16 = 0;
/// Per-core generic-timer PPI.
pub const TIMER_IRQ: u16 = 27;
/// ivshmem doorbell interrupt (SPI).
pub const IVSHMEM_IRQ: u16 = 40;

/// End (exclusive) of DRAM.
pub const RAM_END: u32 = RAM_BASE.wrapping_add(RAM_SIZE);

/// Returns `true` if `addr` falls inside `[base, base + size)`.
pub fn in_region(addr: u32, base: u32, size: u32) -> bool {
    addr >= base && (addr - base) < size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dram_carveouts_tile_exactly() {
        assert_eq!(ROOT_RAM_BASE, RAM_BASE);
        assert_eq!(IVSHMEM_BASE, ROOT_RAM_BASE + ROOT_RAM_SIZE);
        assert_eq!(RTOS_RAM_BASE, IVSHMEM_BASE + IVSHMEM_SIZE);
        assert_eq!(HV_RAM_BASE, RTOS_RAM_BASE + RTOS_RAM_SIZE);
        assert_eq!(HV_RAM_BASE + HV_RAM_SIZE, RAM_BASE.wrapping_add(RAM_SIZE));
    }

    #[test]
    fn carveouts_are_disjoint() {
        let regions = [
            (ROOT_RAM_BASE, ROOT_RAM_SIZE),
            (IVSHMEM_BASE, IVSHMEM_SIZE),
            (RTOS_RAM_BASE, RTOS_RAM_SIZE),
            (HV_RAM_BASE, HV_RAM_SIZE),
        ];
        for (i, &(base_a, size_a)) in regions.iter().enumerate() {
            for &(base_b, _) in regions.iter().skip(i + 1) {
                assert!(base_a + size_a <= base_b, "regions overlap");
            }
        }
    }

    #[test]
    fn devices_live_outside_dram() {
        // Evaluated at compile time: a layout regression fails the
        // build, not just the test run.
        const _: () = assert!(UART_BASE + UART_SIZE <= RAM_BASE);
        const _: () = assert!(GPIO_BASE + GPIO_SIZE <= RAM_BASE);
    }

    #[test]
    fn in_region_boundaries() {
        assert!(in_region(UART_BASE, UART_BASE, UART_SIZE));
        assert!(in_region(UART_BASE + UART_SIZE - 1, UART_BASE, UART_SIZE));
        assert!(!in_region(UART_BASE + UART_SIZE, UART_BASE, UART_SIZE));
        assert!(!in_region(UART_BASE - 1, UART_BASE, UART_SIZE));
    }

    #[test]
    fn ivshmem_is_adjacent_to_rtos_ram() {
        // The fault-propagation path of the panic-park outcome depends
        // on this adjacency; make it an explicit invariant.
        assert_eq!(IVSHMEM_BASE + IVSHMEM_SIZE, RTOS_RAM_BASE);
    }
}

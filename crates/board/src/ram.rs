//! Byte-addressable RAM with sparse page-granular backing.
//!
//! The board has 1 GiB of DRAM but the simulation touches only a tiny
//! fraction of it, so storage is allocated lazily in 4 KiB pages. Reads
//! from untouched pages return zero, like freshly initialised DRAM in
//! the model's idealisation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// Sparse RAM covering `[base, base + size)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ram {
    base: u32,
    size: u32,
    pages: HashMap<u32, Vec<u8>>,
}

/// Error returned for accesses outside the RAM window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// The faulting address.
    pub addr: u32,
}

impl std::fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address 0x{:08x} outside RAM window", self.addr)
    }
}

impl std::error::Error for OutOfRange {}

impl Ram {
    /// Creates a RAM window.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the window wraps the address space.
    pub fn new(base: u32, size: u32) -> Ram {
        assert!(size > 0, "RAM size must be non-zero");
        assert!(
            base.checked_add(size - 1).is_some(),
            "RAM window must not wrap the 32-bit address space"
        );
        Ram {
            base,
            size,
            pages: HashMap::new(),
        }
    }

    /// Base address of the window.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Window size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `addr` falls inside the window.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    fn check(&self, addr: u32, len: u32) -> Result<(), OutOfRange> {
        if !self.contains(addr) || !self.contains(addr + (len - 1)) {
            return Err(OutOfRange { addr });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if `addr` is outside the window.
    pub fn read8(&self, addr: u32) -> Result<u8, OutOfRange> {
        self.check(addr, 1)?;
        let offset = addr - self.base;
        let page = offset >> PAGE_SHIFT;
        Ok(self
            .pages
            .get(&page)
            .map(|p| p[(offset & (PAGE_SIZE - 1)) as usize])
            .unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if `addr` is outside the window.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), OutOfRange> {
        self.check(addr, 1)?;
        let offset = addr - self.base;
        let page = offset >> PAGE_SHIFT;
        let entry = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
        entry[(offset & (PAGE_SIZE - 1)) as usize] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word (no alignment requirement; the
    /// Cortex-A7 supports unaligned accesses to normal memory).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn read32(&self, addr: u32) -> Result<u32, OutOfRange> {
        self.check(addr, 4)?;
        let mut value = 0u32;
        for i in 0..4 {
            value |= u32::from(self.read8(addr + i)?) << (8 * i);
        }
        Ok(value)
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), OutOfRange> {
        self.check(addr, 4)?;
        for i in 0..4 {
            self.write8(addr + i, (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Number of 4 KiB pages actually materialised.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Zeroes a sub-range (page contents only where resident). Used to
    /// scrub cell memory on destruction.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if the range leaves the window.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), OutOfRange> {
        if len == 0 {
            return Ok(());
        }
        self.check(addr, len)?;
        let start = u64::from(addr - self.base);
        let end = start + u64::from(len);
        for (&page, data) in self.pages.iter_mut() {
            let page_start = u64::from(page) << PAGE_SHIFT;
            let page_end = page_start + u64::from(PAGE_SIZE);
            let lo = start.max(page_start);
            let hi = end.min(page_end);
            if lo < hi {
                let a = (lo - page_start) as usize;
                let b = (hi - page_start) as usize;
                data[a..b].fill(0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ram {
        Ram::new(0x4000_0000, 0x1_0000)
    }

    #[test]
    fn fresh_ram_reads_zero() {
        let ram = small();
        assert_eq!(ram.read32(0x4000_0000).unwrap(), 0);
        assert_eq!(ram.read8(0x4000_ffff).unwrap(), 0);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn word_round_trip_little_endian() {
        let mut ram = small();
        ram.write32(0x4000_0100, 0x0102_0304).unwrap();
        assert_eq!(ram.read32(0x4000_0100).unwrap(), 0x0102_0304);
        assert_eq!(ram.read8(0x4000_0100).unwrap(), 0x04);
        assert_eq!(ram.read8(0x4000_0103).unwrap(), 0x01);
    }

    #[test]
    fn unaligned_word_across_page_boundary() {
        let mut ram = small();
        let addr = 0x4000_0000 + 0x1000 - 2;
        ram.write32(addr, 0xaabb_ccdd).unwrap();
        assert_eq!(ram.read32(addr).unwrap(), 0xaabb_ccdd);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ram = small();
        assert!(ram.read8(0x3fff_ffff).is_err());
        assert!(ram.write8(0x4001_0000, 1).is_err());
        // Word straddling the end of the window.
        assert!(ram.read32(0x4000_fffe).is_err());
    }

    #[test]
    fn zero_range_scrubs_resident_pages_only() {
        let mut ram = small();
        ram.write32(0x4000_2000, 0xffff_ffff).unwrap();
        ram.zero_range(0x4000_2000, 0x100).unwrap();
        assert_eq!(ram.read32(0x4000_2000).unwrap(), 0);
        // Non-resident pages stay non-resident.
        assert_eq!(ram.resident_pages(), 1);
    }

    #[test]
    fn zero_len_zero_range_is_noop() {
        let mut ram = small();
        ram.zero_range(0x4000_0000, 0).unwrap();
    }

    #[test]
    #[should_panic(expected = "must not wrap")]
    fn wrapping_window_rejected() {
        let _ = Ram::new(0xffff_f000, 0x2000);
    }
}

//! Byte-addressable RAM with sparse page-granular backing.
//!
//! The board has 1 GiB of DRAM but the simulation touches only a tiny
//! fraction of it, so storage is allocated lazily in 4 KiB pages. Reads
//! from untouched pages return zero, like freshly initialised DRAM in
//! the model's idealisation.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: u32 = 1 << PAGE_SHIFT;

/// A multiply-shift hasher for page indices. Page numbers are small
/// dense integers; the default SipHash costs more than the page access
/// it guards, and every 32-bit bus access goes through this map.
#[derive(Debug, Clone, Copy, Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (unused by the u32 keys below).
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    fn write_u32(&mut self, value: u32) {
        // Fibonacci multiply-shift: mixes the low bits into the high
        // ones the hash table actually uses.
        self.0 = u64::from(value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// Sparse RAM covering `[base, base + size)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ram {
    base: u32,
    size: u32,
    pages: HashMap<u32, Vec<u8>, BuildHasherDefault<PageHasher>>,
}

/// One word-granular corruption applied through the fault helpers
/// ([`Ram::flip_bits32`], [`Ram::force32`], [`Ram::splat_range`]):
/// the address plus the before/after bytes, for the injection log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RamFault {
    /// Address of the corrupted word.
    pub addr: u32,
    /// Word value before the corruption.
    pub before: u32,
    /// Word value after the corruption.
    pub after: u32,
}

/// Error returned for accesses outside the RAM window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutOfRange {
    /// The faulting address.
    pub addr: u32,
}

impl std::fmt::Display for OutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "address 0x{:08x} outside RAM window", self.addr)
    }
}

impl std::error::Error for OutOfRange {}

impl Ram {
    /// Creates a RAM window.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or the window wraps the address space.
    pub fn new(base: u32, size: u32) -> Ram {
        assert!(size > 0, "RAM size must be non-zero");
        assert!(
            base.checked_add(size - 1).is_some(),
            "RAM window must not wrap the 32-bit address space"
        );
        Ram {
            base,
            size,
            pages: HashMap::default(),
        }
    }

    /// Base address of the window.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// Window size in bytes.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Whether `addr` falls inside the window.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    fn check(&self, addr: u32, len: u32) -> Result<(), OutOfRange> {
        let end = addr.checked_add(len - 1).ok_or(OutOfRange { addr })?;
        if !self.contains(addr) || !self.contains(end) {
            return Err(OutOfRange { addr });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if `addr` is outside the window.
    pub fn read8(&self, addr: u32) -> Result<u8, OutOfRange> {
        self.check(addr, 1)?;
        let offset = addr - self.base;
        let page = offset >> PAGE_SHIFT;
        Ok(self
            .pages
            .get(&page)
            .map(|p| p[(offset & (PAGE_SIZE - 1)) as usize])
            .unwrap_or(0))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if `addr` is outside the window.
    pub fn write8(&mut self, addr: u32, value: u8) -> Result<(), OutOfRange> {
        self.check(addr, 1)?;
        let offset = addr - self.base;
        let page = offset >> PAGE_SHIFT;
        let entry = self
            .pages
            .entry(page)
            .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
        entry[(offset & (PAGE_SIZE - 1)) as usize] = value;
        Ok(())
    }

    /// Reads a little-endian 32-bit word (no alignment requirement; the
    /// Cortex-A7 supports unaligned accesses to normal memory).
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn read32(&self, addr: u32) -> Result<u32, OutOfRange> {
        self.check(addr, 4)?;
        let offset = addr - self.base;
        let idx = (offset & (PAGE_SIZE - 1)) as usize;
        if idx + 4 <= PAGE_SIZE as usize {
            // All four bytes in one page: a single lookup.
            return Ok(match self.pages.get(&(offset >> PAGE_SHIFT)) {
                Some(page) => u32::from_le_bytes(page[idx..idx + 4].try_into().unwrap()),
                None => 0,
            });
        }
        let mut value = 0u32;
        for i in 0..4 {
            value |= u32::from(self.read8(addr + i)?) << (8 * i);
        }
        Ok(value)
    }

    /// Writes a little-endian 32-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn write32(&mut self, addr: u32, value: u32) -> Result<(), OutOfRange> {
        self.check(addr, 4)?;
        let offset = addr - self.base;
        let idx = (offset & (PAGE_SIZE - 1)) as usize;
        if idx + 4 <= PAGE_SIZE as usize {
            // All four bytes in one page: a single lookup.
            let page = self
                .pages
                .entry(offset >> PAGE_SHIFT)
                .or_insert_with(|| vec![0; PAGE_SIZE as usize]);
            page[idx..idx + 4].copy_from_slice(&value.to_le_bytes());
            return Ok(());
        }
        for i in 0..4 {
            self.write8(addr + i, (value >> (8 * i)) as u8)?;
        }
        Ok(())
    }

    /// Number of 4 KiB pages actually materialised.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Whether the page containing `addr` has been materialised —
    /// i.e. something has been written near it. Fault-injection uses
    /// this to distinguish corruption of memory the workload actually
    /// touched from corruption of pristine DRAM.
    pub fn is_resident(&self, addr: u32) -> bool {
        self.contains(addr) && self.pages.contains_key(&((addr - self.base) >> PAGE_SHIFT))
    }

    /// Base addresses of all materialised pages, sorted ascending —
    /// the workload's memory working set. Sorting makes the list
    /// deterministic (the backing map is hash-ordered), which seeded
    /// fault-injection campaigns rely on.
    pub fn resident_page_addrs(&self) -> Vec<u32> {
        let mut addrs: Vec<u32> = self
            .pages
            .keys()
            .map(|&page| self.base + (page << PAGE_SHIFT))
            .collect();
        addrs.sort_unstable();
        addrs
    }

    /// Flips the bits of `mask` in the 32-bit word at `addr`,
    /// returning the recorded before/after values.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn flip_bits32(&mut self, addr: u32, mask: u32) -> Result<RamFault, OutOfRange> {
        let before = self.read32(addr)?;
        let after = before ^ mask;
        self.write32(addr, after)?;
        Ok(RamFault {
            addr,
            before,
            after,
        })
    }

    /// Forces the 32-bit word at `addr` to `value` (stuck-at fault),
    /// returning the recorded before/after values.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte falls outside the window.
    pub fn force32(&mut self, addr: u32, value: u32) -> Result<RamFault, OutOfRange> {
        let before = self.read32(addr)?;
        self.write32(addr, value)?;
        Ok(RamFault {
            addr,
            before,
            after: value,
        })
    }

    /// Overwrites `words` consecutive 32-bit words starting at `addr`
    /// with `pattern` (a burst fault). Returns the fault record of the
    /// first word plus the number of words whose value actually
    /// changed.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if any byte of the burst falls outside
    /// the window; no partial burst is applied.
    pub fn splat_range(
        &mut self,
        addr: u32,
        words: u32,
        pattern: u32,
    ) -> Result<(RamFault, u32), OutOfRange> {
        if words == 0 {
            return Err(OutOfRange { addr });
        }
        let len = words.checked_mul(4).ok_or(OutOfRange { addr })?;
        self.check(addr, len)?;
        let mut changed = 0;
        let mut first = None;
        for i in 0..words {
            let fault = self.force32(addr + 4 * i, pattern)?;
            if fault.before != fault.after {
                changed += 1;
            }
            if first.is_none() {
                first = Some(fault);
            }
        }
        Ok((first.expect("words > 0"), changed))
    }

    /// Zeroes a sub-range (page contents only where resident). Used to
    /// scrub cell memory on destruction.
    ///
    /// # Errors
    ///
    /// Returns [`OutOfRange`] if the range leaves the window.
    pub fn zero_range(&mut self, addr: u32, len: u32) -> Result<(), OutOfRange> {
        if len == 0 {
            return Ok(());
        }
        self.check(addr, len)?;
        let start = u64::from(addr - self.base);
        let end = start + u64::from(len);
        for (&page, data) in self.pages.iter_mut() {
            let page_start = u64::from(page) << PAGE_SHIFT;
            let page_end = page_start + u64::from(PAGE_SIZE);
            let lo = start.max(page_start);
            let hi = end.min(page_end);
            if lo < hi {
                let a = (lo - page_start) as usize;
                let b = (hi - page_start) as usize;
                data[a..b].fill(0);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Ram {
        Ram::new(0x4000_0000, 0x1_0000)
    }

    #[test]
    fn fresh_ram_reads_zero() {
        let ram = small();
        assert_eq!(ram.read32(0x4000_0000).unwrap(), 0);
        assert_eq!(ram.read8(0x4000_ffff).unwrap(), 0);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn word_round_trip_little_endian() {
        let mut ram = small();
        ram.write32(0x4000_0100, 0x0102_0304).unwrap();
        assert_eq!(ram.read32(0x4000_0100).unwrap(), 0x0102_0304);
        assert_eq!(ram.read8(0x4000_0100).unwrap(), 0x04);
        assert_eq!(ram.read8(0x4000_0103).unwrap(), 0x01);
    }

    #[test]
    fn unaligned_word_across_page_boundary() {
        let mut ram = small();
        let addr = 0x4000_0000 + 0x1000 - 2;
        ram.write32(addr, 0xaabb_ccdd).unwrap();
        assert_eq!(ram.read32(addr).unwrap(), 0xaabb_ccdd);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut ram = small();
        assert!(ram.read8(0x3fff_ffff).is_err());
        assert!(ram.write8(0x4001_0000, 1).is_err());
        // Word straddling the end of the window.
        assert!(ram.read32(0x4000_fffe).is_err());
    }

    #[test]
    fn zero_range_scrubs_resident_pages_only() {
        let mut ram = small();
        ram.write32(0x4000_2000, 0xffff_ffff).unwrap();
        ram.zero_range(0x4000_2000, 0x100).unwrap();
        assert_eq!(ram.read32(0x4000_2000).unwrap(), 0);
        // Non-resident pages stay non-resident.
        assert_eq!(ram.resident_pages(), 1);
    }

    #[test]
    fn zero_len_zero_range_is_noop() {
        let mut ram = small();
        ram.zero_range(0x4000_0000, 0).unwrap();
    }

    #[test]
    #[should_panic(expected = "must not wrap")]
    fn wrapping_window_rejected() {
        let _ = Ram::new(0xffff_f000, 0x2000);
    }

    #[test]
    fn flip_bits32_records_before_and_after_and_is_self_inverse() {
        let mut ram = small();
        ram.write32(0x4000_0200, 0x1234_5678).unwrap();
        let fault = ram.flip_bits32(0x4000_0200, 0x0000_0011).unwrap();
        assert_eq!(fault.before, 0x1234_5678);
        assert_eq!(fault.after, 0x1234_5669);
        assert_eq!(ram.read32(0x4000_0200).unwrap(), 0x1234_5669);
        // Same mask again restores the original value.
        let fault = ram.flip_bits32(0x4000_0200, 0x0000_0011).unwrap();
        assert_eq!(fault.after, 0x1234_5678);
    }

    #[test]
    fn force32_is_a_stuck_at_fault() {
        let mut ram = small();
        ram.write32(0x4000_0300, 0xffff_ffff).unwrap();
        let fault = ram.force32(0x4000_0300, 0).unwrap();
        assert_eq!((fault.before, fault.after), (0xffff_ffff, 0));
        assert_eq!(ram.read32(0x4000_0300).unwrap(), 0);
    }

    #[test]
    fn splat_range_counts_changed_words() {
        let mut ram = small();
        ram.write32(0x4000_0400, 0xaaaa_aaaa).unwrap();
        ram.write32(0x4000_0408, 0xaaaa_aaaa).unwrap();
        let (first, changed) = ram.splat_range(0x4000_0400, 4, 0xaaaa_aaaa).unwrap();
        assert_eq!(first.before, 0xaaaa_aaaa);
        assert_eq!(changed, 2, "two of four words were zero before");
        // A burst straddling the window end is rejected whole.
        assert!(ram.splat_range(0x4000_fffc, 2, 0).is_err());
        assert!(ram.splat_range(0x4000_0000, 0, 0).is_err());
        // A length whose byte count overflows u32 is rejected, not
        // partially applied.
        assert!(ram.splat_range(0x4000_0000, u32::MAX / 2, 0).is_err());
        assert_eq!(ram.read32(0x4000_0000).unwrap(), 0, "no partial write");
    }

    #[test]
    fn residency_tracks_materialised_pages() {
        let mut ram = small();
        assert!(!ram.is_resident(0x4000_2000));
        ram.write8(0x4000_2abc, 1).unwrap();
        assert!(ram.is_resident(0x4000_2000));
        assert!(ram.is_resident(0x4000_2fff));
        assert!(!ram.is_resident(0x4000_3000));
        assert!(!ram.is_resident(0x3fff_ffff));
    }

    #[test]
    fn resident_page_addrs_are_sorted_page_bases() {
        let mut ram = small();
        ram.write8(0x4000_f123, 1).unwrap();
        ram.write8(0x4000_2abc, 1).unwrap();
        ram.write8(0x4000_0001, 1).unwrap();
        assert_eq!(
            ram.resident_page_addrs(),
            vec![0x4000_0000, 0x4000_2000, 0x4000_f000]
        );
    }
}

//! Capturing UART model.
//!
//! In the paper, "the outcome is sent to an empty shell where the board
//! serial port is connected" and the log file is the raw material of
//! all analytics. The modelled UART therefore does two jobs:
//!
//! 1. behave like a 16550-ish transmit path (writes to `THR` emit a
//!    byte; `LSR` always reports the transmitter empty), and
//! 2. record everything, tagged with the step at which it was written,
//!    so `certify-analysis` can reconstruct *when* output stopped — the
//!    "USART output left completely blank" observation of experiment E2
//!    is precisely a gap in this record.
//!
//! Because the serial log is consulted on every trial of a campaign
//! (line counts, `[rtos]` liveness checks, panic-banner scans), the
//! capture maintains an **incremental line index**: line boundaries and
//! each line's final-byte step are recorded as bytes arrive, so
//! [`Uart::indexed_lines`] and [`Uart::lines_since`] are cheap borrows
//! of the capture instead of a full O(bytes) reassembly with per-line
//! `String` allocations.

use crate::memmap::{UART_LSR_OFFSET, UART_THR_OFFSET};
use serde::{Deserialize, Serialize};
use std::borrow::Cow;

/// Line-status value reported by the model: transmitter always empty
/// (bits 5 and 6).
pub const LSR_TX_EMPTY: u32 = 0x60;

/// A byte captured on the serial wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxByte {
    /// Simulator step at which the byte was transmitted.
    pub step: u64,
    /// The byte.
    pub byte: u8,
}

/// One completed line in the incremental index: a byte range of the
/// contiguous capture (newline excluded) plus the step of the line's
/// final byte (the newline itself, matching the historical reassembly).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct LineSpan {
    step: u64,
    start: u32,
    end: u32,
}

/// A borrowed view of one serial-log line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerialLine<'a> {
    /// Step of the line's final byte.
    pub step: u64,
    bytes: &'a [u8],
}

impl<'a> SerialLine<'a> {
    /// The raw bytes of the line (no trailing newline).
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// The line as text (lossy UTF-8; borrows unless invalid).
    pub fn text(&self) -> Cow<'a, str> {
        String::from_utf8_lossy(self.bytes)
    }

    /// Whether the line starts with `prefix` (byte-wise, no allocation).
    pub fn starts_with(&self, prefix: &str) -> bool {
        self.bytes.starts_with(prefix.as_bytes())
    }

    /// Whether the line contains `needle` (byte-wise, no allocation).
    pub fn contains(&self, needle: &str) -> bool {
        let needle = needle.as_bytes();
        if needle.is_empty() {
            return true;
        }
        self.bytes.windows(needle.len()).any(|w| w == needle)
    }
}

/// A run of captured bytes sharing one transmission step: bytes
/// `[prev.end, end)` of the contiguous capture arrived at `step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct StepMark {
    step: u64,
    /// End offset (exclusive) of this run in the byte stream.
    end: u32,
}

/// The UART device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Uart {
    /// The raw byte stream, contiguous (borrowed line views need
    /// contiguous storage).
    text: Vec<u8>,
    /// Per-step byte runs — steps are monotonic, so the whole capture
    /// timeline compresses to one mark per active step instead of a
    /// step stamp per byte.
    marks: Vec<StepMark>,
    /// Completed (newline-terminated) lines, appended as bytes arrive.
    spans: Vec<LineSpan>,
    /// Offset in `text` where the in-progress line starts.
    line_start: usize,
}

impl Uart {
    /// Creates an idle UART with an empty capture buffer.
    pub fn new() -> Uart {
        Uart {
            // A typical campaign trial captures a couple of KiB;
            // pre-sizing skips the early growth reallocations on the
            // byte-at-a-time capture path.
            text: Vec::with_capacity(2048),
            marks: Vec::with_capacity(256),
            spans: Vec::with_capacity(128),
            line_start: 0,
        }
    }

    /// Handles a 32-bit register write at `offset` within the UART
    /// block at simulator step `step`.
    pub fn write_reg(&mut self, offset: u32, value: u32, step: u64) {
        if offset == UART_THR_OFFSET {
            let byte = (value & 0xff) as u8;
            self.text.push(byte);
            let end = self.text.len() as u32;
            match self.marks.last_mut() {
                Some(mark) if mark.step == step => mark.end = end,
                _ => self.marks.push(StepMark { step, end }),
            }
            if byte == b'\n' {
                self.spans.push(LineSpan {
                    step,
                    start: self.line_start as u32,
                    end: end - 1,
                });
                self.line_start = self.text.len();
            }
        }
        // All other registers are write-ignored in the model.
    }

    /// Handles a 32-bit register read at `offset`.
    pub fn read_reg(&self, offset: u32) -> u32 {
        if offset == UART_LSR_OFFSET {
            LSR_TX_EMPTY
        } else {
            0
        }
    }

    /// Transmits a whole string (convenience used by guest models that
    /// print line-at-a-time).
    pub fn write_str(&mut self, s: &str, step: u64) {
        for b in s.bytes() {
            self.write_reg(UART_THR_OFFSET, u32::from(b), step);
        }
    }

    /// Every captured byte in transmission order, with its step.
    pub fn captured(&self) -> impl Iterator<Item = TxByte> + '_ {
        let mut start = 0usize;
        self.marks.iter().flat_map(move |mark| {
            let run = &self.text[start..mark.end as usize];
            start = mark.end as usize;
            run.iter().map(move |&byte| TxByte {
                step: mark.step,
                byte,
            })
        })
    }

    /// Total bytes transmitted.
    pub fn byte_count(&self) -> usize {
        self.text.len()
    }

    /// The step of the last transmitted byte, or `None` if the wire has
    /// been silent.
    pub fn last_activity(&self) -> Option<u64> {
        self.marks.last().map(|m| m.step)
    }

    /// Number of log lines (completed plus the in-progress tail, if
    /// any) — O(1) from the index.
    pub fn line_count(&self) -> usize {
        self.spans.len() + usize::from(self.line_start < self.text.len())
    }

    /// Borrowed views of every log line, in transmission order: the
    /// cheap replacement for reassembling the capture. Completed lines
    /// carry the step of their newline; an unterminated tail carries
    /// the step of the last byte.
    pub fn indexed_lines(&self) -> impl Iterator<Item = SerialLine<'_>> + '_ {
        self.spans
            .iter()
            .map(move |span| SerialLine {
                step: span.step,
                bytes: &self.text[span.start as usize..span.end as usize],
            })
            .chain(self.partial_line())
    }

    /// Borrowed views of the log lines whose final byte arrived at or
    /// after `step`. Line steps are nondecreasing, so the completed
    /// prefix to skip is found by binary search — polling this mid-run
    /// costs O(log lines + matches), not a capture reassembly.
    pub fn lines_since(&self, step: u64) -> impl Iterator<Item = SerialLine<'_>> + '_ {
        let first = self.spans.partition_point(|span| span.step < step);
        self.spans[first..]
            .iter()
            .map(move |span| SerialLine {
                step: span.step,
                bytes: &self.text[span.start as usize..span.end as usize],
            })
            .chain(self.partial_line().filter(move |line| line.step >= step))
    }

    /// The unterminated tail line, if any.
    fn partial_line(&self) -> Option<SerialLine<'_>> {
        if self.line_start < self.text.len() {
            Some(SerialLine {
                step: self.marks.last().map(|m| m.step).unwrap_or(0),
                bytes: &self.text[self.line_start..],
            })
        } else {
            None
        }
    }

    /// Reassembles the capture into owned text lines (lossy UTF-8),
    /// each with the step of its final byte — the "log file" of
    /// Figure 2. Allocates one `String` per line; hot paths should
    /// iterate [`Uart::indexed_lines`] instead.
    pub fn lines(&self) -> Vec<(u64, String)> {
        self.indexed_lines()
            .map(|line| (line.step, line.text().into_owned()))
            .collect()
    }

    /// Bytes transmitted at or after `step` — used to check whether a
    /// cell produced *any* output after an event (E2's blank-USART
    /// check). Capture steps are nondecreasing, so this is a binary
    /// search over the step marks, not a scan.
    pub fn bytes_since(&self, step: u64) -> usize {
        let idx = self.marks.partition_point(|m| m.step < step);
        let before = if idx == 0 {
            0
        } else {
            self.marks[idx - 1].end as usize
        };
        self.text.len() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thr_writes_are_captured_in_order() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, u32::from(b'h'), 1);
        uart.write_reg(UART_THR_OFFSET, u32::from(b'i'), 2);
        assert_eq!(uart.byte_count(), 2);
        let captured: Vec<TxByte> = uart.captured().collect();
        assert_eq!(captured[0].byte, b'h');
        assert_eq!(captured[1].byte, b'i');
    }

    #[test]
    fn non_thr_writes_ignored() {
        let mut uart = Uart::new();
        uart.write_reg(0x4, 0xff, 1);
        uart.write_reg(UART_LSR_OFFSET, 0xff, 1);
        assert_eq!(uart.byte_count(), 0);
    }

    #[test]
    fn lsr_reports_tx_empty() {
        let uart = Uart::new();
        assert_eq!(uart.read_reg(UART_LSR_OFFSET), LSR_TX_EMPTY);
        assert_eq!(uart.read_reg(0x8), 0);
    }

    #[test]
    fn lines_reassemble_on_newline() {
        let mut uart = Uart::new();
        uart.write_str("boot ok\nsecond", 10);
        let lines = uart.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], (10, "boot ok".to_string()));
        assert_eq!(lines[1], (10, "second".to_string()));
        assert_eq!(uart.line_count(), 2);
    }

    #[test]
    fn only_low_byte_of_thr_value_is_sent() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, 0x1234_5641, 3);
        assert_eq!(uart.captured().next().unwrap().byte, 0x41);
    }

    #[test]
    fn bytes_since_counts_boundary_inclusive() {
        let mut uart = Uart::new();
        uart.write_str("a", 5);
        uart.write_str("b", 9);
        assert_eq!(uart.bytes_since(5), 2);
        assert_eq!(uart.bytes_since(6), 1);
        assert_eq!(uart.bytes_since(10), 0);
    }

    #[test]
    fn last_activity_tracks_final_byte() {
        let mut uart = Uart::new();
        assert_eq!(uart.last_activity(), None);
        uart.write_str("x", 42);
        assert_eq!(uart.last_activity(), Some(42));
    }

    #[test]
    fn lossy_utf8_never_panics() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, 0xff, 1);
        uart.write_reg(UART_THR_OFFSET, u32::from(b'\n'), 1);
        let lines = uart.lines();
        assert_eq!(lines.len(), 1);
    }

    /// The byte-at-a-time reassembly the index replaced — kept as the
    /// reference implementation for the equivalence tests below.
    fn naive_lines(uart: &Uart) -> Vec<(u64, String)> {
        let mut lines = Vec::new();
        let mut current = Vec::new();
        let mut last_step = 0;
        for tx in uart.captured() {
            last_step = tx.step;
            if tx.byte == b'\n' {
                lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
                current.clear();
            } else {
                current.push(tx.byte);
            }
        }
        if !current.is_empty() {
            lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
        }
        lines
    }

    #[test]
    fn incremental_index_matches_naive_reassembly() {
        let mut uart = Uart::new();
        uart.write_str("boot ok\n", 3);
        uart.write_str("\n", 4); // empty line
        uart.write_str("[rtos] blink #1\n", 9);
        uart.write_reg(UART_THR_OFFSET, 0xff, 10); // invalid UTF-8
        uart.write_str("\npartial tail", 12);
        assert_eq!(uart.lines(), naive_lines(&uart));
        assert_eq!(uart.line_count(), naive_lines(&uart).len());
    }

    #[test]
    fn index_has_no_partial_line_after_trailing_newline() {
        let mut uart = Uart::new();
        uart.write_str("done\n", 7);
        assert_eq!(uart.line_count(), 1);
        assert_eq!(uart.lines(), naive_lines(&uart));
    }

    #[test]
    fn lines_since_filters_by_final_byte_step() {
        let mut uart = Uart::new();
        uart.write_str("early\n", 5);
        uart.write_str("late\n", 20);
        uart.write_str("tail", 30);
        let all: Vec<_> = uart.lines_since(0).map(|l| l.text().into_owned()).collect();
        assert_eq!(all, ["early", "late", "tail"]);
        let late: Vec<_> = uart.lines_since(6).map(|l| l.text().into_owned()).collect();
        assert_eq!(late, ["late", "tail"]);
        assert_eq!(uart.lines_since(21).count(), 1);
        assert_eq!(uart.lines_since(31).count(), 0);
    }

    #[test]
    fn serial_line_helpers_match_str_semantics() {
        let mut uart = Uart::new();
        uart.write_str("[rtos] blink #32\n", 1);
        let line = uart.indexed_lines().next().unwrap();
        assert!(line.starts_with("[rtos]"));
        assert!(!line.starts_with("[linux]"));
        assert!(line.contains("blink"));
        assert!(line.contains(""));
        assert!(!line.contains("panic"));
        assert_eq!(line.bytes(), b"[rtos] blink #32");
    }
}

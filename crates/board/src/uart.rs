//! Capturing UART model.
//!
//! In the paper, "the outcome is sent to an empty shell where the board
//! serial port is connected" and the log file is the raw material of
//! all analytics. The modelled UART therefore does two jobs:
//!
//! 1. behave like a 16550-ish transmit path (writes to `THR` emit a
//!    byte; `LSR` always reports the transmitter empty), and
//! 2. record everything, tagged with the step at which it was written,
//!    so `certify-analysis` can reconstruct *when* output stopped — the
//!    "USART output left completely blank" observation of experiment E2
//!    is precisely a gap in this record.

use crate::memmap::{UART_LSR_OFFSET, UART_THR_OFFSET};
use serde::{Deserialize, Serialize};

/// Line-status value reported by the model: transmitter always empty
/// (bits 5 and 6).
pub const LSR_TX_EMPTY: u32 = 0x60;

/// A byte captured on the serial wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TxByte {
    /// Simulator step at which the byte was transmitted.
    pub step: u64,
    /// The byte.
    pub byte: u8,
}

/// The UART device.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Uart {
    captured: Vec<TxByte>,
}

impl Uart {
    /// Creates an idle UART with an empty capture buffer.
    pub fn new() -> Uart {
        Uart::default()
    }

    /// Handles a 32-bit register write at `offset` within the UART
    /// block at simulator step `step`.
    pub fn write_reg(&mut self, offset: u32, value: u32, step: u64) {
        if offset == UART_THR_OFFSET {
            self.captured.push(TxByte {
                step,
                byte: (value & 0xff) as u8,
            });
        }
        // All other registers are write-ignored in the model.
    }

    /// Handles a 32-bit register read at `offset`.
    pub fn read_reg(&self, offset: u32) -> u32 {
        if offset == UART_LSR_OFFSET {
            LSR_TX_EMPTY
        } else {
            0
        }
    }

    /// Transmits a whole string (convenience used by guest models that
    /// print line-at-a-time).
    pub fn write_str(&mut self, s: &str, step: u64) {
        for b in s.bytes() {
            self.write_reg(UART_THR_OFFSET, u32::from(b), step);
        }
    }

    /// Every captured byte in transmission order.
    pub fn captured(&self) -> &[TxByte] {
        &self.captured
    }

    /// Total bytes transmitted.
    pub fn byte_count(&self) -> usize {
        self.captured.len()
    }

    /// The step of the last transmitted byte, or `None` if the wire has
    /// been silent.
    pub fn last_activity(&self) -> Option<u64> {
        self.captured.last().map(|b| b.step)
    }

    /// Reassembles the capture into text lines (lossy UTF-8), each with
    /// the step of its final byte. This is the "log file" of Figure 2.
    pub fn lines(&self) -> Vec<(u64, String)> {
        let mut lines = Vec::new();
        let mut current = Vec::new();
        let mut last_step = 0;
        for tx in &self.captured {
            last_step = tx.step;
            if tx.byte == b'\n' {
                lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
                current.clear();
            } else {
                current.push(tx.byte);
            }
        }
        if !current.is_empty() {
            lines.push((last_step, String::from_utf8_lossy(&current).into_owned()));
        }
        lines
    }

    /// Bytes transmitted at or after `step` — used to check whether a
    /// cell produced *any* output after an event (E2's blank-USART
    /// check).
    pub fn bytes_since(&self, step: u64) -> usize {
        self.captured.iter().filter(|b| b.step >= step).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thr_writes_are_captured_in_order() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, u32::from(b'h'), 1);
        uart.write_reg(UART_THR_OFFSET, u32::from(b'i'), 2);
        assert_eq!(uart.byte_count(), 2);
        assert_eq!(uart.captured()[0].byte, b'h');
        assert_eq!(uart.captured()[1].byte, b'i');
    }

    #[test]
    fn non_thr_writes_ignored() {
        let mut uart = Uart::new();
        uart.write_reg(0x4, 0xff, 1);
        uart.write_reg(UART_LSR_OFFSET, 0xff, 1);
        assert_eq!(uart.byte_count(), 0);
    }

    #[test]
    fn lsr_reports_tx_empty() {
        let uart = Uart::new();
        assert_eq!(uart.read_reg(UART_LSR_OFFSET), LSR_TX_EMPTY);
        assert_eq!(uart.read_reg(0x8), 0);
    }

    #[test]
    fn lines_reassemble_on_newline() {
        let mut uart = Uart::new();
        uart.write_str("boot ok\nsecond", 10);
        let lines = uart.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], (10, "boot ok".to_string()));
        assert_eq!(lines[1], (10, "second".to_string()));
    }

    #[test]
    fn only_low_byte_of_thr_value_is_sent() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, 0x1234_5641, 3);
        assert_eq!(uart.captured()[0].byte, 0x41);
    }

    #[test]
    fn bytes_since_counts_boundary_inclusive() {
        let mut uart = Uart::new();
        uart.write_str("a", 5);
        uart.write_str("b", 9);
        assert_eq!(uart.bytes_since(5), 2);
        assert_eq!(uart.bytes_since(6), 1);
        assert_eq!(uart.bytes_since(10), 0);
    }

    #[test]
    fn last_activity_tracks_final_byte() {
        let mut uart = Uart::new();
        assert_eq!(uart.last_activity(), None);
        uart.write_str("x", 42);
        assert_eq!(uart.last_activity(), Some(42));
    }

    #[test]
    fn lossy_utf8_never_panics() {
        let mut uart = Uart::new();
        uart.write_reg(UART_THR_OFFSET, 0xff, 1);
        uart.write_reg(UART_THR_OFFSET, u32::from(b'\n'), 1);
        let lines = uart.lines();
        assert_eq!(lines.len(), 1);
    }
}

//! Hardware watchdog timer.
//!
//! The paper's outlook asks for mechanisms that turn silent failures
//! into detected ones. A watchdog is the automotive-domain staple for
//! exactly that: software must periodically *feed* it; if the feeding
//! stops — e.g. because the root kernel panicked (*panic park*) — the
//! countdown expires and the device records (and would, on real
//! hardware, reset the SoC). The extension experiment E5a measures
//! the detection latency this buys over the paper's outcomes.
//!
//! Register model (Allwinner-style):
//!
//! * `CTRL` — writing the restart key reloads the countdown;
//! * `MODE` — bit 0 enables the countdown.

use crate::memmap::{WDT_CTRL_OFFSET, WDT_MODE_OFFSET, WDT_RESTART_KEY};
use serde::{Deserialize, Serialize};

/// Default countdown, in simulator steps.
pub const DEFAULT_TIMEOUT: u64 = 256;

/// The watchdog device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Watchdog {
    timeout: u64,
    remaining: u64,
    enabled: bool,
    feeds: u64,
    /// Steps at which the watchdog expired (it keeps running after an
    /// expiry so repeated starvation is visible).
    expiries: Vec<u64>,
}

impl Default for Watchdog {
    fn default() -> Self {
        Watchdog::new(DEFAULT_TIMEOUT)
    }
}

impl Watchdog {
    /// Creates a disabled watchdog with the given timeout in steps.
    ///
    /// # Panics
    ///
    /// Panics if `timeout` is zero.
    pub fn new(timeout: u64) -> Watchdog {
        assert!(timeout > 0, "watchdog timeout must be non-zero");
        Watchdog {
            timeout,
            remaining: timeout,
            enabled: false,
            feeds: 0,
            expiries: Vec::new(),
        }
    }

    /// Handles a 32-bit register write.
    pub fn write_reg(&mut self, offset: u32, value: u32) {
        match offset {
            WDT_CTRL_OFFSET if value == WDT_RESTART_KEY => {
                self.remaining = self.timeout;
                self.feeds += 1;
            }
            WDT_MODE_OFFSET => {
                let was_enabled = self.enabled;
                self.enabled = value & 1 != 0;
                if self.enabled && !was_enabled {
                    self.remaining = self.timeout;
                }
            }
            _ => {}
        }
    }

    /// Handles a 32-bit register read.
    pub fn read_reg(&self, offset: u32) -> u32 {
        match offset {
            WDT_MODE_OFFSET => u32::from(self.enabled),
            _ => 0,
        }
    }

    /// Advances the countdown by one step at simulator time `now`.
    /// Returns `true` if the watchdog expired on this step.
    pub fn step(&mut self, now: u64) -> bool {
        if !self.enabled {
            return false;
        }
        self.remaining = self.remaining.saturating_sub(1);
        if self.remaining == 0 {
            self.remaining = self.timeout;
            self.expiries.push(now);
            true
        } else {
            false
        }
    }

    /// Whether the countdown is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Successful feeds so far.
    pub fn feed_count(&self) -> u64 {
        self.feeds
    }

    /// Steps at which the watchdog expired.
    pub fn expiries(&self) -> &[u64] {
        &self.expiries
    }

    /// The first expiry, if any — the detection instant for a silent
    /// system failure.
    pub fn first_expiry(&self) -> Option<u64> {
        self.expiries.first().copied()
    }

    /// The configured timeout in steps.
    pub fn timeout(&self) -> u64 {
        self.timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "timeout must be non-zero")]
    fn zero_timeout_rejected() {
        let _ = Watchdog::new(0);
    }

    #[test]
    fn disabled_watchdog_never_expires() {
        let mut wdt = Watchdog::new(4);
        for now in 0..100 {
            assert!(!wdt.step(now));
        }
        assert!(wdt.expiries().is_empty());
    }

    #[test]
    fn expires_after_timeout_without_feeding() {
        let mut wdt = Watchdog::new(4);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        let mut expired_at = None;
        for now in 1..=10 {
            if wdt.step(now) {
                expired_at = Some(now);
                break;
            }
        }
        assert_eq!(expired_at, Some(4));
        assert_eq!(wdt.first_expiry(), Some(4));
    }

    #[test]
    fn feeding_defers_expiry() {
        let mut wdt = Watchdog::new(4);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        for now in 0..20 {
            if now % 3 == 0 {
                wdt.write_reg(WDT_CTRL_OFFSET, WDT_RESTART_KEY);
            }
            assert!(!wdt.step(now), "expired at {now} despite feeding");
        }
        assert!(wdt.feed_count() >= 6);
    }

    #[test]
    fn wrong_key_does_not_feed() {
        let mut wdt = Watchdog::new(3);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        wdt.step(1);
        wdt.write_reg(WDT_CTRL_OFFSET, 0x123);
        assert_eq!(wdt.feed_count(), 0);
        assert!(!wdt.step(2));
        assert!(wdt.step(3));
    }

    #[test]
    fn keeps_recording_repeated_expiries() {
        let mut wdt = Watchdog::new(2);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        for now in 1..=8 {
            wdt.step(now);
        }
        assert_eq!(wdt.expiries(), &[2, 4, 6, 8]);
    }

    #[test]
    fn mode_read_back() {
        let mut wdt = Watchdog::new(2);
        assert_eq!(wdt.read_reg(WDT_MODE_OFFSET), 0);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        assert_eq!(wdt.read_reg(WDT_MODE_OFFSET), 1);
    }

    #[test]
    fn enable_reloads_countdown() {
        let mut wdt = Watchdog::new(4);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        wdt.step(1);
        wdt.step(2);
        wdt.write_reg(WDT_MODE_OFFSET, 0);
        wdt.write_reg(WDT_MODE_OFFSET, 1);
        assert!(!wdt.step(3));
        assert!(!wdt.step(4));
        assert!(!wdt.step(5));
        assert!(wdt.step(6));
    }
}

//! Property-based tests for the board model.

use certify_board::{memmap, Machine, Ram};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// RAM behaves like a sparse byte map: a random sequence of writes
    /// and reads matches a HashMap reference model.
    #[test]
    fn ram_matches_reference_model(
        ops in proptest::collection::vec((0u32..0x4000, any::<u8>(), any::<bool>()), 1..200)
    ) {
        let mut ram = Ram::new(0x4000_0000, 0x4000);
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (offset, value, is_write) in ops {
            let addr = 0x4000_0000 + offset;
            if is_write {
                ram.write8(addr, value).unwrap();
                model.insert(addr, value);
            } else {
                let expected = model.get(&addr).copied().unwrap_or(0);
                prop_assert_eq!(ram.read8(addr).unwrap(), expected);
            }
        }
    }

    /// 32-bit RAM accesses are consistent with four byte accesses at
    /// any (possibly unaligned) address.
    #[test]
    fn word_access_equals_four_byte_accesses(offset in 0u32..0x3ffc, value in any::<u32>()) {
        let mut ram = Ram::new(0x4000_0000, 0x4000);
        let addr = 0x4000_0000 + offset;
        ram.write32(addr, value).unwrap();
        let mut reassembled = 0u32;
        for i in 0..4 {
            reassembled |= u32::from(ram.read8(addr + i).unwrap()) << (8 * i);
        }
        prop_assert_eq!(reassembled, value);
    }

    /// The bus decodes every address to exactly one target: device
    /// decode and RAM decode never overlap.
    #[test]
    fn bus_decode_is_unambiguous(addr in any::<u32>()) {
        let device = Machine::decode_device(addr).is_some();
        let ram = Machine::is_ram(addr);
        prop_assert!(!(device && ram), "address {:#010x} decodes twice", addr);
    }

    /// Whatever is written to the UART THR appears in the capture, in
    /// order, truncated to a byte.
    #[test]
    fn uart_capture_is_faithful(values in proptest::collection::vec(any::<u32>(), 1..50)) {
        let mut machine = Machine::new_banana_pi();
        for v in &values {
            machine
                .write32(memmap::UART_BASE + memmap::UART_THR_OFFSET, *v)
                .unwrap();
        }
        let captured: Vec<u8> = machine.uart.captured().map(|b| b.byte).collect();
        let expected: Vec<u8> = values.iter().map(|v| (*v & 0xff) as u8).collect();
        prop_assert_eq!(captured, expected);
    }

    /// GPIO toggle counters equal the number of actual level changes,
    /// regardless of the write pattern.
    #[test]
    fn gpio_toggle_count_matches_level_changes(
        writes in proptest::collection::vec(any::<u32>(), 1..60),
        pin in 0u8..32,
    ) {
        let mut machine = Machine::new_banana_pi();
        let mut level = false;
        let mut changes = 0u64;
        for w in &writes {
            machine
                .write32(memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET, *w)
                .unwrap();
            let new_level = w & (1 << pin) != 0;
            if new_level != level {
                changes += 1;
                level = new_level;
            }
        }
        prop_assert_eq!(machine.gpio.toggle_count(pin), changes);
    }

    /// Zeroing any sub-range really zeroes exactly that range.
    #[test]
    fn zero_range_is_exact(start in 0u32..0x1000, len in 0u32..0x1000) {
        let mut ram = Ram::new(0x4000_0000, 0x2000);
        prop_assume!(start + len <= 0x2000);
        for offset in (0..0x2000).step_by(64) {
            ram.write8(0x4000_0000 + offset, 0xab).unwrap();
        }
        ram.zero_range(0x4000_0000 + start, len).unwrap();
        for offset in (0..0x2000).step_by(64) {
            let inside = offset >= start && offset < start + len;
            let expected = if inside { 0 } else { 0xab };
            prop_assert_eq!(ram.read8(0x4000_0000 + offset).unwrap(), expected);
        }
    }
}

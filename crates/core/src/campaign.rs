//! Campaigns: seeded batches of independent trials.
//!
//! A *scenario* fixes the workload (management script), the injection
//! specification and the test duration; a *campaign* runs many seeded
//! trials of one scenario and aggregates the outcome distribution —
//! the data behind Figure 3. Trials are independent systems, so they
//! can run on parallel threads (cf. the "No PAIN, no gain?" parallel
//! fault injection study the paper cites [10]).

use crate::classify::{classify, Outcome, RunReport};
use crate::memfault::{MemFaultModel, MemTarget};
use crate::spec::{InjectionSpec, MemorySpec};
use crate::system::System;
use certify_guest_linux::MgmtScript;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Seed offset decorrelating a trial's memory-injection RNG from its
/// register-injection RNG (both are derived from the same trial seed).
const MEM_SEED_OFFSET: u64 = 0x6d65_6d66; // "memf"

/// A fully specified experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The root-cell management script.
    pub script: MgmtScript,
    /// The register-injection specification; `None` = no register
    /// faults.
    pub spec: Option<InjectionSpec>,
    /// The memory-injection specification; `None` = no memory faults.
    /// Both specs may be set for mixed campaigns.
    pub mem_spec: Option<MemorySpec>,
    /// Simulator steps per trial (the paper's "each test lasts 1
    /// min" becomes a fixed step budget).
    pub steps: u64,
    /// Whether the RTOS workload includes the E5b safety-heartbeat
    /// task.
    pub rtos_heartbeat: bool,
}

impl Scenario {
    /// Golden (fault-free) bring-up scenario.
    pub fn golden(steps: u64) -> Scenario {
        Scenario {
            name: "golden".into(),
            script: MgmtScript::bring_up_and_run(steps),
            spec: None,
            mem_spec: None,
            steps,
            rtos_heartbeat: false,
        }
    }

    /// E1: high-intensity injection on the root-context handlers
    /// during hypervisor enable. The script issues 49 info polls
    /// before the enable, so the enable itself is the 50th
    /// hypercall — the injection cadence of the paper's high
    /// intensity lands exactly on it.
    pub fn e1_root_high() -> Scenario {
        Scenario {
            name: "e1-root-high".into(),
            script: MgmtScript::enable_attempt(49),
            spec: Some(InjectionSpec::e1_root_high()),
            mem_spec: None,
            steps: 400,
            rtos_heartbeat: false,
        }
    }

    /// E2: high-intensity injection filtered to CPU 1 while the root
    /// cell cycles the FreeRTOS cell lifecycle.
    pub fn e2_nonroot_high() -> Scenario {
        Scenario {
            name: "e2-nonroot-high".into(),
            script: MgmtScript::lifecycle_cycling(150),
            spec: Some(InjectionSpec::e2_nonroot_high()),
            mem_spec: None,
            steps: 8000,
            rtos_heartbeat: false,
        }
    }

    /// E2, boot-window aligned: the single injection lands exactly on
    /// the `CPU_BOOT` hypercall — the deterministic reproduction of
    /// the paper's inconsistent-state observation.
    pub fn e2_boot_window() -> Scenario {
        Scenario {
            name: "e2-boot-window".into(),
            script: MgmtScript::bring_up_and_run(1500),
            spec: Some(InjectionSpec::e2_boot_window()),
            mem_spec: None,
            steps: 2500,
            rtos_heartbeat: false,
        }
    }

    /// E3 (Figure 3): medium-intensity injection on the non-root
    /// cell's `arch_handle_trap` during steady-state operation.
    pub fn e3_fig3() -> Scenario {
        Scenario {
            name: "e3-fig3-medium".into(),
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: None,
            steps: 4500,
            rtos_heartbeat: false,
        }
    }

    /// E5a (extension): the Figure-3 campaign with the hardware
    /// watchdog armed — the root kernel feeds it from its heartbeat
    /// path, so *panic park* outcomes become detected events.
    pub fn e5a_watchdog() -> Scenario {
        Scenario {
            name: "e5a-watchdog".into(),
            script: MgmtScript::bring_up_with_watchdog(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: None,
            steps: 4500,
            rtos_heartbeat: false,
        }
    }

    /// E5b (extension): the boot-window E2 scenario with the cell
    /// heartbeat + root-side safety monitor — the silent
    /// *inconsistent state* becomes a detected alarm.
    pub fn e5b_monitor() -> Scenario {
        Scenario {
            name: "e5b-monitor".into(),
            script: MgmtScript::bring_up_with_monitor(3000, 128),
            spec: Some(InjectionSpec::e2_boot_window()),
            mem_spec: None,
            steps: 4000,
            rtos_heartbeat: true,
        }
    }

    /// E6 (extension): a memory-fault campaign firing `model` at
    /// addresses drawn from `target`, paced by the non-root cell's
    /// handler stream during steady-state operation.
    pub fn e6_memory(model: MemFaultModel, target: MemTarget) -> Scenario {
        let name = format!("e6-{}", model.name());
        Scenario {
            name,
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: None,
            mem_spec: Some(MemorySpec::e6_memory(model, target)),
            steps: 4500,
            // The heartbeat task gives the victim a memory-active
            // workload (periodic ivshmem posts through stage-2) —
            // without it, table corruption could never manifest.
            rtos_heartbeat: true,
        }
    }

    /// E7 (extension): a mixed campaign — the paper's E3 register
    /// injection *and* an E6-style memory injection run in the same
    /// trials. The memory window opens after E3's single register
    /// injection (trap call 100, ~step 3160) so both domains fire.
    pub fn e7_mixed() -> Scenario {
        Scenario {
            name: "e7-mixed".into(),
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: Some(
                MemorySpec::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6())
                    .with_rate(10)
                    .with_window(3300, 4500),
            ),
            steps: 4500,
            rtos_heartbeat: true,
        }
    }

    /// Runs one seeded trial of this scenario.
    pub fn run_trial(&self, seed: u64) -> TrialResult {
        let mut system = if self.rtos_heartbeat {
            System::new_with_heartbeat(self.script.clone())
        } else {
            System::new(self.script.clone())
        };
        if let Some(spec) = &self.spec {
            system.install_injector(spec.clone(), seed);
        }
        if let Some(mem_spec) = &self.mem_spec {
            system.install_mem_injector(mem_spec.clone(), seed.wrapping_add(MEM_SEED_OFFSET));
        }
        system.run(self.steps);
        let report = classify(&system);
        TrialResult {
            seed,
            outcome: report.outcome,
            injection_count: report.injections.len(),
            mem_injection_count: report.mem_injections.iter().filter(|r| r.applied()).count(),
            report,
        }
    }
}

/// One trial's result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The trial's RNG seed.
    pub seed: u64,
    /// The classified outcome.
    pub outcome: Outcome,
    /// Number of register injections that fired.
    pub injection_count: usize,
    /// Number of memory injections that were applied.
    pub mem_injection_count: usize,
    /// The full classified report.
    pub report: RunReport,
}

/// A campaign: `trials` seeded runs of one scenario.
#[derive(Debug, Clone)]
pub struct Campaign {
    scenario: Scenario,
    trials: usize,
    base_seed: u64,
}

impl Campaign {
    /// Creates a campaign of `trials` runs seeded `base_seed + i`.
    pub fn new(scenario: Scenario, trials: usize, base_seed: u64) -> Campaign {
        Campaign {
            scenario,
            trials,
            base_seed,
        }
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Runs all trials sequentially.
    pub fn run(&self) -> CampaignResult {
        let trials = (0..self.trials)
            .map(|i| self.scenario.run_trial(self.base_seed + i as u64))
            .collect();
        CampaignResult {
            scenario_name: self.scenario.name.clone(),
            trials,
        }
    }

    /// Runs all trials across `workers` threads (trials are fully
    /// independent systems).
    ///
    /// Workers pull trial indices from a shared atomic counter
    /// (work-stealing: a worker stuck on a slow trial never blocks
    /// the others), and every trial is seeded `base_seed + i` exactly
    /// as in [`Campaign::run`] — so the returned trials are in seed
    /// order and bit-identical to a sequential run, whatever the
    /// worker count or OS scheduling.
    pub fn run_parallel(&self, workers: usize) -> CampaignResult {
        let workers = workers.max(1).min(self.trials.max(1));
        let mut results: Vec<Option<TrialResult>> = (0..self.trials).map(|_| None).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let scenario = &self.scenario;
        let trials = self.trials;
        let base_seed = self.base_seed;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let next = &next;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            if i >= trials {
                                break;
                            }
                            local.push((i, scenario.run_trial(base_seed + i as u64)));
                        }
                        local
                    })
                })
                .collect();
            for handle in handles {
                for (i, result) in handle.join().expect("campaign worker panicked") {
                    results[i] = Some(result);
                }
            }
        });
        CampaignResult {
            scenario_name: self.scenario.name.clone(),
            trials: results.into_iter().map(|r| r.expect("trial ran")).collect(),
        }
    }
}

/// Aggregated campaign outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The scenario that was run.
    pub scenario_name: String,
    /// All trial results, in seed order.
    pub trials: Vec<TrialResult>,
}

impl CampaignResult {
    /// Outcome histogram.
    pub fn distribution(&self) -> BTreeMap<Outcome, usize> {
        let mut map = BTreeMap::new();
        for trial in &self.trials {
            *map.entry(trial.outcome).or_insert(0) += 1;
        }
        map
    }

    /// Fraction of trials with the given outcome.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let count = self.trials.iter().filter(|t| t.outcome == outcome).count();
        count as f64 / self.trials.len() as f64
    }

    /// Trials that experienced at least one injection.
    pub fn injected_trials(&self) -> usize {
        self.trials.iter().filter(|t| t.injection_count > 0).count()
    }

    /// Trials that had at least one memory injection applied.
    pub fn mem_injected_trials(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.mem_injection_count > 0)
            .count()
    }

    /// Per-region outcome distribution of a memory-fault campaign:
    /// each trial's outcome is attributed to every region it applied
    /// at least one memory fault in.
    pub fn mem_region_distribution(&self) -> BTreeMap<(crate::MemRegionKind, Outcome), usize> {
        let mut map = BTreeMap::new();
        for trial in &self.trials {
            let mut regions: Vec<crate::MemRegionKind> = trial
                .report
                .mem_injections
                .iter()
                .filter(|r| r.applied())
                .flat_map(|r| r.faults.iter().map(|f| f.region))
                .collect();
            regions.sort_unstable();
            regions.dedup();
            for region in regions {
                *map.entry((region, trial.outcome)).or_insert(0) += 1;
            }
        }
        map
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign {} ({} trials, {} reg-injected, {} mem-injected)",
            self.scenario_name,
            self.trials.len(),
            self.injected_trials(),
            self.mem_injected_trials()
        )?;
        for (outcome, count) in self.distribution() {
            writeln!(
                f,
                "  {outcome:>20}: {count:4} ({:5.1}%)",
                100.0 * self.fraction(outcome)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_campaign_is_all_correct() {
        let campaign = Campaign::new(Scenario::golden(1500), 2, 1);
        let result = campaign.run();
        assert_eq!(result.trials.len(), 2);
        for trial in &result.trials {
            assert_eq!(trial.outcome, Outcome::Correct);
            assert_eq!(trial.injection_count, 0);
        }
        assert_eq!(result.fraction(Outcome::Correct), 1.0);
    }

    #[test]
    fn e1_trials_always_reject_cleanly() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 100);
        let result = campaign.run();
        for trial in &result.trials {
            assert_eq!(
                trial.outcome,
                Outcome::InvalidArguments,
                "seed {}: {}",
                trial.seed,
                trial.report
            );
            assert!(trial.injection_count >= 1, "injection did not fire");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 7);
        let seq = campaign.run();
        let par = campaign.run_parallel(4);
        let seq_outcomes: Vec<Outcome> = seq.trials.iter().map(|t| t.outcome).collect();
        let par_outcomes: Vec<Outcome> = par.trials.iter().map(|t| t.outcome).collect();
        assert_eq!(seq_outcomes, par_outcomes);
    }

    #[test]
    fn distribution_sums_to_trials() {
        let campaign = Campaign::new(Scenario::golden(800), 3, 3);
        let result = campaign.run();
        let total: usize = result.distribution().values().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn e6_campaign_applies_memory_faults_across_regions() {
        let campaign = Campaign::new(
            Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
            6,
            0xE6,
        );
        let result = campaign.run_parallel(4);
        assert!(result.mem_injected_trials() > 0, "no trial applied faults");
        assert_eq!(result.injected_trials(), 0, "no register injector in E6");
        let by_region = result.mem_region_distribution();
        assert!(!by_region.is_empty());
        let attributed: usize = by_region.values().sum();
        assert!(attributed >= result.mem_injected_trials());
    }

    #[test]
    fn mixed_campaign_runs_both_injectors() {
        let campaign = Campaign::new(Scenario::e7_mixed(), 4, 0xE7);
        let result = campaign.run();
        assert!(result.injected_trials() > 0, "register injector silent");
        assert!(result.mem_injected_trials() > 0, "memory injector silent");
    }

    #[test]
    fn mixed_parallel_equals_sequential() {
        let campaign = Campaign::new(Scenario::e7_mixed(), 4, 21);
        assert_eq!(campaign.run(), campaign.run_parallel(4));
    }
}

//! Campaigns: seeded batches of independent trials.
//!
//! A *scenario* fixes the workload (management script), the injection
//! specification and the test duration; a *campaign* runs many seeded
//! trials of one scenario and aggregates the outcome distribution —
//! the data behind Figure 3. Trials are independent systems, so they
//! can run on parallel threads (cf. the "No PAIN, no gain?" parallel
//! fault injection study the paper cites [10]) — and because the
//! campaign's value is the aggregate, results *stream*: the engine
//! delivers each [`TrialResult`] to a [`TrialSink`] in seed order and
//! folds it into [`CampaignStats`] online, holding at most `workers`
//! undelivered reports however large the campaign
//! ([`Campaign::run_parallel_streamed`]). The buffered
//! [`Campaign::run`]/[`Campaign::run_parallel`] are thin collecting
//! sinks over the same engine.

use crate::certificate::ScenarioCertificate;
use crate::classify::{classify, Outcome, RunReport};
use crate::json::Json;
use crate::memfault::{MemFaultModel, MemTarget};
use crate::sink::{CollectSink, TrialSink};
use crate::spec::{InjectionSpec, MemorySpec};
use crate::stats::CampaignStats;
use crate::system::System;
use crate::telemetry::{outcome_rows, EngineTelemetry};
use crate::trace::{trace_event_to_json, TraceConfig, TraceDump};
use certify_guest_linux::MgmtScript;
use certify_obs::trace::{TraceEvent, TraceKind, TraceLog, NO_CPU};
use certify_obs::{Clock, EngineMetrics, PhaseSample, ProgressTracker};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Seed offset decorrelating a trial's memory-injection RNG from its
/// register-injection RNG (both are derived from the same trial seed).
const MEM_SEED_OFFSET: u64 = 0x6d65_6d66; // "memf"

/// A fully specified experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The root-cell management script.
    pub script: MgmtScript,
    /// The register-injection specification; `None` = no register
    /// faults.
    pub spec: Option<InjectionSpec>,
    /// The memory-injection specification; `None` = no memory faults.
    /// Both specs may be set for mixed campaigns.
    pub mem_spec: Option<MemorySpec>,
    /// Simulator steps per trial (the paper's "each test lasts 1
    /// min" becomes a fixed step budget).
    pub steps: u64,
    /// Whether the RTOS workload includes the E5b safety-heartbeat
    /// task.
    pub rtos_heartbeat: bool,
}

impl Scenario {
    /// Golden (fault-free) bring-up scenario.
    pub fn golden(steps: u64) -> Scenario {
        Scenario {
            name: "golden".into(),
            script: MgmtScript::bring_up_and_run(steps),
            spec: None,
            mem_spec: None,
            steps,
            rtos_heartbeat: false,
        }
    }

    /// E1: high-intensity injection on the root-context handlers
    /// during hypervisor enable. The script issues 49 info polls
    /// before the enable, so the enable itself is the 50th
    /// hypercall — the injection cadence of the paper's high
    /// intensity lands exactly on it.
    pub fn e1_root_high() -> Scenario {
        Scenario {
            name: "e1-root-high".into(),
            script: MgmtScript::enable_attempt(49),
            spec: Some(InjectionSpec::e1_root_high()),
            mem_spec: None,
            steps: 400,
            rtos_heartbeat: false,
        }
    }

    /// E2: high-intensity injection filtered to CPU 1 while the root
    /// cell cycles the FreeRTOS cell lifecycle.
    pub fn e2_nonroot_high() -> Scenario {
        Scenario {
            name: "e2-nonroot-high".into(),
            script: MgmtScript::lifecycle_cycling(150),
            spec: Some(InjectionSpec::e2_nonroot_high()),
            mem_spec: None,
            steps: 8000,
            rtos_heartbeat: false,
        }
    }

    /// E2, boot-window aligned: the single injection lands exactly on
    /// the `CPU_BOOT` hypercall — the deterministic reproduction of
    /// the paper's inconsistent-state observation.
    pub fn e2_boot_window() -> Scenario {
        Scenario {
            name: "e2-boot-window".into(),
            script: MgmtScript::bring_up_and_run(1500),
            spec: Some(InjectionSpec::e2_boot_window()),
            mem_spec: None,
            steps: 2500,
            rtos_heartbeat: false,
        }
    }

    /// E3 (Figure 3): medium-intensity injection on the non-root
    /// cell's `arch_handle_trap` during steady-state operation.
    pub fn e3_fig3() -> Scenario {
        Scenario {
            name: "e3-fig3-medium".into(),
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: None,
            steps: 4500,
            rtos_heartbeat: false,
        }
    }

    /// E5a (extension): the Figure-3 campaign with the hardware
    /// watchdog armed — the root kernel feeds it from its heartbeat
    /// path, so *panic park* outcomes become detected events.
    pub fn e5a_watchdog() -> Scenario {
        Scenario {
            name: "e5a-watchdog".into(),
            script: MgmtScript::bring_up_with_watchdog(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: None,
            steps: 4500,
            rtos_heartbeat: false,
        }
    }

    /// E5b (extension): the boot-window E2 scenario with the cell
    /// heartbeat + root-side safety monitor — the silent
    /// *inconsistent state* becomes a detected alarm.
    pub fn e5b_monitor() -> Scenario {
        Scenario {
            name: "e5b-monitor".into(),
            script: MgmtScript::bring_up_with_monitor(3000, 128),
            spec: Some(InjectionSpec::e2_boot_window()),
            mem_spec: None,
            steps: 4000,
            rtos_heartbeat: true,
        }
    }

    /// E6 (extension): a memory-fault campaign firing `model` at
    /// addresses drawn from `target`, paced by the non-root cell's
    /// handler stream during steady-state operation.
    pub fn e6_memory(model: MemFaultModel, target: MemTarget) -> Scenario {
        let name = format!("e6-{}", model.name());
        Scenario {
            name,
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: None,
            mem_spec: Some(MemorySpec::e6_memory(model, target)),
            steps: 4500,
            // The heartbeat task gives the victim a memory-active
            // workload (periodic ivshmem posts through stage-2) —
            // without it, table corruption could never manifest.
            rtos_heartbeat: true,
        }
    }

    /// E7 (extension): a mixed campaign — the paper's E3 register
    /// injection *and* an E6-style memory injection run in the same
    /// trials. The memory window opens after E3's single register
    /// injection (trap call 100, ~step 3160) so both domains fire.
    pub fn e7_mixed() -> Scenario {
        Scenario {
            name: "e7-mixed".into(),
            script: MgmtScript::bring_up_and_run(u64::MAX / 2),
            spec: Some(InjectionSpec::e3_nonroot_trap_medium()),
            mem_spec: Some(
                MemorySpec::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6())
                    .with_rate(10)
                    .with_window(3300, 4500),
            ),
            steps: 4500,
            rtos_heartbeat: true,
        }
    }

    /// The fault-free twin of this scenario: same script, same step
    /// budget, same RTOS workload, both injection specs removed. Run
    /// at the same seed it is the golden baseline the
    /// `certify_analysis` golden-diff propagation analysis compares an
    /// anomalous trace against.
    pub fn fault_free(&self) -> Scenario {
        Scenario {
            name: format!("{}-fault-free", self.name),
            script: self.script.clone(),
            spec: None,
            mem_spec: None,
            steps: self.steps,
            rtos_heartbeat: self.rtos_heartbeat,
        }
    }

    /// Prepares this scenario for running many trials: the script and
    /// specs move behind `Arc`s once, so each trial clones pointers
    /// instead of deep-copying the script program and fault models
    /// (the campaign hot path).
    pub fn runner(&self) -> TrialRunner {
        TrialRunner {
            name: Arc::from(self.name.as_str()),
            script: Arc::new(self.script.clone()),
            spec: self.spec.clone().map(Arc::new),
            mem_spec: self.mem_spec.clone().map(Arc::new),
            steps: self.steps,
            rtos_heartbeat: self.rtos_heartbeat,
        }
    }

    /// Runs one seeded trial of this scenario. For many trials,
    /// build a [`Scenario::runner`] once and reuse it.
    pub fn run_trial(&self, seed: u64) -> TrialResult {
        self.runner().run_trial(seed)
    }
}

/// A [`Scenario`] prepared for repeated trials: immutable parts are
/// shared behind `Arc`s, so `run_trial` is allocation-light and
/// `Clone` hands workers a cheap handle.
#[derive(Debug, Clone)]
pub struct TrialRunner {
    name: Arc<str>,
    script: Arc<MgmtScript>,
    spec: Option<Arc<InjectionSpec>>,
    mem_spec: Option<Arc<MemorySpec>>,
    steps: u64,
    rtos_heartbeat: bool,
}

impl TrialRunner {
    /// Builds the seeded system for one trial: board + guests +
    /// installed injectors, not yet stepped.
    fn build_system(&self, seed: u64) -> System {
        let mut system = if self.rtos_heartbeat {
            System::new_with_heartbeat(Arc::clone(&self.script))
        } else {
            System::new(Arc::clone(&self.script))
        };
        if let Some(spec) = &self.spec {
            system.install_injector(Arc::clone(spec), seed);
        }
        if let Some(mem_spec) = &self.mem_spec {
            system.install_mem_injector(Arc::clone(mem_spec), seed.wrapping_add(MEM_SEED_OFFSET));
        }
        system
    }

    /// Assembles the trial result from a classified report.
    fn result(seed: u64, report: RunReport) -> TrialResult {
        TrialResult {
            seed,
            outcome: report.outcome,
            injection_count: report.injections.len(),
            mem_injection_count: report.mem_injections.iter().filter(|r| r.applied()).count(),
            report,
        }
    }

    /// The step at which an injection window first opens: the earliest
    /// window start across both specs (a spec with no windows is armed
    /// from step 0). Steps before it are the trial's steady-state
    /// phase; with no injector at all the whole run is steady state.
    fn injection_open_step(&self) -> u64 {
        let spec_open = |windows: &[crate::spec::InjectionWindow]| {
            windows.iter().map(|w| w.start).min().unwrap_or(0)
        };
        let reg = self.spec.as_ref().map(|s| spec_open(&s.windows));
        let mem = self.mem_spec.as_ref().map(|s| spec_open(&s.windows));
        match (reg, mem) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => self.steps,
        }
        .min(self.steps)
    }

    /// Runs one seeded trial.
    pub fn run_trial(&self, seed: u64) -> TrialResult {
        let mut system = self.build_system(seed);
        system.run(self.steps);
        Self::result(seed, classify(&system))
    }

    /// Runs one seeded trial with phase timing: the same steps and the
    /// same result as [`TrialRunner::run_trial`] (pinned by
    /// `tests/hotpath_equivalence.rs`), plus a [`PhaseSample`] of how
    /// long boot, steady state, the injection-armed phase and
    /// classification took on `clock`.
    ///
    /// The phase split leans on `System::run` being a plain
    /// incremental step loop: `run(a); run(b)` is `run(a + b)`, so
    /// timing the run in two slices cannot perturb the trial.
    pub fn run_trial_observed(&self, seed: u64, clock: &dyn Clock) -> (TrialResult, PhaseSample) {
        let t0 = clock.now_ns();
        let mut system = self.build_system(seed);
        let t1 = clock.now_ns();
        let split = self.injection_open_step();
        system.run(split);
        let t2 = clock.now_ns();
        system.run(self.steps - split);
        let t3 = clock.now_ns();
        let trial = Self::result(seed, classify(&system));
        let t4 = clock.now_ns();
        let sample = PhaseSample {
            boot_ns: t1.saturating_sub(t0),
            steady_ns: t2.saturating_sub(t1),
            injection_ns: t3.saturating_sub(t2),
            classify_ns: t4.saturating_sub(t3),
        };
        (trial, sample)
    }

    /// Runs one seeded trial with a flight recorder attached.
    ///
    /// `config: None` is exactly [`TrialRunner::run_trial`] — the same
    /// code path, no recorder anywhere in the stack (pinned by
    /// `tests/hotpath_equivalence.rs`). With a config, every component
    /// records causal events into one bounded ring, a final
    /// [`certify_obs::trace::TraceKind::ClassifyVerdict`] event stamps
    /// the outcome, and the ring is captured as a [`TraceDump`] —
    /// returned for *every* traced trial; the campaign's
    /// [`crate::DumpPolicy`] decides which dumps reach the sink.
    ///
    /// With `policy.on_panic` set, a panic inside the trial prints the
    /// ring as JSON to stderr before the unwind resumes — the trial
    /// that kills a worker process explains itself on the way down.
    pub fn run_trial_traced(
        &self,
        seed: u64,
        config: Option<&TraceConfig>,
    ) -> (TrialResult, Option<TraceDump>) {
        let Some(config) = config else {
            return (self.run_trial(seed), None);
        };
        let log = TraceLog::new(config.capacity);
        let mut system = self.build_system(seed);
        system.set_tracer(log.clone());
        let steps = self.steps;
        let run = |system: &mut System| {
            system.run(steps);
            classify(system)
        };
        let report = if config.policy.on_panic {
            match catch_unwind(AssertUnwindSafe(|| run(&mut system))) {
                Ok(report) => report,
                Err(payload) => {
                    let events = log.snapshot();
                    let doc = Json::obj([
                        ("seed", Json::U64(seed)),
                        ("scenario", Json::str(self.name.to_string())),
                        ("panicked", Json::Bool(true)),
                        ("total", Json::U64(log.total())),
                        ("dropped", Json::U64(log.dropped())),
                        (
                            "events",
                            Json::Arr(events.iter().map(trace_event_to_json).collect()),
                        ),
                    ]);
                    eprintln!("{}", doc.render());
                    resume_unwind(payload);
                }
            }
        } else {
            run(&mut system)
        };
        log.record(TraceEvent {
            step: system.machine.now(),
            cpu: NO_CPU,
            kind: TraceKind::ClassifyVerdict,
            arg_a: Outcome::ALL
                .iter()
                .position(|o| *o == report.outcome)
                .unwrap_or(0) as u64,
            arg_b: 0,
        });
        let dump = TraceDump::capture(&log, seed, &self.name, report.outcome);
        (Self::result(seed, report), Some(dump))
    }
}

/// One trial's result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialResult {
    /// The trial's RNG seed.
    pub seed: u64,
    /// The classified outcome.
    pub outcome: Outcome,
    /// Number of register injections that fired.
    pub injection_count: usize,
    /// Number of memory injections that were applied.
    pub mem_injection_count: usize,
    /// The full classified report.
    pub report: RunReport,
}

impl TrialResult {
    /// The trial as a JSON value (via [`crate::json`]): seed, outcome,
    /// injection counts and the full [`RunReport::to_json`] report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::U64(self.seed)),
            ("outcome", Json::str(self.outcome.to_string())),
            ("injection_count", Json::U64(self.injection_count as u64)),
            (
                "mem_injection_count",
                Json::U64(self.mem_injection_count as u64),
            ),
            ("report", self.report.to_json()),
        ])
    }
}

/// A campaign: `trials` seeded runs of one scenario.
#[derive(Debug, Clone)]
pub struct Campaign {
    scenario: Scenario,
    trials: usize,
    base_seed: u64,
    certificate: Option<Arc<ScenarioCertificate>>,
    trace: Option<TraceConfig>,
}

impl Campaign {
    /// Creates a campaign of `trials` runs seeded `base_seed + i`.
    pub fn new(scenario: Scenario, trials: usize, base_seed: u64) -> Campaign {
        Campaign {
            scenario,
            trials,
            base_seed,
            certificate: None,
            trace: None,
        }
    }

    /// Attaches a pre-flight certificate (builder style). Debug builds
    /// then assert every trial of [`Campaign::run_range_streamed`]
    /// against it — predicted outcomes, injection budgets and tracked
    /// regions — turning a certificate/engine disagreement into an
    /// immediate panic instead of a silent mis-prediction.
    pub fn with_certificate(mut self, certificate: Arc<ScenarioCertificate>) -> Campaign {
        self.certificate = Some(certificate);
        self
    }

    /// The attached pre-flight certificate, if any.
    pub fn certificate(&self) -> Option<&Arc<ScenarioCertificate>> {
        self.certificate.as_ref()
    }

    /// Attaches a tracing configuration (builder style): every trial
    /// runs with a flight recorder, and trials matching the config's
    /// [`crate::DumpPolicy`] deliver a [`TraceDump`] to the sink via
    /// [`TrialSink::accept_dump`] right after their
    /// [`TrialSink::accept`].
    ///
    /// Tracing never changes trial results, sink rows or stats — the
    /// observability law, pinned by `tests/hotpath_equivalence.rs` and
    /// `tests/determinism.rs`. On observed runs
    /// ([`Campaign::run_parallel_streamed_observed`]) tracing takes
    /// precedence over per-trial phase sampling: traced trials record
    /// causal events instead of phase timings.
    pub fn with_trace(mut self, config: TraceConfig) -> Campaign {
        self.trace = Some(config);
        self
    }

    /// The attached tracing configuration, if any.
    pub fn trace(&self) -> Option<&TraceConfig> {
        self.trace.as_ref()
    }

    /// Whether `trial`'s dump should reach the sink: its outcome is in
    /// the policy's set, or it violates the attached certificate and
    /// the policy dumps on conformance violations.
    fn should_dump(&self, trial: &TrialResult) -> bool {
        let Some(config) = &self.trace else {
            return false;
        };
        if config.policy.wants(trial.outcome) {
            return true;
        }
        if config.policy.on_conformance_violation {
            if let Some(certificate) = &self.certificate {
                return !certificate.check_trial(trial).is_empty();
            }
        }
        false
    }

    /// The scenario under test.
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Total number of trials in this campaign.
    pub fn trials(&self) -> usize {
        self.trials
    }

    /// The base seed: trial `i` runs with seed `base_seed + i`.
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Runs all trials sequentially, buffering every report.
    /// A thin [`CollectSink`] over [`Campaign::run_streamed`].
    pub fn run(&self) -> CampaignResult {
        let mut sink = CollectSink::new();
        self.run_streamed(&mut sink);
        CampaignResult {
            scenario_name: self.scenario.name.clone(),
            trials: sink.into_trials(),
        }
    }

    /// Runs all trials across `workers` threads, buffering every
    /// report. A thin [`CollectSink`] over
    /// [`Campaign::run_parallel_streamed`]; the returned trials are in
    /// seed order and bit-identical to a sequential [`Campaign::run`],
    /// whatever the worker count or OS scheduling.
    pub fn run_parallel(&self, workers: usize) -> CampaignResult {
        let mut sink = CollectSink::new();
        self.run_parallel_streamed(workers, &mut sink);
        CampaignResult {
            scenario_name: self.scenario.name.clone(),
            trials: sink.into_trials(),
        }
    }

    /// Runs all trials sequentially, delivering each report to `sink`
    /// as it completes (seed order, one resident report) and folding
    /// it into the returned [`CampaignStats`].
    pub fn run_streamed<S: TrialSink + ?Sized>(&self, sink: &mut S) -> CampaignStats {
        self.run_range_streamed(0, self.trials, sink)
    }

    /// Runs the `len` trials starting at trial index `start_trial`
    /// sequentially, delivering each report to `sink` under its
    /// *global* sequence number and folding it into the returned
    /// [`CampaignStats`].
    ///
    /// Trial `i` of a campaign is self-contained — seeded
    /// `base_seed + i`, independent of every other trial — so any
    /// sub-range runs exactly the trials the full campaign would:
    /// concatenating the deliveries of a partition of `0..trials`
    /// reproduces [`Campaign::run_streamed`] bit for bit, and merging
    /// the per-range stats (in any order) with [`CampaignStats::merge`]
    /// reproduces the full-run stats. This is the shard execution
    /// primitive: a `certify-shard` worker runs one range and streams
    /// the rows back.
    ///
    /// # Panics
    ///
    /// Panics if `start_trial + len` overflows or exceeds the
    /// campaign's trial count.
    pub fn run_range_streamed<S: TrialSink + ?Sized>(
        &self,
        start_trial: usize,
        len: usize,
        sink: &mut S,
    ) -> CampaignStats {
        let end = start_trial.checked_add(len).expect("trial range overflows");
        assert!(
            end <= self.trials,
            "trial range [{start_trial}, {end}) exceeds campaign size {}",
            self.trials
        );
        let runner = self.scenario.runner();
        let mut stats = CampaignStats::new(self.scenario.name.clone());
        #[cfg(debug_assertions)]
        let prediction = self
            .scenario
            .mem_spec
            .as_ref()
            .map(MemorySpec::skip_prediction);
        for seq in start_trial..end {
            let (trial, dump) =
                runner.run_trial_traced(self.base_seed + seq as u64, self.trace.as_ref());
            #[cfg(debug_assertions)]
            assert_skips_predicted(prediction.as_ref(), &trial);
            #[cfg(debug_assertions)]
            assert_certificate_conformance(self.certificate.as_deref(), &trial);
            stats.record(&trial);
            let kept = dump.filter(|_| self.should_dump(&trial));
            sink.accept(seq, trial);
            if let Some(dump) = kept {
                sink.accept_dump(seq, dump);
            }
        }
        stats
    }

    /// Runs all trials across `workers` threads, delivering reports to
    /// `sink` in seed order as they complete and folding them into the
    /// returned [`CampaignStats`].
    ///
    /// Workers claim trial indices in order from a shared queue, but a
    /// worker may only *start* trial `i` once `i < delivered + workers`
    /// — a delivery window that, combined with the reorder buffer the
    /// consumer drains in seed order, bounds the campaign's resident
    /// state: at most `workers` completed-but-undelivered
    /// [`TrialResult`]s exist at any time, however many trials the
    /// campaign has. Every trial is seeded `base_seed + i` exactly as
    /// in [`Campaign::run`], so sink deliveries and stats are
    /// bit-identical to a sequential run.
    pub fn run_parallel_streamed<S: TrialSink + ?Sized>(
        &self,
        workers: usize,
        sink: &mut S,
    ) -> CampaignStats {
        self.run_parallel_streamed_engine(workers, sink, None).0
    }

    /// [`Campaign::run_parallel_streamed`] plus engine telemetry: the
    /// second element is the high-water mark of
    /// completed-but-undelivered [`TrialResult`]s, guaranteed to be at
    /// most `workers` (clamped to the trial count).
    pub fn run_parallel_streamed_instrumented<S: TrialSink + ?Sized>(
        &self,
        workers: usize,
        sink: &mut S,
    ) -> (CampaignStats, usize) {
        self.run_parallel_streamed_engine(workers, sink, None)
    }

    /// [`Campaign::run_parallel_streamed`] with full observability:
    /// per-trial phase timings fold into `telemetry.metrics` and the
    /// consumer emits a progress snapshot to `telemetry.progress`
    /// every `progress_every` deliveries (plus a final one).
    ///
    /// Telemetry is write-only for the engine — sink deliveries and
    /// the returned [`CampaignStats`] are bit-identical to an
    /// unobserved run of the same seeds, whatever clock is plugged in.
    pub fn run_parallel_streamed_observed<S: TrialSink + ?Sized>(
        &self,
        workers: usize,
        sink: &mut S,
        telemetry: &mut EngineTelemetry<'_>,
    ) -> CampaignStats {
        self.run_parallel_streamed_engine(workers, sink, Some(telemetry))
            .0
    }

    /// The streamed parallel engine behind all three public runners;
    /// `telemetry: None` compiles the observability paths down to
    /// no-ops.
    fn run_parallel_streamed_engine<S: TrialSink + ?Sized>(
        &self,
        workers: usize,
        sink: &mut S,
        mut telemetry: Option<&mut EngineTelemetry<'_>>,
    ) -> (CampaignStats, usize) {
        // Copy the clock reference out (it is `&'a dyn Clock`, Copy)
        // so workers can read it without borrowing the bundle the
        // consumer mutates.
        let clock = telemetry.as_ref().map(|t| t.clock);
        let folded = Mutex::new(EngineMetrics::default());
        let workers = workers.max(1).min(self.trials.max(1));
        let runner = self.scenario.runner();
        let trials = self.trials;
        let base_seed = self.base_seed;
        let trace = self.trace.as_ref();
        let mut stats = CampaignStats::new(self.scenario.name.clone());

        let shared = Mutex::new(Reorder {
            next: 0,
            delivered: 0,
            buffer: BTreeMap::new(),
            undelivered: 0,
            high_water: 0,
            aborted: false,
        });
        // Consumer waits on `ready` for the next in-order report;
        // workers wait on `space` for the delivery window to open.
        let ready = Condvar::new();
        let space = Condvar::new();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let (runner, shared, ready, space, folded) =
                    (&runner, &shared, &ready, &space, &folded);
                scope.spawn(move || {
                    // On panic (poisoned lock or unwind mid-trial),
                    // wake everyone so the scope can tear down instead
                    // of deadlocking.
                    let _guard = AbortGuard {
                        shared,
                        ready,
                        space,
                    };
                    // Observed runs fold phase timings thread-locally
                    // and merge once at exit — no locking on the trial
                    // hot path.
                    let mut local = clock.map(|_| EngineMetrics::default());
                    loop {
                        let seq = {
                            let mut state = shared.lock().expect("campaign engine lock");
                            if state.aborted || state.next >= trials {
                                break;
                            }
                            let seq = state.next;
                            state.next += 1;
                            // Delivery window: starting this trial must
                            // not be able to push the undelivered count
                            // past `workers`.
                            while !state.aborted && seq >= state.delivered + workers {
                                state = space.wait(state).expect("campaign engine lock");
                            }
                            if state.aborted {
                                break;
                            }
                            seq
                        };
                        // Traced trials record causal events instead
                        // of phase timings (tracing wins when both are
                        // configured; results are identical either
                        // way).
                        let (trial, dump) = if trace.is_some() {
                            runner.run_trial_traced(base_seed + seq as u64, trace)
                        } else {
                            let trial = match (clock, local.as_mut()) {
                                (Some(clock), Some(local)) => {
                                    let (trial, sample) =
                                        runner.run_trial_observed(base_seed + seq as u64, clock);
                                    local.trials.inc();
                                    local.phases.record(&sample);
                                    trial
                                }
                                _ => runner.run_trial(base_seed + seq as u64),
                            };
                            (trial, None)
                        };
                        let mut state = shared.lock().expect("campaign engine lock");
                        state.undelivered += 1;
                        state.high_water = state.high_water.max(state.undelivered);
                        state.buffer.insert(seq, (trial, dump));
                        drop(state);
                        ready.notify_all();
                    }
                    if let Some(local) = local {
                        folded
                            .lock()
                            .expect("campaign telemetry lock")
                            .merge(&local);
                    }
                });
            }

            // The caller's thread is the consumer: drain the reorder
            // buffer in seed order, fold, deliver, open the window.
            let _guard = AbortGuard {
                shared: &shared,
                ready: &ready,
                space: &space,
            };
            let tracker = clock.map(|clock| ProgressTracker::new(clock, None, trials as u64));
            for seq in 0..trials {
                let (trial, dump) = {
                    let mut state = shared.lock().expect("campaign engine lock");
                    loop {
                        if let Some(trial) = state.buffer.remove(&seq) {
                            break trial;
                        }
                        assert!(!state.aborted, "campaign worker panicked");
                        state = ready.wait(state).expect("campaign engine lock");
                    }
                };
                stats.record(&trial);
                let kept = dump.filter(|_| self.should_dump(&trial));
                sink.accept(seq, trial);
                if let Some(dump) = kept {
                    sink.accept_dump(seq, dump);
                }
                let mut state = shared.lock().expect("campaign engine lock");
                state.undelivered -= 1;
                state.delivered += 1;
                drop(state);
                space.notify_all();
                if let (Some(telemetry), Some(tracker)) = (telemetry.as_deref_mut(), &tracker) {
                    let done = seq + 1;
                    let due = telemetry.progress_every > 0 && done % telemetry.progress_every == 0;
                    if due || done == trials {
                        let snapshot =
                            tracker.snapshot(done as u64, outcome_rows(&stats.distribution));
                        telemetry.progress.on_progress(&snapshot);
                    }
                }
            }
        });

        let high_water = shared
            .into_inner()
            .expect("campaign engine lock")
            .high_water;
        if let Some(telemetry) = telemetry {
            telemetry
                .metrics
                .merge(&folded.into_inner().expect("campaign telemetry lock"));
            telemetry.metrics.reorder_residency.set(high_water as u64);
            telemetry.metrics.sink_rows.add(trials as u64);
            if let Some(bytes) = sink.bytes_written() {
                telemetry.metrics.sink_bytes.add(bytes);
            }
        }
        (stats, high_water)
    }
}

/// Debug-build cross-check of the static skip analysis: every skipped
/// memory injection recorded by a trial must have been predicted as
/// *possible* by [`crate::memfault::SkipPrediction`] — if the linter
/// says a spec cannot skip, the engine holds it to that.
#[cfg(debug_assertions)]
fn assert_skips_predicted(
    prediction: Option<&crate::memfault::SkipPrediction>,
    trial: &TrialResult,
) {
    for record in &trial.report.mem_injections {
        let Some(reason) = &record.skipped else {
            continue;
        };
        let prediction = prediction.expect("a skip was recorded without a memory spec");
        assert!(
            prediction.predicts(reason),
            "trial {} skipped an injection ({reason}) the static analysis ruled out",
            trial.seed
        );
    }
}

/// Debug-build certificate conformance: every trial of a campaign
/// with an attached [`ScenarioCertificate`] must land inside its
/// predicted outcome set, injection budgets and tracked regions.
#[cfg(debug_assertions)]
fn assert_certificate_conformance(certificate: Option<&ScenarioCertificate>, trial: &TrialResult) {
    let Some(certificate) = certificate else {
        return;
    };
    let violations = certificate.check_trial(trial);
    assert!(
        violations.is_empty(),
        "trial {} violates the scenario certificate: {}",
        trial.seed,
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("; ")
    );
}

/// Shared state of the streamed parallel engine: an in-order index
/// queue plus the reorder buffer the consumer drains in seed order.
struct Reorder {
    /// Next trial index to hand to a worker.
    next: usize,
    /// Trials already delivered to the sink.
    delivered: usize,
    /// Completed trials (with their optional trace dump) waiting for
    /// their turn at the sink.
    buffer: BTreeMap<usize, (TrialResult, Option<TraceDump>)>,
    /// Completed-but-undelivered reports (buffer plus the one the
    /// consumer is currently handing to the sink).
    undelivered: usize,
    /// High-water mark of `undelivered`.
    high_water: usize,
    /// A thread panicked; everyone should stop.
    aborted: bool,
}

/// Wakes all engine threads if the owning thread unwinds, so a panic
/// in a trial or in the sink tears the scope down instead of leaving
/// the other side blocked on a condvar forever.
struct AbortGuard<'a> {
    shared: &'a Mutex<Reorder>,
    ready: &'a Condvar,
    space: &'a Condvar,
}

impl Drop for AbortGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            if let Ok(mut state) = self.shared.lock() {
                state.aborted = true;
            }
            self.ready.notify_all();
            self.space.notify_all();
        }
    }
}

/// Aggregated campaign outcomes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The scenario that was run.
    pub scenario_name: String,
    /// All trial results, in seed order.
    pub trials: Vec<TrialResult>,
}

impl CampaignResult {
    /// Folds the buffered trials into the same [`CampaignStats`] a
    /// streamed run of identical seeds returns.
    pub fn stats(&self) -> CampaignStats {
        let mut stats = CampaignStats::new(self.scenario_name.clone());
        for trial in &self.trials {
            stats.record(trial);
        }
        stats
    }

    /// Outcome histogram.
    pub fn distribution(&self) -> BTreeMap<Outcome, usize> {
        let mut map = BTreeMap::new();
        for trial in &self.trials {
            *map.entry(trial.outcome).or_insert(0) += 1;
        }
        map
    }

    /// Fraction of trials with the given outcome. For several
    /// fractions at once, fold [`CampaignResult::stats`] (or
    /// [`CampaignResult::distribution`]) once and derive them from the
    /// histogram instead of re-scanning the trials per outcome.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        let count = self.trials.iter().filter(|t| t.outcome == outcome).count();
        count as f64 / self.trials.len() as f64
    }

    /// Trials that experienced at least one injection.
    pub fn injected_trials(&self) -> usize {
        self.trials.iter().filter(|t| t.injection_count > 0).count()
    }

    /// Trials that had at least one memory injection applied.
    pub fn mem_injected_trials(&self) -> usize {
        self.trials
            .iter()
            .filter(|t| t.mem_injection_count > 0)
            .count()
    }

    /// Per-region outcome distribution of a memory-fault campaign:
    /// each trial's outcome is attributed to every region it applied
    /// at least one memory fault in. (A targeted pass; for several
    /// aggregates at once, fold [`CampaignResult::stats`] instead.)
    pub fn mem_region_distribution(&self) -> BTreeMap<(crate::MemRegionKind, Outcome), usize> {
        let mut map = BTreeMap::new();
        for trial in &self.trials {
            CampaignStats::attribute_regions(trial, &mut map);
        }
        map
    }

    /// The buffered campaign as a JSON value: the scenario name and
    /// every trial through [`TrialResult::to_json`], in seed order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("scenario", Json::str(self.scenario_name.clone())),
            (
                "trials",
                Json::Arr(self.trials.iter().map(TrialResult::to_json).collect()),
            ),
        ])
    }
}

impl fmt::Display for CampaignResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // One fold over the trials; fractions derive from the
        // histogram (the old per-outcome `fraction` calls re-scanned
        // every trial once per outcome).
        self.stats().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_campaign_is_all_correct() {
        let campaign = Campaign::new(Scenario::golden(1500), 2, 1);
        let result = campaign.run();
        assert_eq!(result.trials.len(), 2);
        for trial in &result.trials {
            assert_eq!(trial.outcome, Outcome::Correct);
            assert_eq!(trial.injection_count, 0);
        }
        assert_eq!(result.fraction(Outcome::Correct), 1.0);
    }

    #[test]
    fn e1_trials_always_reject_cleanly() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 100);
        let result = campaign.run();
        for trial in &result.trials {
            assert_eq!(
                trial.outcome,
                Outcome::InvalidArguments,
                "seed {}: {}",
                trial.seed,
                trial.report
            );
            assert!(trial.injection_count >= 1, "injection did not fire");
        }
    }

    #[test]
    fn parallel_equals_sequential() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 7);
        let seq = campaign.run();
        let par = campaign.run_parallel(4);
        let seq_outcomes: Vec<Outcome> = seq.trials.iter().map(|t| t.outcome).collect();
        let par_outcomes: Vec<Outcome> = par.trials.iter().map(|t| t.outcome).collect();
        assert_eq!(seq_outcomes, par_outcomes);
    }

    #[test]
    fn distribution_sums_to_trials() {
        let campaign = Campaign::new(Scenario::golden(800), 3, 3);
        let result = campaign.run();
        let total: usize = result.distribution().values().sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn e6_campaign_applies_memory_faults_across_regions() {
        let campaign = Campaign::new(
            Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
            6,
            0xE6,
        );
        let result = campaign.run_parallel(4);
        assert!(result.mem_injected_trials() > 0, "no trial applied faults");
        assert_eq!(result.injected_trials(), 0, "no register injector in E6");
        let by_region = result.mem_region_distribution();
        assert!(!by_region.is_empty());
        let attributed: usize = by_region.values().sum();
        assert!(attributed >= result.mem_injected_trials());
    }

    #[test]
    fn mixed_campaign_runs_both_injectors() {
        let campaign = Campaign::new(Scenario::e7_mixed(), 4, 0xE7);
        let result = campaign.run();
        assert!(result.injected_trials() > 0, "register injector silent");
        assert!(result.mem_injected_trials() > 0, "memory injector silent");
    }

    #[test]
    fn range_runs_concatenate_to_the_full_run() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 5, 30);
        let mut full = Vec::new();
        let full_stats = campaign.run_streamed(&mut |seq: usize, t: TrialResult| {
            full.push((seq, t));
        });
        let mut pieces = Vec::new();
        let mut merged = CampaignStats::new(campaign.scenario().name.clone());
        for (start, len) in [(0, 2), (2, 2), (4, 1)] {
            let stats =
                campaign.run_range_streamed(start, len, &mut |seq: usize, t: TrialResult| {
                    pieces.push((seq, t));
                });
            merged.merge(&stats);
        }
        assert_eq!(pieces, full, "concatenated ranges diverged");
        assert_eq!(merged, full_stats, "merged range stats diverged");
    }

    #[test]
    #[should_panic(expected = "exceeds campaign size")]
    fn out_of_bounds_range_is_rejected() {
        let campaign = Campaign::new(Scenario::golden(400), 3, 1);
        campaign.run_range_streamed(2, 2, &mut crate::sink::NullSink);
    }

    #[test]
    fn predicted_skips_pass_the_debug_assertion() {
        // A hole-region target guarantees OutOfRange skips; the
        // prediction marks them possible, so the run's debug
        // assertion accepts every one of them.
        let scenario = Scenario::e6_memory(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(crate::MemRegionKind::Custom {
                base: 0x1000_0000,
                size: 0x1000,
            }),
        );
        let stats = Campaign::new(scenario, 2, 5).run_streamed(&mut crate::sink::NullSink);
        assert_eq!(stats.trials, 2);
        assert_eq!(stats.mem_injected_trials, 0, "every injection skipped");
    }

    #[test]
    fn mixed_parallel_equals_sequential() {
        let campaign = Campaign::new(Scenario::e7_mixed(), 4, 21);
        assert_eq!(campaign.run(), campaign.run_parallel(4));
    }
}

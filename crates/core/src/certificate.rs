//! Scenario certificates and runtime conformance checking.
//!
//! A [`ScenarioCertificate`] is the *output* of the pre-flight
//! abstract interpreter in `certify_lint::interp`: a sound
//! over-approximation of what a scenario's trials can do — which
//! [`Outcome`]s are reachable, how many injections each injector can
//! spend, and which memory regions applied faults may land in. The
//! types live here (not in the lint crate) because the runtime side
//! consumes them: [`crate::Campaign::run_range_streamed`] debug-asserts
//! every trial against an attached certificate, the
//! [`ConformanceMonitor`] sink wrapper enforces it in release builds,
//! and the shard handshake pins its [`ScenarioCertificate::fingerprint`]
//! so coordinator and workers provably certified the same scenario.
//!
//! The soundness contract is one-directional: the certificate's
//! predictions are supersets of runtime behaviour (predicted outcomes
//! ⊇ observed outcomes, certified budgets ≥ observed counts, tracked
//! regions ⊇ hit regions). A violation therefore always means the
//! *certificate* and the *engine* disagree about the scenario's
//! semantics — a bug, never noise — which is what makes it safe to
//! enforce with assertions.

use crate::campaign::TrialResult;
use crate::classify::Outcome;
use crate::codec::encode_to_vec;
use crate::memfault::MemRegionKind;
use crate::sink::TrialSink;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Per-phase bounds derived from one armed stretch of a run: either an
/// injection window, or the whole step horizon for an unwindowed spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PhaseBound {
    /// First step (inclusive) of the phase.
    pub start: u64,
    /// First step (exclusive) past the phase (clamped to the horizon).
    pub end: u64,
    /// Upper bound on filtered handler calls the phase can observe.
    pub max_handler_calls: u64,
    /// Upper bound on injections the phase can fire.
    pub max_injections: u64,
}

/// The pre-flight certificate for one scenario.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioCertificate {
    /// The certified scenario's name.
    pub scenario_name: String,
    /// Whether the script can reach a `CreateCell` — the derived
    /// topology contains the non-root cell (and its comm region and
    /// stage-2 table) only if it can.
    pub cell_reachable: bool,
    /// Steps the script consumes before going quiet, or `None` when it
    /// loops forever.
    pub script_steps: Option<u64>,
    /// Sound over-approximation of the reachable outcome set.
    pub outcomes: BTreeSet<Outcome>,
    /// Register-injection budget (`None` when the scenario has no
    /// register spec; an attached injector then implies zero budget).
    pub reg_budget: Option<u64>,
    /// Memory-injection budget (`None` when there is no memory spec).
    pub mem_budget: Option<u64>,
    /// Regions an applied memory fault may record.
    pub tracked_regions: BTreeSet<MemRegionKind>,
    /// Per-phase call/injection bounds for the register injector.
    pub reg_phases: Vec<PhaseBound>,
    /// Per-phase call/injection bounds for the memory injector.
    pub mem_phases: Vec<PhaseBound>,
}

impl ScenarioCertificate {
    /// FNV-1a-64 over the certificate's wire encoding — the value the
    /// shard handshake carries so a worker can prove it re-derived the
    /// same certificate the coordinator dispatched.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in encode_to_vec(self) {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    /// Checks one finished trial against the certificate, returning
    /// every conformance violation found (empty = conformant).
    pub fn check_trial(&self, trial: &TrialResult) -> Vec<ConformanceViolation> {
        let mut violations = Vec::new();
        if !self.outcomes.contains(&trial.outcome) {
            violations.push(ConformanceViolation::UnpredictedOutcome {
                seed: trial.seed,
                outcome: trial.outcome,
            });
        }
        let reg_budget = self.reg_budget.unwrap_or(0);
        if trial.injection_count as u64 > reg_budget {
            violations.push(ConformanceViolation::RegBudgetExceeded {
                seed: trial.seed,
                observed: trial.injection_count as u64,
                budget: reg_budget,
            });
        }
        let mem_budget = self.mem_budget.unwrap_or(0);
        if trial.mem_injection_count as u64 > mem_budget {
            violations.push(ConformanceViolation::MemBudgetExceeded {
                seed: trial.seed,
                observed: trial.mem_injection_count as u64,
                budget: mem_budget,
            });
        }
        for record in &trial.report.mem_injections {
            if !record.applied() {
                continue;
            }
            for fault in &record.faults {
                if !self.tracked_regions.contains(&fault.region) {
                    violations.push(ConformanceViolation::UntrackedRegion {
                        seed: trial.seed,
                        region: fault.region,
                    });
                }
            }
        }
        violations
    }
}

impl fmt::Display for ScenarioCertificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "certificate[{}]: outcomes {{", self.scenario_name)?;
        for (i, outcome) in self.outcomes.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{outcome}")?;
        }
        f.write_str("}")?;
        if let Some(budget) = self.reg_budget {
            write!(f, ", reg budget {budget}")?;
        }
        if let Some(budget) = self.mem_budget {
            write!(f, ", mem budget {budget}")?;
        }
        match self.script_steps {
            Some(steps) => write!(f, ", script {steps} steps"),
            None => f.write_str(", script loops"),
        }
    }
}

/// One way a trial disagreed with its scenario's certificate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConformanceViolation {
    /// The trial classified to an outcome outside the predicted set.
    UnpredictedOutcome {
        /// The trial's seed.
        seed: u64,
        /// The unpredicted outcome.
        outcome: Outcome,
    },
    /// More register injections fired than the certified budget.
    RegBudgetExceeded {
        /// The trial's seed.
        seed: u64,
        /// Observed injection count.
        observed: u64,
        /// The certified budget.
        budget: u64,
    },
    /// More memory injections applied than the certified budget.
    MemBudgetExceeded {
        /// The trial's seed.
        seed: u64,
        /// Observed applied-injection count.
        observed: u64,
        /// The certified budget.
        budget: u64,
    },
    /// An applied memory fault landed in a region the certificate does
    /// not track.
    UntrackedRegion {
        /// The trial's seed.
        seed: u64,
        /// The untracked region that was hit.
        region: MemRegionKind,
    },
}

impl fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformanceViolation::UnpredictedOutcome { seed, outcome } => {
                write!(f, "trial {seed}: outcome '{outcome}' not in predicted set")
            }
            ConformanceViolation::RegBudgetExceeded {
                seed,
                observed,
                budget,
            } => write!(
                f,
                "trial {seed}: {observed} register injection(s) exceed budget {budget}"
            ),
            ConformanceViolation::MemBudgetExceeded {
                seed,
                observed,
                budget,
            } => write!(
                f,
                "trial {seed}: {observed} memory injection(s) exceed budget {budget}"
            ),
            ConformanceViolation::UntrackedRegion { seed, region } => {
                write!(
                    f,
                    "trial {seed}: applied fault hit untracked region {region}"
                )
            }
        }
    }
}

/// Cap on violations a monitor stores verbatim; later ones are only
/// counted. A conformant campaign stores nothing, and a broken
/// certificate over millions of trials must not balloon memory.
const MAX_STORED_VIOLATIONS: usize = 128;

/// A [`TrialSink`] wrapper that checks every delivered trial against a
/// scenario certificate before forwarding it — the release-build
/// (shard-worker) enforcement of the conformance contract the
/// in-process engine debug-asserts.
#[derive(Debug)]
pub struct ConformanceMonitor<S> {
    certificate: Arc<ScenarioCertificate>,
    inner: S,
    violations: Vec<ConformanceViolation>,
    violations_total: u64,
}

impl<S> ConformanceMonitor<S> {
    /// Wraps `inner`, checking each trial against `certificate`.
    pub fn new(certificate: Arc<ScenarioCertificate>, inner: S) -> ConformanceMonitor<S> {
        ConformanceMonitor {
            certificate,
            inner,
            violations: Vec::new(),
            violations_total: 0,
        }
    }

    /// Violations recorded so far (capped; see
    /// [`ConformanceMonitor::violations_total`]).
    pub fn violations(&self) -> &[ConformanceViolation] {
        &self.violations
    }

    /// Total violations observed, including any past the storage cap.
    pub fn violations_total(&self) -> u64 {
        self.violations_total
    }

    /// Whether every checked trial conformed.
    pub fn is_conformant(&self) -> bool {
        self.violations_total == 0
    }

    /// The certificate being enforced.
    pub fn certificate(&self) -> &ScenarioCertificate {
        &self.certificate
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TrialSink> TrialSink for ConformanceMonitor<S> {
    fn accept(&mut self, seq: usize, trial: TrialResult) {
        let found = self.certificate.check_trial(&trial);
        self.violations_total += found.len() as u64;
        let room = MAX_STORED_VIOLATIONS.saturating_sub(self.violations.len());
        self.violations.extend(found.into_iter().take(room));
        self.inner.accept(seq, trial);
    }

    fn accept_dump(&mut self, seq: usize, dump: crate::trace::TraceDump) {
        self.inner.accept_dump(seq, dump);
    }

    fn bytes_written(&self) -> Option<u64> {
        self.inner.bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, Scenario};
    use crate::sink::CollectSink;

    fn permissive(name: &str) -> ScenarioCertificate {
        ScenarioCertificate {
            scenario_name: name.into(),
            cell_reachable: true,
            script_steps: Some(10_000),
            outcomes: Outcome::ALL.into_iter().collect(),
            reg_budget: Some(u64::MAX),
            mem_budget: Some(u64::MAX),
            tracked_regions: MemRegionKind::ALL.into_iter().collect(),
            reg_phases: Vec::new(),
            mem_phases: Vec::new(),
        }
    }

    fn sample_trial() -> TrialResult {
        let campaign = Campaign::new(Scenario::e3_fig3(), 1, 42);
        let mut sink = CollectSink::new();
        campaign.run_range_streamed(0, 1, &mut sink);
        sink.into_trials().into_iter().next().expect("one trial")
    }

    #[test]
    fn permissive_certificate_accepts_everything() {
        let trial = sample_trial();
        let cert = permissive("e3-fig3-medium");
        assert!(cert.check_trial(&trial).is_empty());
    }

    #[test]
    fn unpredicted_outcome_is_reported() {
        let trial = sample_trial();
        let mut cert = permissive("e3-fig3-medium");
        cert.outcomes.remove(&trial.outcome);
        let violations = cert.check_trial(&trial);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            ConformanceViolation::UnpredictedOutcome { .. }
        ));
        assert!(violations[0].to_string().contains("not in predicted set"));
    }

    #[test]
    fn exceeded_budgets_are_reported() {
        let trial = sample_trial();
        assert!(trial.injection_count > 0, "e3 trial should inject");
        let mut cert = permissive("e3-fig3-medium");
        cert.reg_budget = Some(0);
        cert.mem_budget = None; // no mem spec: zero tolerance, zero observed
        let violations = cert.check_trial(&trial);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            violations[0],
            ConformanceViolation::RegBudgetExceeded { budget: 0, .. }
        ));
    }

    #[test]
    fn untracked_region_is_reported() {
        use crate::memfault::{MemFaultModel, MemTarget};
        let scenario = Scenario::e6_memory(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::NonRootRam),
        );
        let campaign = Campaign::new(scenario, 1, 7);
        let mut sink = CollectSink::new();
        campaign.run_range_streamed(0, 1, &mut sink);
        let trials = sink.into_trials();
        let trial = &trials[0];
        assert!(trial.mem_injection_count > 0, "trial should apply faults");
        let mut cert = permissive("e6");
        cert.tracked_regions.remove(&MemRegionKind::NonRootRam);
        let violations = cert.check_trial(trial);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .all(|v| matches!(v, ConformanceViolation::UntrackedRegion { .. })));
    }

    #[test]
    fn monitor_forwards_trials_and_collects_violations() {
        let mut strict = permissive("e3-fig3-medium");
        strict.reg_budget = Some(0);
        let cert = Arc::new(strict);
        let mut monitor = ConformanceMonitor::new(Arc::clone(&cert), CollectSink::default());
        let trial = sample_trial();
        monitor.accept(0, trial.clone());
        assert!(!monitor.is_conformant());
        assert_eq!(monitor.violations_total(), 1);
        assert_eq!(monitor.violations().len(), 1);
        let inner = monitor.into_inner();
        assert_eq!(inner.into_trials().len(), 1, "trial still forwarded");

        let mut conformant = ConformanceMonitor::new(
            Arc::new(permissive("e3-fig3-medium")),
            CollectSink::default(),
        );
        conformant.accept(0, trial);
        assert!(conformant.is_conformant());
        assert!(conformant.violations().is_empty());
    }

    #[test]
    fn violation_storage_is_capped_but_counted() {
        let mut strict = permissive("e3-fig3-medium");
        strict.reg_budget = Some(0);
        let mut monitor = ConformanceMonitor::new(Arc::new(strict), crate::sink::NullSink);
        let trial = sample_trial();
        for seq in 0..(MAX_STORED_VIOLATIONS + 10) {
            monitor.accept(seq, trial.clone());
        }
        assert_eq!(monitor.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(
            monitor.violations_total(),
            (MAX_STORED_VIOLATIONS + 10) as u64
        );
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let a = permissive("x");
        let b = permissive("x");
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut c = permissive("x");
        c.reg_budget = Some(1);
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut d = permissive("x");
        d.outcomes.remove(&Outcome::Correct);
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn display_summarizes_the_certificate() {
        let cert = permissive("e1");
        let text = cert.to_string();
        assert!(text.contains("certificate[e1]"), "{text}");
        assert!(text.contains("correct"), "{text}");
        let mut looping = cert;
        looping.script_steps = None;
        assert!(looping.to_string().contains("script loops"));
    }
}

//! Outcome classification.
//!
//! The paper buckets test outcomes into the categories visible in §III
//! and Figure 3. The classifier reproduces them from the observation
//! channels a real test bench has — the serial log, the hypervisor's
//! reported cell state, and the CPU park state — plus the structured
//! event trace for explainability:
//!
//! * **Correct** — the system kept operating (cells alive, output
//!   flowing);
//! * **InvalidArguments** — a management operation was cleanly
//!   rejected and nothing was allocated (E1's fail-stop);
//! * **InconsistentState** — the hypervisor reports the non-root cell
//!   *running* but the cell never executed: blank USART, CPU parked or
//!   guest non-executable (E2);
//! * **PanicPark** — the fault propagated beyond the injected cell and
//!   the whole system died in a kernel (or hypervisor) panic;
//! * **CpuPark** — an unhandled trap (`0x24`) parked the affected CPU;
//!   the fault stayed isolated in the injected cell (E3's third bar).
//!
//! The memory-fault subsystem adds two classes the register campaigns
//! cannot produce:
//!
//! * **TranslationFaultStorm** — injected stage-2 descriptor
//!   corruption made the victim's own memory fault under it, and the
//!   hypervisor logged the resulting access-violation storm;
//! * **SilentDataCorruption** — memory faults were applied but every
//!   observation channel stayed green: the corruption is latent in
//!   RAM (or the published comm state), undetected.

use crate::injector::InjectionRecord;
use crate::json::Json;
use crate::memfault::MemLocus;
use crate::meminjector::MemInjectionRecord;
use crate::system::System;
use certify_arch::cpu::ParkReason;
use certify_arch::CpuId;
use certify_guest_linux::MgmtOp;
use certify_hypervisor::{CellState, Guest, GuestHealth};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome classes of the paper, plus the memory-fault extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Whole-system failure: the fault propagated (root kernel panic
    /// or hypervisor panic).
    PanicPark,
    /// The cell is reported running but never executed — blank USART
    /// (E2's dangerous state).
    InconsistentState,
    /// Injected stage-2 table corruption made the victim cell's own
    /// accesses fault: the hypervisor saw an access-violation storm.
    TranslationFaultStorm,
    /// The affected CPU was parked on an unhandled trap; the fault was
    /// isolated.
    CpuPark,
    /// A management operation was rejected with "invalid arguments";
    /// nothing was allocated.
    InvalidArguments,
    /// Memory faults were applied but nothing detected them: the
    /// corruption sits silently in RAM or the published cell state.
    SilentDataCorruption,
    /// Expected behaviour throughout.
    Correct,
}

impl Outcome {
    /// All outcomes, in classification precedence order.
    pub const ALL: [Outcome; 7] = [
        Outcome::PanicPark,
        Outcome::InconsistentState,
        Outcome::TranslationFaultStorm,
        Outcome::CpuPark,
        Outcome::InvalidArguments,
        Outcome::SilentDataCorruption,
        Outcome::Correct,
    ];
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Outcome::Correct => "correct",
            Outcome::InvalidArguments => "invalid arguments",
            Outcome::InconsistentState => "inconsistent state",
            Outcome::TranslationFaultStorm => "translation fault storm",
            Outcome::PanicPark => "panic park",
            Outcome::CpuPark => "cpu park",
            Outcome::SilentDataCorruption => "silent data corruption",
        };
        f.write_str(name)
    }
}

/// A classified run with its supporting evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// The classified outcome.
    pub outcome: Outcome,
    /// Register injections performed during the run.
    pub injections: Vec<InjectionRecord>,
    /// Memory-injection attempts (applied and skipped) during the run.
    pub mem_injections: Vec<MemInjectionRecord>,
    /// Human-readable evidence notes.
    pub notes: Vec<String>,
    /// Final state of the non-root cell, if it exists.
    pub cell_state: Option<CellState>,
    /// Final park reason of CPU 1, if parked.
    pub cpu1_park: Option<String>,
    /// Number of serial-log lines.
    pub serial_line_count: usize,
    /// First hardware-watchdog expiry, if the watchdog was armed and
    /// starved (extension E5a: panic detection instant).
    pub watchdog_first_expiry: Option<u64>,
    /// Alarms raised by the root-side heartbeat safety monitor
    /// (extension E5b: inconsistent-state detection).
    pub monitor_alarms: usize,
}

impl RunReport {
    /// The report as a JSON value (via [`crate::json`]) — the ROADMAP
    /// export surface. Mirrors the CSV columns: faults render through
    /// their `Display` impls, evidence fields keep their names, and
    /// absent observations are `null`.
    pub fn to_json(&self) -> Json {
        let faults = |records: &[String]| Json::Arr(records.iter().map(Json::str).collect());
        let injections: Vec<String> = self
            .injections
            .iter()
            .flat_map(|r| r.faults.iter().map(|f| f.to_string()))
            .collect();
        let mem_injections: Vec<String> = self
            .mem_injections
            .iter()
            .flat_map(|r| r.faults.iter().map(|f| f.to_string()))
            .collect();
        Json::obj([
            ("outcome", Json::str(self.outcome.to_string())),
            ("injections", faults(&injections)),
            ("mem_injections", faults(&mem_injections)),
            (
                "notes",
                Json::Arr(self.notes.iter().map(Json::str).collect()),
            ),
            (
                "cell_state",
                self.cell_state
                    .map(|s| Json::str(s.to_string()))
                    .unwrap_or(Json::Null),
            ),
            (
                "cpu1_park",
                self.cpu1_park
                    .as_deref()
                    .map(Json::str)
                    .unwrap_or(Json::Null),
            ),
            (
                "serial_line_count",
                Json::U64(self.serial_line_count as u64),
            ),
            (
                "watchdog_first_expiry",
                self.watchdog_first_expiry
                    .map(Json::U64)
                    .unwrap_or(Json::Null),
            ),
            ("monitor_alarms", Json::U64(self.monitor_alarms as u64)),
        ])
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "outcome: {}", self.outcome)?;
        for note in &self.notes {
            writeln!(f, "  - {note}")?;
        }
        Ok(())
    }
}

/// Classifies a finished run.
///
/// Runs once per campaign trial, so it reads O(1) evidence: the
/// hypervisor's online counters ([`certify_hypervisor::Evidence`])
/// replace the four event-trace scans the classifier used to make,
/// and the serial log is consulted through the UART's incremental
/// line index (borrowed bytes, no per-line allocation).
pub fn classify(system: &System) -> RunReport {
    let mut notes = Vec::new();
    let uart = &system.machine.uart;
    let serial_line_count = uart.line_count();
    let evidence = system.hv.evidence();

    let injections = system
        .injection_log()
        .map(|log| log.records())
        .unwrap_or_default();
    let mem_injections = system
        .mem_injection_log()
        .map(|log| log.records())
        .unwrap_or_default();

    let cell_state = system
        .rtos_cell()
        .and_then(|id| system.hv.cell(id))
        .map(|c| c.state());
    let cpu1_park = system
        .machine
        .cpu(CpuId(1))
        .park_reason()
        .map(|r| r.to_string());
    let watchdog_first_expiry = system.machine.wdt.first_expiry();
    let monitor_alarms = system.linux.monitor_alarms().len();

    // Memory-fault evidence shared by several attributions below —
    // single passes over the records, no intermediate collections
    // (this runs once per trial on the campaign hot path).
    //
    // Step of the first applied *live* stage-2 descriptor fault: only
    // access violations at or after it can be attributed to injected
    // table corruption.
    let first_table_fault_step = mem_injections
        .iter()
        .filter(|r| r.applied())
        .filter(|r| {
            r.faults
                .iter()
                .any(|f| f.locus == MemLocus::Stage2Descriptor && f.live)
        })
        .map(|r| r.step)
        .min();
    let mut live_mem_corruption = false;
    let mut latent_mem_corruption = false;
    let mut skipped_count = 0usize;
    let mut first_skip_reason: Option<&str> = None;
    for record in &mem_injections {
        if let Some(reason) = record.skipped.as_deref() {
            skipped_count += 1;
            first_skip_reason.get_or_insert(reason);
            continue;
        }
        for fault in &record.faults {
            live_mem_corruption |= fault.live;
            latent_mem_corruption |= !fault.live && fault.before != fault.after;
        }
    }
    if skipped_count > 0 {
        notes.push(format!(
            "{} memory injection(s) skipped (first: {})",
            skipped_count,
            first_skip_reason.unwrap_or_default()
        ));
    }

    // Published comm-region state vs the hypervisor's belief — the
    // channel a `jailhouse cell list` style tool would read.
    let comm_state = system
        .rtos_cell()
        .and_then(|id| system.hv.cell(id))
        .and_then(|cell| cell.comm_region())
        .map(|region| region.read_state(&system.machine));
    let comm_mismatch = match (comm_state, cell_state) {
        (Some(published), Some(actual)) => published != Some(actual),
        _ => false,
    };

    let outcome;

    // --- Panic park: whole-system failure ---------------------------
    let hyp_panic = system.hv.panicked().is_some();
    let linux_panic = system.linux.health() == GuestHealth::Panicked
        || uart
            .indexed_lines()
            .any(|l| l.contains("Kernel panic - not syncing"));
    let root_parked_on_trap = matches!(
        system.machine.cpu(CpuId(0)).park_reason(),
        Some(ParkReason::UnhandledTrap(_))
    );

    // --- Inconsistent state: reported running, never executed -------
    let cpu1_tally = evidence.park_tally(CpuId(1));
    let failed_online = cpu1_tally.failed_online > 0;
    let broken_guest = system.rtos_broken_observed();
    let boot_rejected = system.boot_failures() > 0;

    // --- CPU park / translation storm evidence ----------------------
    let cpu1_unhandled = cpu1_tally.unhandled_trap > 0;
    // Violations at or after the first live table fault — violations
    // that predate it (or occur with no table fault at all) cannot
    // have been caused by injected descriptor corruption.
    let storm_violations = match first_table_fault_step {
        Some(first) => evidence.violations_since(first),
        None => 0,
    };

    if hyp_panic || linux_panic || root_parked_on_trap {
        outcome = Outcome::PanicPark;
        if hyp_panic {
            notes.push(format!(
                "hypervisor panic: {}",
                system.hv.panicked().unwrap_or_default()
            ));
        }
        if linux_panic {
            notes.push("root cell kernel panic on serial log".into());
        }
        if root_parked_on_trap {
            notes.push("root CPU parked on unhandled trap".into());
        }
    } else if failed_online || broken_guest || boot_rejected {
        outcome = Outcome::InconsistentState;
        if failed_online {
            notes.push("CPU 1 failed to come online (hot-plug swap)".into());
        }
        if broken_guest {
            notes.push("guest entered at corrupted address: non-executable".into());
        }
        if boot_rejected {
            notes.push(format!(
                "{} cell-boot hypercall(s) rejected; CPU left parked",
                system.boot_failures()
            ));
        }
        if let Some(start) = system.cell_start_step() {
            // Binary-searched tail of the incremental line index — no
            // capture reassembly.
            let output = uart
                .lines_since(start)
                .filter(|line| line.starts_with("[rtos]"))
                .count();
            notes.push(format!("rtos serial lines since start: {output}"));
        }
        if cell_state == Some(CellState::Running) {
            notes.push("hypervisor still reports the cell running".into());
        }
    } else if storm_violations > 0 {
        // Injected stage-2 corruption made the victim's own accesses
        // fault — attribute the violations to the table fault rather
        // than to a generic CPU park.
        outcome = Outcome::TranslationFaultStorm;
        notes.push(format!(
            "{storm_violations} access violation(s) after injected stage-2 descriptor corruption"
        ));
        if cpu1_unhandled {
            notes.push("cpu1 parked on the resulting translation fault".into());
        }
    } else if cpu1_unhandled {
        outcome = Outcome::CpuPark;
        if let Some(reason) = cpu1_tally.first_unhandled_trap {
            notes.push(format!("cpu1 parked: {reason}"));
        }
        notes.push("fault isolated to the non-root cell".into());
    } else if system
        .linux
        .records()
        .iter()
        .any(|r| matches!(r.op, MgmtOp::Enable | MgmtOp::CreateCell) && r.result < 0)
        && !system.hv.is_enabled()
    {
        outcome = Outcome::InvalidArguments;
        notes.push("management operation rejected; hypervisor/cell not allocated".into());
    } else if live_mem_corruption
        || latent_mem_corruption
        || (comm_mismatch && !mem_injections.is_empty())
    {
        // Every ordinary channel is green, yet injected corruption is
        // sitting in memory (or in the published cell state) with
        // nothing having detected it.
        outcome = Outcome::SilentDataCorruption;
        let applied = mem_injections.iter().filter(|r| r.applied()).count();
        notes.push(format!(
            "{applied} memory injection(s) applied with no detection"
        ));
        if comm_mismatch {
            notes.push(format!(
                "published comm-region state {:?} disagrees with hypervisor state {:?}",
                comm_state.flatten(),
                cell_state
            ));
        }
    } else {
        outcome = Outcome::Correct;
        notes.push("system operated within expectations".into());
    }

    RunReport {
        outcome,
        injections,
        mem_injections,
        notes,
        cell_state,
        cpu1_park,
        serial_line_count,
        watchdog_first_expiry,
        monitor_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_guest_linux::MgmtScript;

    #[test]
    fn golden_run_classifies_correct() {
        let mut system = System::new(MgmtScript::bring_up_and_run(1500));
        system.run(2500);
        let report = classify(&system);
        assert_eq!(report.outcome, Outcome::Correct, "report: {report}");
        assert!(report.injections.is_empty());
        assert!(report.serial_line_count > 0);
    }

    #[test]
    fn outcome_display_matches_paper_vocabulary() {
        assert_eq!(Outcome::PanicPark.to_string(), "panic park");
        assert_eq!(Outcome::CpuPark.to_string(), "cpu park");
        assert_eq!(Outcome::InvalidArguments.to_string(), "invalid arguments");
        assert_eq!(
            Outcome::SilentDataCorruption.to_string(),
            "silent data corruption"
        );
        assert_eq!(
            Outcome::TranslationFaultStorm.to_string(),
            "translation fault storm"
        );
    }

    #[test]
    fn precedence_order_is_stable() {
        assert_eq!(Outcome::ALL[0], Outcome::PanicPark);
        assert_eq!(Outcome::ALL[6], Outcome::Correct);
    }

    #[test]
    fn latent_memory_corruption_classifies_silent() {
        use crate::memfault::{MemFaultModel, MemRegionKind, MemTarget};
        use crate::spec::MemorySpec;
        use certify_arch::CpuId;
        use certify_hypervisor::HandlerKind;
        // Bit flips into pristine root DRAM: nothing ever reads them,
        // so every channel stays green — silent data corruption.
        let mut system = System::new(MgmtScript::bring_up_and_run(1500));
        let spec = MemorySpec::new(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::Custom {
                base: certify_board::memmap::ROOT_RAM_BASE + 0x2000_0000,
                size: 0x0100_0000,
            }),
            [HandlerKind::IrqchipHandleIrq],
            Some(CpuId(0)),
        )
        .with_rate(10);
        system.install_mem_injector(spec, 3);
        system.run(2500);
        let report = classify(&system);
        assert!(
            !report.mem_injections.is_empty(),
            "no memory injections fired"
        );
        assert_eq!(report.outcome, Outcome::SilentDataCorruption, "{report}");
    }

    #[test]
    fn skipped_injections_are_noted_never_fatal() {
        use crate::memfault::{MemFaultModel, MemRegionKind, MemTarget};
        use crate::spec::MemorySpec;
        use certify_arch::CpuId;
        use certify_hypervisor::HandlerKind;
        let mut system = System::new(MgmtScript::bring_up_and_run(1500));
        let spec = MemorySpec::new(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::Custom {
                base: 0x1000_0000, // unmapped hole: every sample skips
                size: 0x1000,
            }),
            [HandlerKind::IrqchipHandleIrq],
            Some(CpuId(0)),
        )
        .with_rate(10);
        system.install_mem_injector(spec, 4);
        system.run(2500);
        let report = classify(&system);
        assert_eq!(report.outcome, Outcome::Correct, "{report}");
        assert!(
            report
                .notes
                .iter()
                .any(|n| n.contains("memory injection(s) skipped")),
            "no skipped-injection note in {report}"
        );
    }
}

//! Outcome classification.
//!
//! The paper buckets test outcomes into the categories visible in §III
//! and Figure 3. The classifier reproduces them from the observation
//! channels a real test bench has — the serial log, the hypervisor's
//! reported cell state, and the CPU park state — plus the structured
//! event trace for explainability:
//!
//! * **Correct** — the system kept operating (cells alive, output
//!   flowing);
//! * **InvalidArguments** — a management operation was cleanly
//!   rejected and nothing was allocated (E1's fail-stop);
//! * **InconsistentState** — the hypervisor reports the non-root cell
//!   *running* but the cell never executed: blank USART, CPU parked or
//!   guest non-executable (E2);
//! * **PanicPark** — the fault propagated beyond the injected cell and
//!   the whole system died in a kernel (or hypervisor) panic;
//! * **CpuPark** — an unhandled trap (`0x24`) parked the affected CPU;
//!   the fault stayed isolated in the injected cell (E3's third bar).

use crate::injector::InjectionRecord;
use crate::system::System;
use certify_arch::cpu::ParkReason;
use certify_arch::CpuId;
use certify_guest_linux::MgmtOp;
use certify_hypervisor::{CellState, Guest, GuestHealth, HvEvent};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Outcome {
    /// Whole-system failure: the fault propagated (root kernel panic
    /// or hypervisor panic).
    PanicPark,
    /// The cell is reported running but never executed — blank USART
    /// (E2's dangerous state).
    InconsistentState,
    /// The affected CPU was parked on an unhandled trap; the fault was
    /// isolated.
    CpuPark,
    /// A management operation was rejected with "invalid arguments";
    /// nothing was allocated.
    InvalidArguments,
    /// Expected behaviour throughout.
    Correct,
}

impl Outcome {
    /// All outcomes, in classification precedence order.
    pub const ALL: [Outcome; 5] = [
        Outcome::PanicPark,
        Outcome::InconsistentState,
        Outcome::CpuPark,
        Outcome::InvalidArguments,
        Outcome::Correct,
    ];
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Outcome::Correct => "correct",
            Outcome::InvalidArguments => "invalid arguments",
            Outcome::InconsistentState => "inconsistent state",
            Outcome::PanicPark => "panic park",
            Outcome::CpuPark => "cpu park",
        };
        f.write_str(name)
    }
}

/// A classified run with its supporting evidence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunReport {
    /// The classified outcome.
    pub outcome: Outcome,
    /// Injections performed during the run.
    pub injections: Vec<InjectionRecord>,
    /// Human-readable evidence notes.
    pub notes: Vec<String>,
    /// Final state of the non-root cell, if it exists.
    pub cell_state: Option<CellState>,
    /// Final park reason of CPU 1, if parked.
    pub cpu1_park: Option<String>,
    /// Number of serial-log lines.
    pub serial_line_count: usize,
    /// First hardware-watchdog expiry, if the watchdog was armed and
    /// starved (extension E5a: panic detection instant).
    pub watchdog_first_expiry: Option<u64>,
    /// Alarms raised by the root-side heartbeat safety monitor
    /// (extension E5b: inconsistent-state detection).
    pub monitor_alarms: usize,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "outcome: {}", self.outcome)?;
        for note in &self.notes {
            writeln!(f, "  - {note}")?;
        }
        Ok(())
    }
}

/// Classifies a finished run.
pub fn classify(system: &System) -> RunReport {
    let mut notes = Vec::new();
    let serial = system.serial_lines();
    let serial_line_count = serial.len();

    let injections = system
        .injection_log()
        .map(|log| log.records())
        .unwrap_or_default();

    let cell_state = system
        .rtos_cell()
        .and_then(|id| system.hv.cell(id))
        .map(|c| c.state());
    let cpu1_park = system
        .machine
        .cpu(CpuId(1))
        .park_reason()
        .map(|r| r.to_string());
    let watchdog_first_expiry = system.machine.wdt.first_expiry();
    let monitor_alarms = system.linux.monitor_alarms().len();

    // --- Panic park: whole-system failure ---------------------------
    let hyp_panic = system.hv.panicked().is_some();
    let linux_panic = system.linux.health() == GuestHealth::Panicked
        || serial
            .iter()
            .any(|(_, l)| l.contains("Kernel panic - not syncing"));
    let root_parked_on_trap = matches!(
        system.machine.cpu(CpuId(0)).park_reason(),
        Some(ParkReason::UnhandledTrap(_))
    );
    if hyp_panic || linux_panic || root_parked_on_trap {
        if hyp_panic {
            notes.push(format!(
                "hypervisor panic: {}",
                system.hv.panicked().unwrap_or_default()
            ));
        }
        if linux_panic {
            notes.push("root cell kernel panic on serial log".into());
        }
        if root_parked_on_trap {
            notes.push("root CPU parked on unhandled trap".into());
        }
        return RunReport {
            outcome: Outcome::PanicPark,
            injections,
            notes,
            cell_state,
            cpu1_park,
            serial_line_count,
            watchdog_first_expiry,
            monitor_alarms,
        };
    }

    // --- Inconsistent state: reported running, never executed -------
    let failed_online = system.hv.events().iter().any(|e| {
        matches!(
            e,
            HvEvent::CpuParked {
                cpu: CpuId(1),
                reason: ParkReason::FailedOnline,
                ..
            }
        )
    });
    let broken_guest = system.rtos_broken_observed();
    let boot_rejected = system.boot_failures() > 0;
    if failed_online || broken_guest || boot_rejected {
        if failed_online {
            notes.push("CPU 1 failed to come online (hot-plug swap)".into());
        }
        if broken_guest {
            notes.push("guest entered at corrupted address: non-executable".into());
        }
        if boot_rejected {
            notes.push(format!(
                "{} cell-boot hypercall(s) rejected; CPU left parked",
                system.boot_failures()
            ));
        }
        if let Some(start) = system.cell_start_step() {
            let output = system.rtos_output_since(start);
            notes.push(format!("rtos serial lines since start: {output}"));
        }
        if cell_state == Some(CellState::Running) {
            notes.push("hypervisor still reports the cell running".into());
        }
        return RunReport {
            outcome: Outcome::InconsistentState,
            injections,
            notes,
            cell_state,
            cpu1_park,
            serial_line_count,
            watchdog_first_expiry,
            monitor_alarms,
        };
    }

    // --- CPU park: isolated unhandled trap ---------------------------
    let cpu1_unhandled = system.hv.events().iter().any(|e| {
        matches!(
            e,
            HvEvent::CpuParked {
                cpu: CpuId(1),
                reason: ParkReason::UnhandledTrap(_),
                ..
            }
        )
    });
    if cpu1_unhandled {
        if let Some(HvEvent::CpuParked { reason, .. }) = system.hv.events().iter().find(|e| {
            matches!(
                e,
                HvEvent::CpuParked {
                    cpu: CpuId(1),
                    reason: ParkReason::UnhandledTrap(_),
                    ..
                }
            )
        }) {
            notes.push(format!("cpu1 parked: {reason}"));
        }
        notes.push("fault isolated to the non-root cell".into());
        return RunReport {
            outcome: Outcome::CpuPark,
            injections,
            notes,
            cell_state,
            cpu1_park,
            serial_line_count,
            watchdog_first_expiry,
            monitor_alarms,
        };
    }

    // --- Invalid arguments: clean management rejection ---------------
    let rejected_enable = system
        .linux
        .records()
        .iter()
        .any(|r| matches!(r.op, MgmtOp::Enable | MgmtOp::CreateCell) && r.result < 0);
    if rejected_enable && !system.hv.is_enabled() {
        notes.push("management operation rejected; hypervisor/cell not allocated".into());
        return RunReport {
            outcome: Outcome::InvalidArguments,
            injections,
            notes,
            cell_state,
            cpu1_park,
            serial_line_count,
            watchdog_first_expiry,
            monitor_alarms,
        };
    }

    notes.push("system operated within expectations".into());
    RunReport {
        outcome: Outcome::Correct,
        injections,
        notes,
        cell_state,
        cpu1_park,
        serial_line_count,
        watchdog_first_expiry,
        monitor_alarms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_guest_linux::MgmtScript;

    #[test]
    fn golden_run_classifies_correct() {
        let mut system = System::new(MgmtScript::bring_up_and_run(1500));
        system.run(2500);
        let report = classify(&system);
        assert_eq!(report.outcome, Outcome::Correct, "report: {report}");
        assert!(report.injections.is_empty());
        assert!(report.serial_line_count > 0);
    }

    #[test]
    fn outcome_display_matches_paper_vocabulary() {
        assert_eq!(Outcome::PanicPark.to_string(), "panic park");
        assert_eq!(Outcome::CpuPark.to_string(), "cpu park");
        assert_eq!(Outcome::InvalidArguments.to_string(), "invalid arguments");
    }

    #[test]
    fn precedence_order_is_stable() {
        assert_eq!(Outcome::ALL[0], Outcome::PanicPark);
        assert_eq!(Outcome::ALL[4], Outcome::Correct);
    }
}

//! Compact binary wire codec for campaign configuration and stats.
//!
//! The multi-process sharding tier (`certify-shard`) ships a campaign
//! to worker processes and streams aggregates back; both directions
//! need a *real* serialized form, not the inert derive markers of the
//! vendored serde stand-in. This module is that form: a small
//! hand-rolled, dependency-free binary codec — length-prefixed
//! strings and sequences, little-endian fixed-width integers, one tag
//! byte per enum variant — with a [`Wire`] impl for every type a
//! shard handshake or stats frame carries: the full [`Scenario`]
//! (management script, register and memory injection specs) and
//! [`CampaignStats`].
//!
//! Decoding is total: malformed input yields a [`DecodeError`], never
//! a panic, so a corrupted or malicious peer cannot take down a
//! coordinator. Round-trip identity (`decode(encode(x)) == x`) is
//! pinned by unit tests here and by proptests in the shard crate.

use crate::certificate::{PhaseBound, ScenarioCertificate};
use crate::classify::Outcome;
use crate::fault::FaultModel;
use crate::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use crate::spec::{InjectionSpec, InjectionWindow, MemorySpec};
use crate::stats::{CampaignStats, CountSummary};
use crate::trace::{DumpPolicy, TraceConfig, TraceDump};
use crate::Scenario;
use certify_arch::{CpuId, Reg};
use certify_guest_linux::{MgmtOp, MgmtScript};
use certify_hypervisor::HandlerKind;
use certify_obs::trace::{TraceEvent, TraceKind};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Why a byte stream failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
    },
    /// An enum tag byte had no matching variant.
    BadTag {
        /// What was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// A structurally valid value violated a type invariant (empty
    /// target set, zero rate, inverted window, …).
    Invalid {
        /// What invariant failed.
        what: &'static str,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { what } => write!(f, "input truncated decoding {what}"),
            DecodeError::BadTag { what, tag } => write!(f, "unknown tag {tag} decoding {what}"),
            DecodeError::Invalid { what } => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over the bytes being decoded.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over the whole of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated { what });
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Errors unless every byte was consumed — a frame payload must
    /// not carry trailing garbage.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(DecodeError::Invalid {
                what: "trailing bytes after value",
            })
        }
    }
}

/// Decodes one `T` from the whole of `buf` (no trailing bytes).
pub fn decode_exact<T: Wire>(buf: &[u8]) -> Result<T, DecodeError> {
    let mut reader = Reader::new(buf);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

/// Encodes `value` into a fresh buffer.
pub fn encode_to_vec<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// A type with a self-contained binary wire form.
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Decodes one value, advancing the reader past it.
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! int_wire {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(r: &mut Reader<'_>) -> Result<$t, DecodeError> {
                let bytes = r.take(std::mem::size_of::<$t>(), stringify!($t))?;
                Ok(<$t>::from_le_bytes(bytes.try_into().expect("sized take")))
            }
        }
    )*};
}

int_wire!(u8, u16, u32, u64, i64);

impl Wire for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<usize, DecodeError> {
        usize::try_from(u64::decode(r)?).map_err(|_| DecodeError::Invalid {
            what: "usize out of range",
        })
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<bool, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }
}

impl Wire for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Result<String, DecodeError> {
        let len = usize::decode(r)?;
        let bytes = r.take(len, "string body")?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::Invalid {
            what: "string is not UTF-8",
        })
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(value) => {
                out.push(1);
                value.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Option<T>, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(DecodeError::BadTag {
                what: "option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Vec<T>, DecodeError> {
        let len = usize::decode(r)?;
        // An attacker-supplied length must not pre-allocate
        // unboundedly; the reader cannot hold more items than bytes.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: Wire + Ord> Wire for BTreeSet<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<BTreeSet<T>, DecodeError> {
        let len = usize::decode(r)?;
        let mut set = BTreeSet::new();
        for _ in 0..len {
            set.insert(T::decode(r)?);
        }
        Ok(set)
    }
}

impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for (key, value) in self {
            key.encode(out);
            value.encode(out);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<BTreeMap<K, V>, DecodeError> {
        let len = usize::decode(r)?;
        let mut map = BTreeMap::new();
        for _ in 0..len {
            let key = K::decode(r)?;
            let value = V::decode(r)?;
            map.insert(key, value);
        }
        Ok(map)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<(A, B), DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

// ---- foreign scalar types ------------------------------------------------

impl Wire for CpuId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<CpuId, DecodeError> {
        Ok(CpuId(u32::decode(r)?))
    }
}

impl Wire for Reg {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Reg, DecodeError> {
        let tag = u8::decode(r)?;
        Reg::ALL
            .get(tag as usize)
            .copied()
            .ok_or(DecodeError::BadTag { what: "Reg", tag })
    }
}

impl Wire for HandlerKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }
    fn decode(r: &mut Reader<'_>) -> Result<HandlerKind, DecodeError> {
        let tag = u8::decode(r)?;
        HandlerKind::ALL
            .get(tag as usize)
            .copied()
            .ok_or(DecodeError::BadTag {
                what: "HandlerKind",
                tag,
            })
    }
}

impl Wire for Outcome {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag = Outcome::ALL
            .iter()
            .position(|o| o == self)
            .expect("Outcome::ALL is exhaustive") as u8;
        out.push(tag);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Outcome, DecodeError> {
        let tag = u8::decode(r)?;
        Outcome::ALL
            .get(tag as usize)
            .copied()
            .ok_or(DecodeError::BadTag {
                what: "Outcome",
                tag,
            })
    }
}

// ---- management scripts --------------------------------------------------

impl Wire for MgmtOp {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MgmtOp::Delay(n) => {
                out.push(0);
                n.encode(out);
            }
            MgmtOp::PollInfo => out.push(1),
            MgmtOp::StageSystemConfig => out.push(2),
            MgmtOp::Enable => out.push(3),
            MgmtOp::RequestCpuOffline(cpu) => {
                out.push(4);
                cpu.encode(out);
            }
            MgmtOp::WaitCpuParked(cpu) => {
                out.push(5);
                cpu.encode(out);
            }
            MgmtOp::StageCellConfig => out.push(6),
            MgmtOp::CreateCell => out.push(7),
            MgmtOp::LoadCell => out.push(8),
            MgmtOp::StartCell => out.push(9),
            MgmtOp::RunFor(n) => {
                out.push(10);
                n.encode(out);
            }
            MgmtOp::QueryCellState => out.push(11),
            MgmtOp::ShutdownCell => out.push(12),
            MgmtOp::DestroyCell => out.push(13),
            MgmtOp::ArmWatchdog => out.push(14),
            MgmtOp::MonitorFor { steps, window } => {
                out.push(15);
                steps.encode(out);
                window.encode(out);
            }
            MgmtOp::Restart(index) => {
                out.push(16);
                index.encode(out);
            }
            MgmtOp::Halt => out.push(17),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<MgmtOp, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => MgmtOp::Delay(u64::decode(r)?),
            1 => MgmtOp::PollInfo,
            2 => MgmtOp::StageSystemConfig,
            3 => MgmtOp::Enable,
            4 => MgmtOp::RequestCpuOffline(u32::decode(r)?),
            5 => MgmtOp::WaitCpuParked(u32::decode(r)?),
            6 => MgmtOp::StageCellConfig,
            7 => MgmtOp::CreateCell,
            8 => MgmtOp::LoadCell,
            9 => MgmtOp::StartCell,
            10 => MgmtOp::RunFor(u64::decode(r)?),
            11 => MgmtOp::QueryCellState,
            12 => MgmtOp::ShutdownCell,
            13 => MgmtOp::DestroyCell,
            14 => MgmtOp::ArmWatchdog,
            15 => MgmtOp::MonitorFor {
                steps: u64::decode(r)?,
                window: u64::decode(r)?,
            },
            16 => MgmtOp::Restart(usize::decode(r)?),
            17 => MgmtOp::Halt,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "MgmtOp",
                    tag,
                })
            }
        })
    }
}

impl Wire for MgmtScript {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.ops.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<MgmtScript, DecodeError> {
        Ok(MgmtScript {
            name: String::decode(r)?,
            ops: Vec::decode(r)?,
        })
    }
}

// ---- injection specifications --------------------------------------------

impl Wire for InjectionWindow {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<InjectionWindow, DecodeError> {
        let start = u64::decode(r)?;
        let end = u64::decode(r)?;
        if start >= end {
            return Err(DecodeError::Invalid {
                what: "injection window is empty",
            });
        }
        Ok(InjectionWindow { start, end })
    }
}

impl Wire for FaultModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            FaultModel::SingleBitFlip { pool } => {
                out.push(0);
                pool.encode(out);
            }
            FaultModel::MultiRegisterFlip { regs } => {
                out.push(1);
                regs.encode(out);
            }
            FaultModel::DoubleBitFlip { pool } => {
                out.push(2);
                pool.encode(out);
            }
            FaultModel::RegisterZero { pool } => {
                out.push(3);
                pool.encode(out);
            }
            FaultModel::RegisterRandom { pool } => {
                out.push(4);
                pool.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<FaultModel, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => FaultModel::SingleBitFlip {
                pool: Vec::decode(r)?,
            },
            1 => FaultModel::MultiRegisterFlip {
                regs: Vec::decode(r)?,
            },
            2 => FaultModel::DoubleBitFlip {
                pool: Vec::decode(r)?,
            },
            3 => FaultModel::RegisterZero {
                pool: Vec::decode(r)?,
            },
            4 => FaultModel::RegisterRandom {
                pool: Vec::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "FaultModel",
                    tag,
                })
            }
        })
    }
}

impl Wire for InjectionSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.targets.encode(out);
        self.cpu_filter.encode(out);
        self.rate.encode(out);
        self.model.encode(out);
        self.max_injections.encode(out);
        self.phase_jitter.encode(out);
        self.time_trigger.encode(out);
        self.windows.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<InjectionSpec, DecodeError> {
        let spec = InjectionSpec {
            targets: BTreeSet::decode(r)?,
            cpu_filter: Option::decode(r)?,
            rate: u64::decode(r)?,
            model: FaultModel::decode(r)?,
            max_injections: Option::decode(r)?,
            phase_jitter: bool::decode(r)?,
            time_trigger: Option::decode(r)?,
            windows: Vec::decode(r)?,
        };
        if spec.targets.is_empty() {
            return Err(DecodeError::Invalid {
                what: "injection spec has no targets",
            });
        }
        if spec.rate == 0 {
            return Err(DecodeError::Invalid {
                what: "injection spec rate is zero",
            });
        }
        if spec.time_trigger == Some(0) {
            return Err(DecodeError::Invalid {
                what: "injection spec time trigger is zero",
            });
        }
        Ok(spec)
    }
}

// ---- memory fault specifications -----------------------------------------

impl Wire for MemRegionKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MemRegionKind::RootRam => out.push(0),
            MemRegionKind::NonRootRam => out.push(1),
            MemRegionKind::Ivshmem => out.push(2),
            MemRegionKind::CommRegion => out.push(3),
            MemRegionKind::Stage2Tables => out.push(4),
            MemRegionKind::Custom { base, size } => {
                out.push(5);
                base.encode(out);
                size.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<MemRegionKind, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => MemRegionKind::RootRam,
            1 => MemRegionKind::NonRootRam,
            2 => MemRegionKind::Ivshmem,
            3 => MemRegionKind::CommRegion,
            4 => MemRegionKind::Stage2Tables,
            5 => MemRegionKind::Custom {
                base: u32::decode(r)?,
                size: u32::decode(r)?,
            },
            tag => {
                return Err(DecodeError::BadTag {
                    what: "MemRegionKind",
                    tag,
                })
            }
        })
    }
}

impl Wire for MemTarget {
    fn encode(&self, out: &mut Vec<u8>) {
        self.regions().to_vec().encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<MemTarget, DecodeError> {
        let regions: Vec<MemRegionKind> = Vec::decode(r)?;
        if regions.is_empty() {
            return Err(DecodeError::Invalid {
                what: "mem target has no regions",
            });
        }
        // Re-check `MemTarget::new`'s span invariants without its
        // panics: the decoder must reject, not abort the process.
        for region in &regions {
            let (base, size) = region.span();
            if size < 4 || base.checked_add(size - 1).is_none() {
                return Err(DecodeError::Invalid {
                    what: "mem target region span is unusable",
                });
            }
        }
        Ok(MemTarget::new(regions))
    }
}

impl Wire for MemFaultModel {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            MemFaultModel::SingleBitFlip => out.push(0),
            MemFaultModel::DoubleBitFlip => out.push(1),
            MemFaultModel::WordStuckAt { value } => {
                out.push(2);
                value.encode(out);
            }
            MemFaultModel::PageBurst { words } => {
                out.push(3);
                words.encode(out);
            }
            MemFaultModel::DescriptorInvalidate => out.push(4),
            MemFaultModel::CommStateCorrupt => out.push(5),
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<MemFaultModel, DecodeError> {
        Ok(match u8::decode(r)? {
            0 => MemFaultModel::SingleBitFlip,
            1 => MemFaultModel::DoubleBitFlip,
            2 => MemFaultModel::WordStuckAt {
                value: u32::decode(r)?,
            },
            3 => MemFaultModel::PageBurst {
                words: u32::decode(r)?,
            },
            4 => MemFaultModel::DescriptorInvalidate,
            5 => MemFaultModel::CommStateCorrupt,
            tag => {
                return Err(DecodeError::BadTag {
                    what: "MemFaultModel",
                    tag,
                })
            }
        })
    }
}

impl Wire for MemorySpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.targets.encode(out);
        self.cpu_filter.encode(out);
        self.rate.encode(out);
        self.model.encode(out);
        self.target.encode(out);
        self.max_injections.encode(out);
        self.phase_jitter.encode(out);
        self.windows.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<MemorySpec, DecodeError> {
        let spec = MemorySpec {
            targets: BTreeSet::decode(r)?,
            cpu_filter: Option::decode(r)?,
            rate: u64::decode(r)?,
            model: MemFaultModel::decode(r)?,
            target: MemTarget::decode(r)?,
            max_injections: Option::decode(r)?,
            phase_jitter: bool::decode(r)?,
            windows: Vec::decode(r)?,
        };
        if spec.targets.is_empty() {
            return Err(DecodeError::Invalid {
                what: "memory spec has no targets",
            });
        }
        if spec.rate == 0 {
            return Err(DecodeError::Invalid {
                what: "memory spec rate is zero",
            });
        }
        Ok(spec)
    }
}

// ---- the full scenario ---------------------------------------------------

impl Wire for Scenario {
    fn encode(&self, out: &mut Vec<u8>) {
        self.name.encode(out);
        self.script.encode(out);
        self.spec.encode(out);
        self.mem_spec.encode(out);
        self.steps.encode(out);
        self.rtos_heartbeat.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Scenario, DecodeError> {
        Ok(Scenario {
            name: String::decode(r)?,
            script: MgmtScript::decode(r)?,
            spec: Option::decode(r)?,
            mem_spec: Option::decode(r)?,
            steps: u64::decode(r)?,
            rtos_heartbeat: bool::decode(r)?,
        })
    }
}

// ---- campaign statistics -------------------------------------------------

impl Wire for CountSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.min.encode(out);
        self.max.encode(out);
        self.total.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<CountSummary, DecodeError> {
        Ok(CountSummary {
            min: usize::decode(r)?,
            max: usize::decode(r)?,
            total: u64::decode(r)?,
        })
    }
}

impl Wire for CampaignStats {
    fn encode(&self, out: &mut Vec<u8>) {
        self.scenario_name.encode(out);
        self.trials.encode(out);
        self.distribution.encode(out);
        self.injected_trials.encode(out);
        self.mem_injected_trials.encode(out);
        self.mem_region_distribution.encode(out);
        self.injections.encode(out);
        self.mem_injections.encode(out);
        self.watchdog_detected.encode(out);
        self.watchdog_expiry_sum.encode(out);
        self.monitor_detected.encode(out);
        self.monitor_alarms_total.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<CampaignStats, DecodeError> {
        Ok(CampaignStats {
            scenario_name: String::decode(r)?,
            trials: usize::decode(r)?,
            distribution: BTreeMap::decode(r)?,
            injected_trials: usize::decode(r)?,
            mem_injected_trials: usize::decode(r)?,
            mem_region_distribution: BTreeMap::decode(r)?,
            injections: CountSummary::decode(r)?,
            mem_injections: CountSummary::decode(r)?,
            watchdog_detected: usize::decode(r)?,
            watchdog_expiry_sum: u64::decode(r)?,
            monitor_detected: usize::decode(r)?,
            monitor_alarms_total: usize::decode(r)?,
        })
    }
}

// ---- scenario certificates -----------------------------------------------

impl Wire for PhaseBound {
    fn encode(&self, out: &mut Vec<u8>) {
        self.start.encode(out);
        self.end.encode(out);
        self.max_handler_calls.encode(out);
        self.max_injections.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<PhaseBound, DecodeError> {
        let bound = PhaseBound {
            start: u64::decode(r)?,
            end: u64::decode(r)?,
            max_handler_calls: u64::decode(r)?,
            max_injections: u64::decode(r)?,
        };
        if bound.start >= bound.end {
            return Err(DecodeError::Invalid {
                what: "phase bound is empty",
            });
        }
        Ok(bound)
    }
}

impl Wire for ScenarioCertificate {
    fn encode(&self, out: &mut Vec<u8>) {
        self.scenario_name.encode(out);
        self.cell_reachable.encode(out);
        self.script_steps.encode(out);
        self.outcomes.encode(out);
        self.reg_budget.encode(out);
        self.mem_budget.encode(out);
        self.tracked_regions.encode(out);
        self.reg_phases.encode(out);
        self.mem_phases.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<ScenarioCertificate, DecodeError> {
        let certificate = ScenarioCertificate {
            scenario_name: String::decode(r)?,
            cell_reachable: bool::decode(r)?,
            script_steps: Option::decode(r)?,
            outcomes: BTreeSet::decode(r)?,
            reg_budget: Option::decode(r)?,
            mem_budget: Option::decode(r)?,
            tracked_regions: BTreeSet::decode(r)?,
            reg_phases: Vec::decode(r)?,
            mem_phases: Vec::decode(r)?,
        };
        if certificate.outcomes.is_empty() {
            return Err(DecodeError::Invalid {
                what: "certificate predicts no outcomes",
            });
        }
        Ok(certificate)
    }
}

// ---- trace streams -------------------------------------------------------

impl Wire for TraceKind {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.code());
    }
    fn decode(r: &mut Reader<'_>) -> Result<TraceKind, DecodeError> {
        let tag = u8::decode(r)?;
        TraceKind::from_code(tag).ok_or(DecodeError::BadTag {
            what: "TraceKind",
            tag,
        })
    }
}

impl Wire for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        self.step.encode(out);
        self.cpu.encode(out);
        self.kind.encode(out);
        self.arg_a.encode(out);
        self.arg_b.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<TraceEvent, DecodeError> {
        Ok(TraceEvent {
            step: u64::decode(r)?,
            cpu: u32::decode(r)?,
            kind: TraceKind::decode(r)?,
            arg_a: u64::decode(r)?,
            arg_b: u64::decode(r)?,
        })
    }
}

impl Wire for DumpPolicy {
    fn encode(&self, out: &mut Vec<u8>) {
        self.outcomes.encode(out);
        self.on_conformance_violation.encode(out);
        self.on_panic.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<DumpPolicy, DecodeError> {
        Ok(DumpPolicy {
            outcomes: BTreeSet::decode(r)?,
            on_conformance_violation: bool::decode(r)?,
            on_panic: bool::decode(r)?,
        })
    }
}

impl Wire for TraceConfig {
    fn encode(&self, out: &mut Vec<u8>) {
        self.capacity.encode(out);
        self.policy.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<TraceConfig, DecodeError> {
        let config = TraceConfig {
            capacity: usize::decode(r)?,
            policy: DumpPolicy::decode(r)?,
        };
        if config.capacity == 0 {
            return Err(DecodeError::Invalid {
                what: "trace config capacity is zero",
            });
        }
        Ok(config)
    }
}

impl Wire for TraceDump {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seed.encode(out);
        self.scenario.encode(out);
        self.outcome.encode(out);
        self.total.encode(out);
        self.dropped.encode(out);
        self.events.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Result<TraceDump, DecodeError> {
        let dump = TraceDump {
            seed: u64::decode(r)?,
            scenario: String::decode(r)?,
            outcome: Outcome::decode(r)?,
            total: u64::decode(r)?,
            dropped: u64::decode(r)?,
            events: Vec::decode(r)?,
        };
        if dump.dropped.checked_add(dump.events.len() as u64) != Some(dump.total) {
            return Err(DecodeError::Invalid {
                what: "trace dump event accounting is inconsistent",
            });
        }
        Ok(dump)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Campaign;
    use crate::sink::NullSink;

    fn round_trip<T: Wire + PartialEq + fmt::Debug>(value: &T) {
        let bytes = encode_to_vec(value);
        let back: T = decode_exact(&bytes).expect("decode");
        assert_eq!(&back, value);
    }

    #[test]
    fn every_scenario_preset_round_trips() {
        for scenario in [
            Scenario::golden(1500),
            Scenario::e1_root_high(),
            Scenario::e2_nonroot_high(),
            Scenario::e2_boot_window(),
            Scenario::e3_fig3(),
            Scenario::e5a_watchdog(),
            Scenario::e5b_monitor(),
            Scenario::e6_memory(MemFaultModel::page_burst(), MemTarget::all()),
            Scenario::e7_mixed(),
        ] {
            round_trip(&scenario);
        }
    }

    #[test]
    fn specs_with_every_knob_round_trip() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_rate(7)
            .with_max_injections(3)
            .with_phase_jitter()
            .with_time_trigger(19)
            .with_window(10, 20)
            .with_window(50, 60)
            .with_model(FaultModel::DoubleBitFlip {
                pool: vec![Reg::R0, Reg::PC],
            });
        round_trip(&spec);

        let mem = MemorySpec::e6_memory(
            MemFaultModel::WordStuckAt { value: 0xdead_beef },
            MemTarget::new([
                MemRegionKind::CommRegion,
                MemRegionKind::Custom {
                    base: 0x1000,
                    size: 0x100,
                },
            ]),
        )
        .with_rate(11)
        .with_phase_jitter()
        .with_max_injections(9)
        .with_window(100, 200);
        round_trip(&mem);
    }

    #[test]
    fn campaign_stats_round_trip() {
        let stats = Campaign::new(Scenario::e1_root_high(), 5, 41).run_streamed(&mut NullSink);
        round_trip(&stats);
        round_trip(&CampaignStats::new("empty"));
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let bytes = encode_to_vec(&Scenario::e3_fig3());
        for len in 0..bytes.len() {
            let err = decode_exact::<Scenario>(&bytes[..len]).expect_err("truncated must fail");
            let _ = err.to_string();
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_to_vec(&Scenario::e3_fig3());
        bytes.push(0);
        assert_eq!(
            decode_exact::<Scenario>(&bytes),
            Err(DecodeError::Invalid {
                what: "trailing bytes after value"
            })
        );
    }

    #[test]
    fn bad_tags_are_rejected() {
        assert!(matches!(
            decode_exact::<Outcome>(&[99]),
            Err(DecodeError::BadTag {
                what: "Outcome",
                tag: 99
            })
        ));
        assert!(matches!(
            decode_exact::<Reg>(&[16]),
            Err(DecodeError::BadTag { what: "Reg", .. })
        ));
        assert!(matches!(
            decode_exact::<bool>(&[7]),
            Err(DecodeError::BadTag { what: "bool", .. })
        ));
    }

    #[test]
    fn invariant_violations_are_rejected() {
        // An inverted window.
        let mut bytes = Vec::new();
        20u64.encode(&mut bytes);
        10u64.encode(&mut bytes);
        assert!(decode_exact::<InjectionWindow>(&bytes).is_err());

        // A spec whose target set is empty.
        let mut spec = InjectionSpec::e1_root_high();
        spec.targets.clear();
        let bytes = encode_to_vec(&spec);
        assert_eq!(
            decode_exact::<InjectionSpec>(&bytes),
            Err(DecodeError::Invalid {
                what: "injection spec has no targets"
            })
        );

        // A memory target with an empty region list.
        let bytes = encode_to_vec(&Vec::<MemRegionKind>::new());
        assert!(decode_exact::<MemTarget>(&bytes).is_err());
    }

    #[test]
    fn scenario_certificates_round_trip() {
        let certificate = ScenarioCertificate {
            scenario_name: "e7-mixed".into(),
            cell_reachable: true,
            script_steps: None,
            outcomes: [Outcome::Correct, Outcome::PanicPark, Outcome::CpuPark]
                .into_iter()
                .collect(),
            reg_budget: Some(721),
            mem_budget: Some(12),
            tracked_regions: [MemRegionKind::CommRegion, MemRegionKind::Stage2Tables]
                .into_iter()
                .collect(),
            reg_phases: vec![PhaseBound {
                start: 3300,
                end: 4500,
                max_handler_calls: 9600,
                max_injections: 961,
            }],
            mem_phases: Vec::new(),
        };
        round_trip(&certificate);

        // Truncation at every prefix errors cleanly, as for scenarios.
        let bytes = encode_to_vec(&certificate);
        for len in 0..bytes.len() {
            decode_exact::<ScenarioCertificate>(&bytes[..len]).expect_err("truncated must fail");
        }
    }

    #[test]
    fn malformed_certificates_are_rejected() {
        // An empty phase bound.
        let mut bytes = Vec::new();
        5u64.encode(&mut bytes);
        5u64.encode(&mut bytes);
        1u64.encode(&mut bytes);
        1u64.encode(&mut bytes);
        assert_eq!(
            decode_exact::<PhaseBound>(&bytes),
            Err(DecodeError::Invalid {
                what: "phase bound is empty"
            })
        );

        // A certificate predicting no outcome at all.
        let mut certificate = ScenarioCertificate {
            scenario_name: "x".into(),
            cell_reachable: false,
            script_steps: Some(1),
            outcomes: [Outcome::Correct].into_iter().collect(),
            reg_budget: None,
            mem_budget: None,
            tracked_regions: BTreeSet::new(),
            reg_phases: Vec::new(),
            mem_phases: Vec::new(),
        };
        certificate.outcomes.clear();
        let bytes = encode_to_vec(&certificate);
        assert_eq!(
            decode_exact::<ScenarioCertificate>(&bytes),
            Err(DecodeError::Invalid {
                what: "certificate predicts no outcomes"
            })
        );
    }

    #[test]
    fn trace_types_round_trip() {
        round_trip(&TraceConfig::default());
        round_trip(
            &TraceConfig::default()
                .with_capacity(16)
                .with_policy(DumpPolicy::all_outcomes()),
        );
        let dump = TraceDump {
            seed: 7,
            scenario: "e7-mixed".into(),
            outcome: Outcome::SilentDataCorruption,
            total: 5,
            dropped: 3,
            events: vec![
                TraceEvent {
                    step: 3301,
                    cpu: 1,
                    kind: TraceKind::InjectionApplied,
                    arg_a: 2,
                    arg_b: 100,
                },
                TraceEvent {
                    step: 4500,
                    cpu: u32::MAX,
                    kind: TraceKind::ClassifyVerdict,
                    arg_a: 5,
                    arg_b: 0,
                },
            ],
        };
        round_trip(&dump);
        for kind in TraceKind::ALL {
            round_trip(&kind);
        }
    }

    #[test]
    fn malformed_trace_values_are_rejected() {
        assert!(matches!(
            decode_exact::<TraceKind>(&[TraceKind::ALL.len() as u8]),
            Err(DecodeError::BadTag {
                what: "TraceKind",
                ..
            })
        ));

        let config = TraceConfig::default().with_capacity(0);
        let bytes = encode_to_vec(&config);
        assert_eq!(
            decode_exact::<TraceConfig>(&bytes),
            Err(DecodeError::Invalid {
                what: "trace config capacity is zero"
            })
        );

        // A dump whose drop accounting does not add up.
        let mut dump = TraceDump {
            seed: 1,
            scenario: "x".into(),
            outcome: Outcome::Correct,
            total: 10,
            dropped: 0,
            events: Vec::new(),
        };
        dump.total = 10;
        let bytes = encode_to_vec(&dump);
        assert_eq!(
            decode_exact::<TraceDump>(&bytes),
            Err(DecodeError::Invalid {
                what: "trace dump event accounting is inconsistent"
            })
        );
    }

    #[test]
    fn trace_event_encoding_is_29_bytes() {
        // The fixed event size the README quotes for ring sizing.
        let event = TraceEvent {
            step: 0,
            cpu: 0,
            kind: TraceKind::HandlerEntry,
            arg_a: 0,
            arg_b: 0,
        };
        assert_eq!(encode_to_vec(&event).len(), 29);
    }

    #[test]
    fn outcome_tags_are_stable() {
        // The wire tag is the index in `Outcome::ALL`; reordering that
        // array is a protocol break, which this pin makes loud.
        assert_eq!(encode_to_vec(&Outcome::PanicPark), vec![0]);
        assert_eq!(encode_to_vec(&Outcome::Correct), vec![6]);
    }
}

//! Fault models.
//!
//! The paper uses "the classical bit-flip fault model [12]" to emulate
//! transient hardware faults: the *medium* intensity level flips one
//! random bit of one random architecture register; the *high* level
//! flips bits in "multiple registers at the time" (modelled as one
//! random bit in each of the three handler argument registers
//! `r0`–`r2`). The future-work section asks for "a wider and
//! customizable set of fault models", which the extension variants
//! provide.

use certify_arch::{Reg, RegisterFile};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One concrete register corruption that was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedFault {
    /// The corrupted register.
    pub reg: Reg,
    /// The flipped/affected bit (for whole-register models, bit 0 is
    /// recorded).
    pub bit: u8,
    /// Register value before corruption.
    pub before: u32,
    /// Register value after corruption.
    pub after: u32,
}

impl fmt::Display for AppliedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} bit{}: {:08x} -> {:08x}",
            self.reg, self.bit, self.before, self.after
        )
    }
}

/// A fault model: how to corrupt a register file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultModel {
    /// One random bit of one register drawn uniformly from `pool`
    /// (the paper's medium intensity; `pool` defaults to all sixteen
    /// registers).
    SingleBitFlip {
        /// Candidate registers.
        pool: Vec<Reg>,
    },
    /// One random bit in each listed register (the paper's high
    /// intensity, with the handler argument registers as the default
    /// list).
    MultiRegisterFlip {
        /// Registers to corrupt.
        regs: Vec<Reg>,
    },
    /// Two random bits of one random register (extension).
    DoubleBitFlip {
        /// Candidate registers.
        pool: Vec<Reg>,
    },
    /// One register forced to zero (stuck-at-0 on the whole register,
    /// extension).
    RegisterZero {
        /// Candidate registers.
        pool: Vec<Reg>,
    },
    /// One register replaced with a uniformly random value
    /// (extension).
    RegisterRandom {
        /// Candidate registers.
        pool: Vec<Reg>,
    },
}

impl FaultModel {
    /// The paper's medium-intensity model over all registers.
    pub fn single_bit_flip() -> FaultModel {
        FaultModel::SingleBitFlip {
            pool: Reg::ALL.to_vec(),
        }
    }

    /// The paper's high-intensity model over the handler argument
    /// registers.
    pub fn multi_register_flip() -> FaultModel {
        FaultModel::MultiRegisterFlip {
            regs: vec![Reg::R0, Reg::R1, Reg::R2],
        }
    }

    /// A short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            FaultModel::SingleBitFlip { .. } => "single-bit-flip",
            FaultModel::MultiRegisterFlip { .. } => "multi-register-flip",
            FaultModel::DoubleBitFlip { .. } => "double-bit-flip",
            FaultModel::RegisterZero { .. } => "register-zero",
            FaultModel::RegisterRandom { .. } => "register-random",
        }
    }

    /// Applies the model to `regs`, drawing randomness from `rng`.
    /// Returns the list of concrete corruptions performed.
    pub fn apply<R: Rng>(&self, regs: &mut RegisterFile, rng: &mut R) -> Vec<AppliedFault> {
        match self {
            FaultModel::SingleBitFlip { pool } => {
                let Some(&reg) = pick(pool, rng) else {
                    return Vec::new();
                };
                let bit = rng.gen_range(0..32u8);
                vec![flip(regs, reg, bit)]
            }
            FaultModel::MultiRegisterFlip { regs: targets } => targets
                .iter()
                .map(|&reg| {
                    let bit = rng.gen_range(0..32u8);
                    flip(regs, reg, bit)
                })
                .collect(),
            FaultModel::DoubleBitFlip { pool } => {
                let Some(&reg) = pick(pool, rng) else {
                    return Vec::new();
                };
                let first = rng.gen_range(0..32u8);
                let mut second = rng.gen_range(0..32u8);
                while second == first {
                    second = rng.gen_range(0..32u8);
                }
                vec![flip(regs, reg, first), flip(regs, reg, second)]
            }
            FaultModel::RegisterZero { pool } => {
                let Some(&reg) = pick(pool, rng) else {
                    return Vec::new();
                };
                let before = regs.read(reg);
                regs.write(reg, 0);
                vec![AppliedFault {
                    reg,
                    bit: 0,
                    before,
                    after: 0,
                }]
            }
            FaultModel::RegisterRandom { pool } => {
                let Some(&reg) = pick(pool, rng) else {
                    return Vec::new();
                };
                let before = regs.read(reg);
                let after = rng.gen::<u32>();
                regs.write(reg, after);
                vec![AppliedFault {
                    reg,
                    bit: 0,
                    before,
                    after,
                }]
            }
        }
    }
}

fn pick<'a, R: Rng>(pool: &'a [Reg], rng: &mut R) -> Option<&'a Reg> {
    if pool.is_empty() {
        None
    } else {
        pool.get(rng.gen_range(0..pool.len()))
    }
}

fn flip(regs: &mut RegisterFile, reg: Reg, bit: u8) -> AppliedFault {
    let before = regs.read(reg);
    let after = regs.flip_bit(reg, bit);
    AppliedFault {
        reg,
        bit,
        before,
        after,
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn single_bit_flip_corrupts_exactly_one_register() {
        let mut regs = RegisterFile::new();
        for r in Reg::ALL {
            regs.write(r, 0x5555_5555);
        }
        let faults = FaultModel::single_bit_flip().apply(&mut regs, &mut rng(1));
        assert_eq!(faults.len(), 1);
        let changed: Vec<Reg> = Reg::ALL
            .into_iter()
            .filter(|&r| regs.read(r) != 0x5555_5555)
            .collect();
        assert_eq!(changed, vec![faults[0].reg]);
        assert_eq!(
            (faults[0].before ^ faults[0].after).count_ones(),
            1,
            "exactly one bit flipped"
        );
    }

    #[test]
    fn multi_register_flip_hits_r0_r1_r2() {
        let mut regs = RegisterFile::new();
        let faults = FaultModel::multi_register_flip().apply(&mut regs, &mut rng(2));
        let regs_hit: Vec<Reg> = faults.iter().map(|f| f.reg).collect();
        assert_eq!(regs_hit, vec![Reg::R0, Reg::R1, Reg::R2]);
        for f in &faults {
            assert_eq!((f.before ^ f.after).count_ones(), 1);
        }
    }

    #[test]
    fn double_bit_flip_flips_two_distinct_bits() {
        let mut regs = RegisterFile::new();
        let model = FaultModel::DoubleBitFlip {
            pool: vec![Reg::R4],
        };
        let faults = model.apply(&mut regs, &mut rng(3));
        assert_eq!(faults.len(), 2);
        assert_eq!(faults[0].reg, Reg::R4);
        assert_ne!(faults[0].bit, faults[1].bit);
        assert_eq!(regs.read(Reg::R4).count_ones(), 2);
    }

    #[test]
    fn register_zero_clears_the_register() {
        let mut regs = RegisterFile::new();
        regs.write(Reg::R7, 0xffff_ffff);
        let model = FaultModel::RegisterZero {
            pool: vec![Reg::R7],
        };
        let faults = model.apply(&mut regs, &mut rng(4));
        assert_eq!(regs.read(Reg::R7), 0);
        assert_eq!(faults[0].before, 0xffff_ffff);
    }

    #[test]
    fn empty_pool_applies_nothing() {
        let mut regs = RegisterFile::new();
        let model = FaultModel::SingleBitFlip { pool: vec![] };
        assert!(model.apply(&mut regs, &mut rng(5)).is_empty());
    }

    #[test]
    fn same_seed_same_faults() {
        let model = FaultModel::single_bit_flip();
        let mut a = RegisterFile::new();
        let mut b = RegisterFile::new();
        let fa = model.apply(&mut a, &mut rng(42));
        let fb = model.apply(&mut b, &mut rng(42));
        assert_eq!(fa, fb);
        assert_eq!(a, b);
    }

    #[test]
    fn register_choice_is_roughly_uniform() {
        // Over many draws every register of the pool appears — the
        // "random architecture register" of the paper really ranges
        // over the whole file.
        let model = FaultModel::single_bit_flip();
        let mut seen = std::collections::HashSet::new();
        let mut r = rng(7);
        for _ in 0..600 {
            let mut regs = RegisterFile::new();
            for f in model.apply(&mut regs, &mut r) {
                seen.insert(f.reg);
            }
        }
        assert_eq!(seen.len(), 16);
    }
}

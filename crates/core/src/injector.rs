//! The injector: an [`InjectionHook`] that fires on cadence.
//!
//! This is the runtime half of the paper's "dozen of lines of code
//! added to Jailhouse that allows us to orchestrate the fault
//! injection tests by controlling test duration and target": it
//! counts handler calls that match the specification's target/CPU
//! filter and, on every `rate`-th call, applies the fault model to the
//! live register context — recording exactly what was corrupted for
//! the post-run analytics.

use crate::fault::AppliedFault;
use crate::spec::InjectionSpec;
use certify_arch::CpuId;
use certify_hypervisor::{HandlerKind, HookCtx, InjectionHook};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One injection that happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// Simulator step of the injection.
    pub step: u64,
    /// The handler that was entered.
    pub handler: HandlerKind,
    /// The CPU that called it.
    pub cpu: CpuId,
    /// The filtered-stream call number that triggered the injection.
    pub filtered_call: u64,
    /// The concrete corruptions applied.
    pub faults: Vec<AppliedFault>,
}

impl fmt::Display for InjectionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} {} call#{}:",
            self.step, self.cpu, self.handler, self.filtered_call
        )?;
        for fault in &self.faults {
            write!(f, " {fault}")?;
        }
        Ok(())
    }
}

/// Shared, cloneable view of an injector's record log (the injector
/// itself is moved into the hypervisor as a hook).
#[derive(Debug, Clone, Default)]
pub struct InjectionLog {
    inner: Arc<Mutex<Vec<InjectionRecord>>>,
}

impl InjectionLog {
    /// Snapshot of all injections so far.
    pub fn records(&self) -> Vec<InjectionRecord> {
        self.inner.lock().expect("injection log lock").clone()
    }

    /// Number of injections so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("injection log lock").len()
    }

    /// Whether no injection has fired yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn push(&self, record: InjectionRecord) {
        self.inner.lock().expect("injection log lock").push(record);
    }
}

/// The fault injector.
#[derive(Debug)]
pub struct Injector {
    spec: Arc<InjectionSpec>,
    /// The spec's handler-target set as a flat mask indexed by
    /// [`HandlerKind::index`] — the hook runs on *every* handler entry
    /// of the run, so the filter must not cost a set lookup.
    target_mask: [bool; HandlerKind::ALL.len()],
    rng: StdRng,
    filtered_calls: u64,
    injections_done: u64,
    /// Next firing deadline (time-triggered mode only).
    next_deadline: u64,
    log: InjectionLog,
}

impl Injector {
    /// Creates an injector for `spec`, seeded deterministically. The
    /// spec is taken via `Into<Arc<_>>` so campaign workers can share
    /// one allocation across thousands of trials.
    ///
    /// # Panics
    /// Panics if `spec.rate` is zero (`rate` is a public field, so a
    /// caller can bypass `with_rate`'s validation; a zero rate would
    /// otherwise silently degenerate to a single injection at call 0
    /// because `0.is_multiple_of(0)` is true).
    pub fn new(spec: impl Into<Arc<InjectionSpec>>, seed: u64) -> Injector {
        let spec = spec.into();
        assert!(spec.rate > 0, "injection rate must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let phase = if spec.phase_jitter {
            use rand::Rng;
            rng.gen_range(0..spec.rate)
        } else {
            0
        };
        let mut target_mask = [false; HandlerKind::ALL.len()];
        for handler in &spec.targets {
            target_mask[handler.index()] = true;
        }
        Injector {
            spec,
            target_mask,
            rng,
            filtered_calls: phase,
            injections_done: 0,
            next_deadline: 0,
            log: InjectionLog::default(),
        }
    }

    /// A shared handle to the injection log, usable after the injector
    /// has been installed into the hypervisor.
    pub fn log(&self) -> InjectionLog {
        self.log.clone()
    }

    /// The specification driving this injector.
    pub fn spec(&self) -> &InjectionSpec {
        self.spec.as_ref()
    }

    /// Filtered calls observed so far.
    pub fn filtered_calls(&self) -> u64 {
        self.filtered_calls
    }
}

impl InjectionHook for Injector {
    fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
        if !self.target_mask[ctx.handler.index()]
            || !self.spec.cpu_filter.map(|f| f == ctx.cpu).unwrap_or(true)
        {
            return;
        }
        if let Some(max) = self.spec.max_injections {
            if self.injections_done >= max {
                return;
            }
        }
        self.filtered_calls += 1;
        if !self.spec.armed(ctx.step) {
            return;
        }
        match self.spec.time_trigger {
            // Ablation D1: fire at the first matching entry past each
            // period boundary.
            Some(period) => {
                if ctx.step < self.next_deadline {
                    return;
                }
                self.next_deadline = ctx.step + period;
            }
            // The paper's trigger: once every `rate` calls.
            None => {
                if !self.filtered_calls.is_multiple_of(self.spec.rate) {
                    return;
                }
            }
        }
        let faults = self.spec.model.apply(ctx.regs, &mut self.rng);
        if faults.is_empty() {
            return;
        }
        ctx.mark_touched();
        self.injections_done += 1;
        self.log.push(InjectionRecord {
            step: ctx.step,
            handler: ctx.handler,
            cpu: ctx.cpu,
            filtered_call: self.filtered_calls,
            faults,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Intensity;
    use certify_arch::RegisterFile;

    fn call(injector: &mut Injector, handler: HandlerKind, cpu: CpuId, n: u64) {
        let mut regs = RegisterFile::new();
        for i in 0..n {
            let mut ctx = HookCtx {
                handler,
                cpu,
                call_index: i + 1,
                step: i,
                regs: &mut regs,
                touched: false,
            };
            injector.on_handler_entry(&mut ctx);
        }
    }

    #[test]
    fn fires_every_rate_calls() {
        let spec = InjectionSpec::new(
            Intensity::Medium,
            [HandlerKind::ArchHandleTrap],
            Some(CpuId(1)),
        )
        .with_rate(10);
        let mut injector = Injector::new(spec, 1);
        let log = injector.log();
        call(&mut injector, HandlerKind::ArchHandleTrap, CpuId(1), 35);
        assert_eq!(log.len(), 3); // calls 10, 20, 30
        let records = log.records();
        assert_eq!(records[0].filtered_call, 10);
        assert_eq!(records[2].filtered_call, 30);
    }

    #[test]
    fn filter_excludes_other_cpu_and_handler() {
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_rate(5);
        let mut injector = Injector::new(spec, 1);
        let log = injector.log();
        call(&mut injector, HandlerKind::ArchHandleTrap, CpuId(0), 50);
        call(&mut injector, HandlerKind::ArchHandleHvc, CpuId(1), 50);
        assert!(log.is_empty());
        call(&mut injector, HandlerKind::ArchHandleTrap, CpuId(1), 5);
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn max_injections_caps_firing() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_rate(2)
            .with_max_injections(3);
        let mut injector = Injector::new(spec, 9);
        let log = injector.log();
        call(&mut injector, HandlerKind::ArchHandleTrap, CpuId(1), 100);
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn deterministic_across_seeds() {
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_rate(7);
        let mut a = Injector::new(spec.clone(), 1234);
        let mut b = Injector::new(spec, 1234);
        let (log_a, log_b) = (a.log(), b.log());
        call(&mut a, HandlerKind::ArchHandleTrap, CpuId(1), 70);
        call(&mut b, HandlerKind::ArchHandleTrap, CpuId(1), 70);
        assert_eq!(log_a.records(), log_b.records());
        assert!(!log_a.is_empty());
    }

    #[test]
    fn time_trigger_fires_on_period_boundaries() {
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_time_trigger(100);
        let mut injector = Injector::new(spec, 3);
        let log = injector.log();
        let mut regs = RegisterFile::new();
        // Handler entries at steps 0, 50, 100, …, 450: deadlines at
        // 100 (fires at step 100), 200, 300, 400.
        for step in (0..500).step_by(50) {
            let mut ctx = HookCtx {
                handler: HandlerKind::ArchHandleTrap,
                cpu: CpuId(1),
                call_index: step / 50 + 1,
                step,
                regs: &mut regs,
                touched: false,
            };
            injector.on_handler_entry(&mut ctx);
        }
        let steps: Vec<u64> = log.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![0, 100, 200, 300, 400]);
    }

    #[test]
    fn time_trigger_waits_for_a_matching_entry() {
        // Entries arrive sparsely: the injection lands on the first
        // entry after each deadline, not on the deadline itself.
        let spec = InjectionSpec::e3_nonroot_trap_medium().with_time_trigger(100);
        let mut injector = Injector::new(spec, 3);
        let log = injector.log();
        let mut regs = RegisterFile::new();
        for step in [30u64, 170, 180, 390] {
            let mut ctx = HookCtx {
                handler: HandlerKind::ArchHandleTrap,
                cpu: CpuId(1),
                call_index: 1,
                step,
                regs: &mut regs,
                touched: false,
            };
            injector.on_handler_entry(&mut ctx);
        }
        let steps: Vec<u64> = log.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![30, 170, 390]);
    }

    #[test]
    fn window_gates_firing_without_stopping_the_count() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_rate(10)
            .with_window(25, 60);
        let mut injector = Injector::new(spec, 1);
        let log = injector.log();
        let mut regs = RegisterFile::new();
        // One call per step: the rate-10 cadence would fire at calls
        // 10..=100, but only steps 25..60 are armed.
        for step in 0..100u64 {
            let mut ctx = HookCtx {
                handler: HandlerKind::ArchHandleTrap,
                cpu: CpuId(1),
                call_index: step + 1,
                step,
                regs: &mut regs,
                touched: false,
            };
            injector.on_handler_entry(&mut ctx);
        }
        let steps: Vec<u64> = log.records().iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![29, 39, 49, 59]);
        assert_eq!(injector.filtered_calls(), 100, "calls counted throughout");
    }

    #[test]
    fn record_captures_faults() {
        let spec = InjectionSpec::e2_nonroot_high().with_rate(1);
        let mut injector = Injector::new(spec, 5);
        let log = injector.log();
        call(&mut injector, HandlerKind::ArchHandleHvc, CpuId(1), 1);
        let records = log.records();
        assert_eq!(records.len(), 1);
        // High intensity: three corrupted registers.
        assert_eq!(records[0].faults.len(), 3);
        assert!(!records[0].to_string().is_empty());
    }
}

//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds fully offline with inert serde stand-ins, so
//! anything that needs a *real* serialized form rolls its own — the
//! binary [`crate::codec`] for the shard wire protocol, and this
//! module for human/tool-facing JSON: `certify-lint --json` diagnostic
//! reports today, the ROADMAP's `RunReport` JSON export next.
//!
//! Only the writing half exists (no parser): a [`Json`] value tree is
//! built programmatically and rendered with [`Json::render`]. Output
//! is deterministic — object keys keep their insertion order — and
//! strings are escaped per RFC 8259 (quotes, backslashes, control
//! characters).

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number. Non-finite values render as `null`
    /// (JSON has no NaN/Infinity).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys render in the order given (no sorting, no
    /// dedup) so output is deterministic and diff-friendly.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience for `Json::Str(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Renders the tree as compact JSON (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a JSON string literal, escaping per RFC 8259.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::str("hi").render(), "\"hi\"");
    }

    #[test]
    fn containers_render_in_order() {
        let value = Json::obj([
            ("b", Json::U64(1)),
            ("a", Json::Arr(vec![Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(value.render(), "{\"b\":1,\"a\":[null,false]}");
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let s = Json::str("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::Arr(Vec::new()).render(), "[]");
        assert_eq!(Json::Obj(Vec::new()).render(), "{}");
    }
}

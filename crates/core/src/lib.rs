//! `certify-core` — the paper's contribution: a fault-injection
//! framework for assessing a partitioning hypervisor as an ISO 26262
//! *Safety Element out of Context* (SEooC).
//!
//! The framework follows Figure 2 of the paper:
//!
//! ```text
//!  test plan ──► fault injection test ──► log file ──► analytics
//!    (spec)        (injector + system)     (serial +     (certify-
//!                                           events)       analysis)
//! ```
//!
//! * [`fault`] — the fault models: the classical single-bit-flip
//!   transient fault plus the multi-register variant of the paper's
//!   *high* intensity level and the extension models of the future-work
//!   section (double bit, stuck-at, register replacement);
//! * [`spec`] — injection specifications: target handlers, CPU filter,
//!   occurrence rate ("once every given number of calls"), intensity
//!   presets [`spec::Intensity::Medium`] / [`spec::Intensity::High`],
//!   injection windows, and the memory-domain [`spec::MemorySpec`];
//! * [`injector`] — the [`certify_hypervisor::InjectionHook`]
//!   implementation that counts filtered handler calls and applies
//!   faults on cadence, recording every injection;
//! * [`memfault`] — the memory fault models (bit flips, stuck-at
//!   words, page bursts, stage-2 descriptor corruption, comm-region
//!   corruption) and the [`memfault::MemTarget`] address sampler;
//! * [`meminjector`] — the step-driven memory injector firing those
//!   models on the same cadence/window triggers;
//! * [`system`] — the full testbed: board + hypervisor + root Linux
//!   guest + FreeRTOS guest, orchestrated step by step;
//! * [`classify`] — the outcome classifier producing the paper's
//!   categories (*correct*, *invalid arguments*, *inconsistent state*,
//!   *panic park*, *CPU park*);
//! * [`campaign`] — seeded, optionally parallel campaigns of
//!   independent trials, streamed (sink + online stats, O(workers)
//!   resident reports) or buffered;
//! * [`certificate`] — [`certificate::ScenarioCertificate`], the
//!   pre-flight abstract-interpretation certificate produced by
//!   `certify-lint`, plus the [`certificate::ConformanceMonitor`]
//!   sink wrapper enforcing it at runtime;
//! * [`sink`] — the [`sink::TrialSink`] streaming consumer trait and
//!   stock sinks;
//! * [`stats`] — [`stats::CampaignStats`], the online constant-size
//!   campaign aggregates;
//! * [`codec`] — the hand-rolled binary wire codec that ships
//!   scenarios to, and stats back from, `certify-shard` worker
//!   processes;
//! * [`json`] — the hand-rolled JSON writer behind `certify-lint
//!   --json`, the report exports (`RunReport::to_json` and friends)
//!   and the telemetry snapshots;
//! * [`telemetry`] — the `certify_obs` bridge: the
//!   [`telemetry::EngineTelemetry`] bundle observed campaign runs
//!   record into, and JSON views of metrics and progress snapshots;
//! * [`trace`] — trial tracing: the per-trial flight recorder's
//!   [`trace::TraceConfig`], the anomaly [`trace::DumpPolicy`] and the
//!   [`trace::TraceDump`] artifact with its JSON / Chrome-trace
//!   exports;
//! * [`profiler`] — golden-run profiling that ranks handler
//!   activations and (re)derives the paper's three injection points.
//!
//! # Quickstart
//!
//! ```
//! use certify_core::campaign::{Campaign, Scenario};
//!
//! // Three seeded trials of the paper's Figure-3 experiment.
//! let campaign = Campaign::new(Scenario::e3_fig3(), 3, 0xC0FFEE);
//! let result = campaign.run();
//! assert_eq!(result.trials.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod certificate;
pub mod classify;
pub mod codec;
pub mod fault;
pub mod injector;
pub mod json;
pub mod memfault;
pub mod meminjector;
pub mod profiler;
pub mod sink;
pub mod spec;
pub mod stats;
pub mod system;
pub mod telemetry;
pub mod trace;

pub use campaign::{Campaign, CampaignResult, Scenario, TrialResult, TrialRunner};
pub use certificate::{ConformanceMonitor, ConformanceViolation, PhaseBound, ScenarioCertificate};
pub use classify::{classify, Outcome, RunReport};
pub use codec::{decode_exact, encode_to_vec, DecodeError, Reader, Wire};
pub use fault::{AppliedFault, FaultModel};
pub use injector::{InjectionRecord, Injector};
pub use json::Json;
pub use memfault::{
    AppliedMemFault, MemFaultModel, MemFaultSkip, MemRegionKind, MemTarget, RamCoverage,
    SkipPrediction,
};
pub use meminjector::{MemInjectionLog, MemInjectionRecord, MemInjector};
pub use profiler::{profile_golden_run, ProfileReport};
pub use sink::{CollectSink, NullSink, TrialSink};
pub use spec::{InjectionSpec, InjectionWindow, Intensity, MemorySpec};
pub use stats::{CampaignStats, CountSummary};
pub use system::System;
pub use telemetry::{
    engine_metrics_to_json, histogram_to_json, progress_to_json, shard_metrics_to_json,
    EngineTelemetry,
};
pub use trace::{DumpPolicy, TraceConfig, TraceDump, DEFAULT_TRACE_CAPACITY};

//! Memory fault models and the address-space sampler.
//!
//! The paper's future-work section asks for "a wider and customizable
//! set of fault models" beyond register bit-flips. This module is that
//! wider set for *memory*: transient corruption of physical RAM words,
//! bursts across a page, corruption of the hypervisor's stage-2
//! translation descriptors (via [`certify_arch::mmu`]) and of the
//! per-cell communication region it publishes cell state through (via
//! [`certify_hypervisor::commregion`]).
//!
//! The pieces parallel the register machinery in [`crate::fault`]:
//! a [`MemFaultModel`] says *how* to corrupt, a [`MemTarget`] samples
//! *where* from configurable regions with the campaign's seeded RNG,
//! and [`AppliedMemFault`] records exactly what changed (before/after
//! bytes) for the post-run analytics.

use certify_arch::mmu::{desc, PAGE_SIZE};
use certify_board::ram::OutOfRange;
use certify_board::{memmap, Machine};
use certify_hypervisor::cell::ROOT_CELL;
use certify_hypervisor::{commregion, CellId, Hypervisor};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A sampled address-space region a memory fault can land in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MemRegionKind {
    /// The root (Linux) cell's RAM slice.
    RootRam,
    /// The non-root (FreeRTOS) cell's RAM slice.
    NonRootRam,
    /// The inter-cell shared-memory page.
    Ivshmem,
    /// The non-root cell's communication region (the four words the
    /// hypervisor publishes cell state through).
    CommRegion,
    /// The non-root cell's stage-2 translation descriptors, addressed
    /// by the IPA they translate.
    Stage2Tables,
    /// An arbitrary physical window (may deliberately cover unmapped
    /// space to exercise the skipped-injection path).
    Custom {
        /// Window base address.
        base: u32,
        /// Window size in bytes.
        size: u32,
    },
}

impl MemRegionKind {
    /// The named (non-custom) regions, in report order.
    pub const ALL: [MemRegionKind; 5] = [
        MemRegionKind::RootRam,
        MemRegionKind::NonRootRam,
        MemRegionKind::Ivshmem,
        MemRegionKind::CommRegion,
        MemRegionKind::Stage2Tables,
    ];

    /// A short identifier for reports.
    pub fn name(self) -> &'static str {
        match self {
            MemRegionKind::RootRam => "root-ram",
            MemRegionKind::NonRootRam => "nonroot-ram",
            MemRegionKind::Ivshmem => "ivshmem",
            MemRegionKind::CommRegion => "comm-region",
            MemRegionKind::Stage2Tables => "stage2-tables",
            MemRegionKind::Custom { .. } => "custom",
        }
    }

    /// The `[base, base + size)` address span sampled for this region.
    /// For [`MemRegionKind::Stage2Tables`] the span is the IPA space
    /// whose descriptors are under attack.
    pub fn span(self) -> (u32, u32) {
        match self {
            MemRegionKind::RootRam => (memmap::ROOT_RAM_BASE, memmap::ROOT_RAM_SIZE),
            MemRegionKind::NonRootRam => (memmap::RTOS_RAM_BASE, memmap::RTOS_RAM_SIZE),
            MemRegionKind::Ivshmem => (memmap::IVSHMEM_BASE, memmap::IVSHMEM_SIZE),
            MemRegionKind::CommRegion => (memmap::RTOS_RAM_BASE, 0x10),
            MemRegionKind::Stage2Tables => (memmap::RTOS_RAM_BASE, memmap::RTOS_RAM_SIZE),
            MemRegionKind::Custom { base, size } => (base, size),
        }
    }

    /// The cell whose guest is the natural victim of corruption in
    /// this region.
    fn victim(self, hv: &Hypervisor) -> Option<CellId> {
        match self {
            MemRegionKind::RootRam => Some(ROOT_CELL),
            MemRegionKind::Custom { base, size } => {
                if memmap::in_region(base, memmap::ROOT_RAM_BASE, memmap::ROOT_RAM_SIZE) {
                    Some(ROOT_CELL)
                } else {
                    let _ = size;
                    hv.first_nonroot_cell()
                }
            }
            _ => hv.first_nonroot_cell(),
        }
    }
}

impl fmt::Display for MemRegionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Address-space sampler: draws a `(region, word-aligned address)`
/// pair uniformly — first a region, then an offset inside it — using
/// the campaign's seeded RNG.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemTarget {
    regions: Vec<MemRegionKind>,
}

impl MemTarget {
    /// A sampler over the given regions.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty, any region spans fewer than four
    /// bytes, or a (custom) region wraps the 32-bit address space.
    pub fn new(regions: impl IntoIterator<Item = MemRegionKind>) -> MemTarget {
        let regions: Vec<MemRegionKind> = regions.into_iter().collect();
        assert!(!regions.is_empty(), "mem target needs at least one region");
        for region in &regions {
            let (base, size) = region.span();
            assert!(size >= 4, "region {region} is too small");
            assert!(
                base.checked_add(size - 1).is_some(),
                "region {region} wraps the 32-bit address space"
            );
        }
        MemTarget { regions }
    }

    /// All five named regions.
    pub fn all() -> MemTarget {
        MemTarget::new(MemRegionKind::ALL)
    }

    /// The E6 sweep's victim set: non-root RAM, stage-2 tables and the
    /// communication region.
    pub fn e6() -> MemTarget {
        MemTarget::new([
            MemRegionKind::NonRootRam,
            MemRegionKind::Stage2Tables,
            MemRegionKind::CommRegion,
        ])
    }

    /// A sampler pinned to one region.
    pub fn only(region: MemRegionKind) -> MemTarget {
        MemTarget::new([region])
    }

    /// The configured regions.
    pub fn regions(&self) -> &[MemRegionKind] {
        &self.regions
    }

    /// Draws one `(region, word-aligned address)` sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> (MemRegionKind, u32) {
        let region = self.regions[rng.gen_range(0..self.regions.len())];
        let (base, size) = region.span();
        let words = (size / 4).max(1);
        let addr = base + 4 * rng.gen_range(0..words);
        (region, addr)
    }
}

/// Where a memory fault was physically applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemLocus {
    /// A 32-bit word of physical RAM.
    RamWord,
    /// A stage-2 translation descriptor (raw [`desc`] encoding).
    Stage2Descriptor,
    /// A word of a cell's communication region.
    CommWord,
}

impl fmt::Display for MemLocus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MemLocus::RamWord => "ram",
            MemLocus::Stage2Descriptor => "s2-desc",
            MemLocus::CommWord => "comm",
        })
    }
}

/// One concrete memory corruption that was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AppliedMemFault {
    /// The sampled target region.
    pub region: MemRegionKind,
    /// What kind of word was corrupted.
    pub locus: MemLocus,
    /// The corrupted address (an IPA for descriptor faults).
    pub addr: u32,
    /// First affected word before corruption.
    pub before: u32,
    /// First affected word after corruption.
    pub after: u32,
    /// Bytes affected (4 for word faults, larger for bursts).
    pub len: u32,
    /// Whether the fault hit *live* state — resident RAM, a valid
    /// descriptor, or the comm region — and is therefore behaviourally
    /// visible rather than latent in pristine DRAM.
    pub live: bool,
}

impl fmt::Display for AppliedMemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{:#010x} {}: {:08x} -> {:08x}",
            self.region, self.addr, self.locus, self.before, self.after
        )?;
        if self.len > 4 {
            write!(f, " ({}B)", self.len)?;
        }
        if self.live {
            f.write_str(" live")?;
        }
        Ok(())
    }
}

/// Why an injection attempt was skipped instead of applied. Skips are
/// recorded in the trial report — they must never panic a campaign
/// worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemFaultSkip {
    /// The sampled address fell outside the RAM window.
    OutOfRange {
        /// The faulting address.
        addr: u32,
    },
    /// The fault needed a non-root victim cell but none exists yet.
    NoVictimCell,
}

impl fmt::Display for MemFaultSkip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemFaultSkip::OutOfRange { addr } => {
                write!(f, "address {addr:#010x} outside RAM window")
            }
            MemFaultSkip::NoVictimCell => f.write_str("no non-root victim cell exists"),
        }
    }
}

impl From<OutOfRange> for MemFaultSkip {
    fn from(e: OutOfRange) -> MemFaultSkip {
        MemFaultSkip::OutOfRange { addr: e.addr }
    }
}

/// How a region's `[base, base + size)` span relates to the DRAM
/// window — the static version of the runtime
/// [`MemFaultSkip::OutOfRange`] check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RamCoverage {
    /// Every address of the span is DRAM: RAM-word faults here can
    /// never skip.
    Inside,
    /// Part of the span is DRAM, part is not: a sample may skip.
    Straddles,
    /// No address of the span is DRAM: every RAM-word fault sampled
    /// here skips.
    Outside,
}

impl RamCoverage {
    /// Classifies a region span against the DRAM window.
    pub fn of(region: MemRegionKind) -> RamCoverage {
        let (base, size) = region.span();
        // u64 arithmetic: spans may legally end exactly at 2^32.
        let (start, end) = (base as u64, base as u64 + size as u64);
        let (ram_start, ram_end) = (
            memmap::RAM_BASE as u64,
            memmap::RAM_BASE as u64 + memmap::RAM_SIZE as u64,
        );
        if start >= ram_start && end <= ram_end {
            RamCoverage::Inside
        } else if end <= ram_start || start >= ram_end {
            RamCoverage::Outside
        } else {
            RamCoverage::Straddles
        }
    }
}

/// What kinds of [`MemFaultSkip`] a `(model, target)` pair can
/// statically produce. Computed by
/// [`crate::spec::MemorySpec::skip_prediction`]; the linter warns when
/// skips are *guaranteed*, and the campaign engine debug-asserts that
/// every runtime skip was predicted as *possible*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SkipPrediction {
    /// Some sampled address may fall outside the RAM window
    /// ([`MemFaultSkip::OutOfRange`]).
    pub out_of_range_possible: bool,
    /// Some configured region lies entirely outside the RAM window —
    /// every sample landing in it skips.
    pub out_of_range_guaranteed: bool,
    /// The model/target needs a non-root victim cell, so
    /// [`MemFaultSkip::NoVictimCell`] can occur while none exists.
    pub no_victim_possible: bool,
}

impl SkipPrediction {
    /// Predicts the skips `model` over `target` can produce.
    ///
    /// The mapping mirrors [`MemFaultModel::apply`]'s dispatch:
    /// [`MemFaultModel::CommStateCorrupt`] always writes the comm
    /// region inside RTOS RAM (no skips); descriptor attacks
    /// ([`MemFaultModel::DescriptorInvalidate`], or any word model on
    /// [`MemRegionKind::Stage2Tables`]) need a victim cell but never
    /// touch physical RAM; word models on the remaining regions write
    /// RAM and can go out of range there.
    pub fn of(model: &MemFaultModel, target: &MemTarget) -> SkipPrediction {
        let mut prediction = SkipPrediction::default();
        if matches!(model, MemFaultModel::CommStateCorrupt) {
            return prediction;
        }
        for &region in target.regions() {
            let descriptor_path = matches!(model, MemFaultModel::DescriptorInvalidate)
                || region == MemRegionKind::Stage2Tables;
            if descriptor_path {
                prediction.no_victim_possible = true;
            } else {
                match RamCoverage::of(region) {
                    RamCoverage::Inside => {}
                    RamCoverage::Straddles => prediction.out_of_range_possible = true,
                    RamCoverage::Outside => {
                        prediction.out_of_range_possible = true;
                        prediction.out_of_range_guaranteed = true;
                    }
                }
            }
        }
        prediction
    }

    /// Whether a recorded skip reason (the [`MemFaultSkip`] display
    /// string) was predicted as possible. Unknown reason strings are
    /// accepted — a future skip kind must not fail old assertions.
    pub fn predicts(&self, reason: &str) -> bool {
        if reason.contains("outside RAM window") {
            self.out_of_range_possible
        } else if reason.contains("victim cell") {
            self.no_victim_possible
        } else {
            true
        }
    }
}

/// A memory fault model: how to corrupt the sampled location.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemFaultModel {
    /// One random bit of the sampled 32-bit word.
    SingleBitFlip,
    /// Two distinct random bits of the sampled word.
    DoubleBitFlip,
    /// The sampled word forced to a fixed value (stuck-at).
    WordStuckAt {
        /// The stuck value (0 models stuck-at-0, `0xffff_ffff`
        /// stuck-at-1).
        value: u32,
    },
    /// A burst overwriting `words` consecutive words from the start of
    /// the sampled page with one random pattern.
    PageBurst {
        /// Burst length in 32-bit words.
        words: u32,
    },
    /// The stage-2 descriptor covering the sampled address is
    /// invalidated in the owning cell's translation table — every
    /// later guest access through it takes a translation fault.
    DescriptorInvalidate,
    /// The victim cell's published communication-region state word is
    /// replaced with an undecodable value (what `jailhouse cell list`
    /// would choke on).
    CommStateCorrupt,
}

impl MemFaultModel {
    /// Stuck-at-0 on the sampled word.
    pub fn stuck_at_zero() -> MemFaultModel {
        MemFaultModel::WordStuckAt { value: 0 }
    }

    /// A default 16-word (64-byte cache-line-burst-sized) page burst.
    pub fn page_burst() -> MemFaultModel {
        MemFaultModel::PageBurst { words: 16 }
    }

    /// The E6 sweep's model set.
    pub fn e6_models() -> Vec<MemFaultModel> {
        vec![
            MemFaultModel::SingleBitFlip,
            MemFaultModel::DoubleBitFlip,
            MemFaultModel::stuck_at_zero(),
            MemFaultModel::page_burst(),
            MemFaultModel::DescriptorInvalidate,
            MemFaultModel::CommStateCorrupt,
        ]
    }

    /// A short identifier for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MemFaultModel::SingleBitFlip => "mem-single-bit-flip",
            MemFaultModel::DoubleBitFlip => "mem-double-bit-flip",
            MemFaultModel::WordStuckAt { .. } => "word-stuck-at",
            MemFaultModel::PageBurst { .. } => "page-burst",
            MemFaultModel::DescriptorInvalidate => "descriptor-invalidate",
            MemFaultModel::CommStateCorrupt => "comm-state-corrupt",
        }
    }

    /// Applies the model at the sampled `(region, addr)` pair, drawing
    /// any further randomness (bit positions, burst patterns) from
    /// `rng`. Returns the recorded corruptions, or the reason the
    /// injection was skipped.
    ///
    /// Faults that hit *live* guest RAM additionally raise a
    /// corruption notice for the owning cell through
    /// [`Hypervisor::notify_corruption`], mirroring the wild-store
    /// propagation path; descriptor and comm-region faults propagate
    /// naturally (translation faults, corrupted published state).
    ///
    /// # Errors
    ///
    /// Returns [`MemFaultSkip`] when the sampled address is outside the
    /// RAM window or no victim cell exists — never panics.
    pub fn apply<R: Rng>(
        &self,
        region: MemRegionKind,
        addr: u32,
        machine: &mut Machine,
        hv: &mut Hypervisor,
        rng: &mut R,
    ) -> Result<Vec<AppliedMemFault>, MemFaultSkip> {
        match self {
            MemFaultModel::CommStateCorrupt => comm_state_corrupt(machine, hv, rng),
            MemFaultModel::DescriptorInvalidate => {
                let victim = region.victim(hv).ok_or(MemFaultSkip::NoVictimCell)?;
                let resident = machine.ram().resident_page_addrs();
                let table = hv
                    .cell_stage2_mut(victim)
                    .ok_or(MemFaultSkip::NoVictimCell)?;
                let addr = if region == MemRegionKind::Stage2Tables {
                    live_table_ipa(&resident, table, addr, rng)
                } else {
                    addr
                };
                let before = table.descriptor_word(addr);
                table.set_descriptor_word(addr, 0);
                Ok(vec![AppliedMemFault {
                    region,
                    locus: MemLocus::Stage2Descriptor,
                    addr,
                    before,
                    after: 0,
                    len: 4,
                    live: before & desc::VALID != 0,
                }])
            }
            word_model if region == MemRegionKind::Stage2Tables => {
                let victim = region.victim(hv).ok_or(MemFaultSkip::NoVictimCell)?;
                let resident = machine.ram().resident_page_addrs();
                let table = hv
                    .cell_stage2_mut(victim)
                    .ok_or(MemFaultSkip::NoVictimCell)?;
                // Like a TLB, only descriptors the victim actually
                // translates matter: retarget the sampled IPA onto the
                // resident working set covered by the table (keeping
                // the uniform draw as the fallback).
                let addr = live_table_ipa(&resident, table, addr, rng);
                match word_model {
                    MemFaultModel::PageBurst { words } => {
                        // Garble `words` consecutive descriptors with
                        // one pattern.
                        let words = burst_words(*words);
                        let pattern = rng.gen::<u32>();
                        let first_page = addr & !(PAGE_SIZE - 1);
                        let mut first_before = 0;
                        let mut live = false;
                        for i in 0..words {
                            let Some(page) = first_page.checked_add(i * PAGE_SIZE) else {
                                break;
                            };
                            let before = table.descriptor_word(page);
                            table.set_descriptor_word(page, pattern);
                            live |= before != pattern;
                            if i == 0 {
                                first_before = before;
                            }
                        }
                        Ok(vec![AppliedMemFault {
                            region,
                            locus: MemLocus::Stage2Descriptor,
                            addr: first_page,
                            before: first_before,
                            after: pattern,
                            len: words * 4,
                            live,
                        }])
                    }
                    _ => {
                        let before = table.descriptor_word(addr);
                        let after = word_model.mutate_word(before, rng);
                        table.set_descriptor_word(addr, after);
                        Ok(vec![AppliedMemFault {
                            region,
                            locus: MemLocus::Stage2Descriptor,
                            addr,
                            before,
                            after,
                            len: 4,
                            live: before != after,
                        }])
                    }
                }
            }
            word_model => {
                let locus = if region == MemRegionKind::CommRegion {
                    MemLocus::CommWord
                } else {
                    MemLocus::RamWord
                };
                let resident = machine.ram().is_resident(addr);
                let (fault, len, changed) = match word_model {
                    MemFaultModel::PageBurst { words } => {
                        let words = burst_words(*words);
                        let page = addr & !(PAGE_SIZE - 1);
                        let pattern = rng.gen::<u32>();
                        let (first, changed) =
                            machine.ram_mut().splat_range(page, words, pattern)?;
                        (first, words * 4, changed > 0)
                    }
                    MemFaultModel::SingleBitFlip | MemFaultModel::DoubleBitFlip => {
                        let mask = word_model.flip_mask(rng);
                        let fault = machine.ram_mut().flip_bits32(addr, mask)?;
                        (fault, 4, fault.before != fault.after)
                    }
                    MemFaultModel::WordStuckAt { value } => {
                        let fault = machine.ram_mut().force32(addr, *value)?;
                        (fault, 4, fault.before != fault.after)
                    }
                    // CommStateCorrupt / DescriptorInvalidate are
                    // dispatched by the earlier match arms.
                    _ => unreachable!("non-word model reached the RAM path"),
                };
                let live = resident && changed;
                if live {
                    if let Some(victim) = region.victim(hv) {
                        hv.notify_corruption(victim);
                    }
                }
                Ok(vec![AppliedMemFault {
                    region,
                    locus,
                    addr: fault.addr,
                    before: fault.before,
                    after: fault.after,
                    len,
                    live,
                }])
            }
        }
    }

    /// The XOR mask of the bit-flip models (zero for the others).
    /// Flips are self-inverse: the same RNG draws applied twice
    /// restore the original value.
    fn flip_mask<R: Rng>(&self, rng: &mut R) -> u32 {
        match self {
            MemFaultModel::SingleBitFlip => 1 << rng.gen_range(0..32u8),
            MemFaultModel::DoubleBitFlip => {
                let first = rng.gen_range(0..32u8);
                let mut second = rng.gen_range(0..32u8);
                while second == first {
                    second = rng.gen_range(0..32u8);
                }
                (1 << first) | (1 << second)
            }
            _ => 0,
        }
    }

    /// The word-transformation at the heart of the non-burst models.
    fn mutate_word<R: Rng>(&self, before: u32, rng: &mut R) -> u32 {
        match self {
            MemFaultModel::SingleBitFlip | MemFaultModel::DoubleBitFlip => {
                before ^ self.flip_mask(rng)
            }
            MemFaultModel::WordStuckAt { value } => *value,
            _ => before,
        }
    }
}

impl fmt::Display for MemFaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Clamps a burst length to `[1, one page]` of 32-bit words — the
/// model is a *page-sized* burst, and an unbounded count would
/// overflow the byte-length bookkeeping.
fn burst_words(words: u32) -> u32 {
    words.clamp(1, PAGE_SIZE / 4)
}

/// Retargets a stage-2 descriptor attack onto the victim's *live*
/// translation working set: the materialised (resident) RAM pages the
/// table actually maps — on real hardware, the TLB-hot descriptors.
/// Falls back to the uniformly sampled `fallback` IPA when the working
/// set is empty (early boot).
fn live_table_ipa<R: Rng>(
    resident: &[u32],
    table: &certify_arch::Stage2Table,
    fallback: u32,
    rng: &mut R,
) -> u32 {
    let candidates: Vec<u32> = resident
        .iter()
        .copied()
        .filter(|&page| table.descriptor_word(page) & desc::VALID != 0)
        .collect();
    if candidates.is_empty() {
        fallback
    } else {
        candidates[rng.gen_range(0..candidates.len())]
    }
}

/// [`MemFaultModel::CommStateCorrupt`]: replace the victim's published
/// state word with an undecodable value.
fn comm_state_corrupt<R: Rng>(
    machine: &mut Machine,
    hv: &mut Hypervisor,
    rng: &mut R,
) -> Result<Vec<AppliedMemFault>, MemFaultSkip> {
    let base = hv
        .first_nonroot_cell()
        .and_then(|id| hv.cell(id))
        .and_then(|cell| cell.comm_region())
        .map(|region| region.base())
        .unwrap_or(memmap::RTOS_RAM_BASE);
    let addr = base + commregion::STATE_OFFSET;
    // Bit 8 set guarantees `commregion::decode_state` rejects the word.
    let garbage = rng.gen::<u32>() | 0x100;
    let fault = machine.ram_mut().force32(addr, garbage)?;
    Ok(vec![AppliedMemFault {
        region: MemRegionKind::CommRegion,
        locus: MemLocus::CommWord,
        addr,
        before: fault.before,
        after: fault.after,
        len: 4,
        live: true,
    }])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn bare_system() -> (Machine, Hypervisor) {
        (
            Machine::new_banana_pi(),
            Hypervisor::new(certify_hypervisor::SystemConfig::banana_pi_demo()),
        )
    }

    #[test]
    fn sampler_stays_inside_the_region_and_word_aligned() {
        let target = MemTarget::e6();
        let mut r = rng(1);
        for _ in 0..500 {
            let (region, addr) = target.sample(&mut r);
            let (base, size) = region.span();
            assert!(memmap::in_region(addr, base, size), "{region} {addr:#x}");
            assert_eq!(addr % 4, 0);
        }
    }

    #[test]
    fn sampler_covers_every_configured_region() {
        let target = MemTarget::all();
        let mut r = rng(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            seen.insert(target.sample(&mut r).0.name());
        }
        assert_eq!(seen.len(), MemRegionKind::ALL.len());
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_target_rejected() {
        let _ = MemTarget::new([]);
    }

    #[test]
    #[should_panic(expected = "wraps the 32-bit address space")]
    fn wrapping_custom_region_rejected() {
        let _ = MemTarget::only(MemRegionKind::Custom {
            base: 0xffff_f000,
            size: 0x2000,
        });
    }

    #[test]
    fn oversized_bursts_are_clamped_to_one_page() {
        let (mut machine, mut hv) = bare_system();
        let addr = memmap::RTOS_RAM_BASE + 0x5000;
        let faults = MemFaultModel::PageBurst { words: u32::MAX }
            .apply(
                MemRegionKind::NonRootRam,
                addr,
                &mut machine,
                &mut hv,
                &mut rng(20),
            )
            .unwrap();
        assert_eq!(faults[0].len, PAGE_SIZE, "burst capped at one page");
    }

    #[test]
    fn single_bit_flip_corrupts_exactly_one_bit_of_ram() {
        let (mut machine, mut hv) = bare_system();
        let addr = memmap::RTOS_RAM_BASE + 0x100;
        machine.ram_mut().write32(addr, 0x5555_5555).unwrap();
        let faults = MemFaultModel::SingleBitFlip
            .apply(
                MemRegionKind::NonRootRam,
                addr,
                &mut machine,
                &mut hv,
                &mut rng(3),
            )
            .unwrap();
        assert_eq!(faults.len(), 1);
        assert_eq!((faults[0].before ^ faults[0].after).count_ones(), 1);
        assert_eq!(machine.ram().read32(addr).unwrap(), faults[0].after);
        assert!(faults[0].live, "resident page hit is live");
    }

    #[test]
    fn flips_of_pristine_dram_are_latent() {
        let (mut machine, mut hv) = bare_system();
        let addr = memmap::ROOT_RAM_BASE + 0x2000_0000;
        let faults = MemFaultModel::SingleBitFlip
            .apply(
                MemRegionKind::RootRam,
                addr,
                &mut machine,
                &mut hv,
                &mut rng(4),
            )
            .unwrap();
        assert!(!faults[0].live, "non-resident page is latent");
        assert!(hv.take_corruption_notices().is_empty());
    }

    #[test]
    fn live_ram_hit_raises_a_corruption_notice() {
        let (mut machine, mut hv) = bare_system();
        let addr = memmap::ROOT_RAM_BASE + 0x1000;
        machine.ram_mut().write32(addr, 7).unwrap();
        MemFaultModel::stuck_at_zero()
            .apply(
                MemRegionKind::RootRam,
                addr,
                &mut machine,
                &mut hv,
                &mut rng(5),
            )
            .unwrap();
        assert_eq!(hv.take_corruption_notices(), vec![ROOT_CELL]);
    }

    #[test]
    fn page_burst_overwrites_the_page_start() {
        let (mut machine, mut hv) = bare_system();
        let addr = memmap::RTOS_RAM_BASE + 0x3008;
        let faults = MemFaultModel::PageBurst { words: 8 }
            .apply(
                MemRegionKind::NonRootRam,
                addr,
                &mut machine,
                &mut hv,
                &mut rng(6),
            )
            .unwrap();
        assert_eq!(faults[0].len, 32);
        assert_eq!(faults[0].addr, memmap::RTOS_RAM_BASE + 0x3000);
        let pattern = machine.ram().read32(faults[0].addr).unwrap();
        assert_eq!(machine.ram().read32(faults[0].addr + 28).unwrap(), pattern);
    }

    #[test]
    fn out_of_range_sample_is_skipped_not_panicking() {
        let (mut machine, mut hv) = bare_system();
        let hole = 0x1000_0000; // between devices and DRAM: unmapped
        let err = MemFaultModel::SingleBitFlip
            .apply(
                MemRegionKind::Custom {
                    base: hole,
                    size: 0x1000,
                },
                hole,
                &mut machine,
                &mut hv,
                &mut rng(7),
            )
            .unwrap_err();
        assert_eq!(err, MemFaultSkip::OutOfRange { addr: hole });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn descriptor_faults_without_a_victim_cell_are_skipped() {
        let (mut machine, mut hv) = bare_system();
        let err = MemFaultModel::DescriptorInvalidate
            .apply(
                MemRegionKind::Stage2Tables,
                memmap::RTOS_RAM_BASE,
                &mut machine,
                &mut hv,
                &mut rng(8),
            )
            .unwrap_err();
        assert_eq!(err, MemFaultSkip::NoVictimCell);
    }

    #[test]
    fn comm_state_corrupt_writes_an_undecodable_state() {
        let (mut machine, mut hv) = bare_system();
        let faults = MemFaultModel::CommStateCorrupt
            .apply(
                MemRegionKind::CommRegion,
                memmap::RTOS_RAM_BASE,
                &mut machine,
                &mut hv,
                &mut rng(9),
            )
            .unwrap();
        assert_eq!(faults[0].locus, MemLocus::CommWord);
        let word = machine.ram().read32(faults[0].addr).unwrap();
        assert!(commregion::decode_state(word).is_none());
    }

    #[test]
    fn bit_flip_models_are_self_inverse() {
        for model in [MemFaultModel::SingleBitFlip, MemFaultModel::DoubleBitFlip] {
            let once = model.mutate_word(0xdead_beef, &mut rng(10));
            let twice = model.mutate_word(once, &mut rng(10));
            assert_ne!(once, 0xdead_beef);
            assert_eq!(twice, 0xdead_beef, "{model} not self-inverse");
        }
    }

    #[test]
    fn same_seed_same_faults() {
        let model = MemFaultModel::DoubleBitFlip;
        let (mut ma, mut hva) = bare_system();
        let (mut mb, mut hvb) = bare_system();
        let addr = memmap::IVSHMEM_BASE + 0x40;
        let fa = model
            .apply(
                MemRegionKind::Ivshmem,
                addr,
                &mut ma,
                &mut hva,
                &mut rng(11),
            )
            .unwrap();
        let fb = model
            .apply(
                MemRegionKind::Ivshmem,
                addr,
                &mut mb,
                &mut hvb,
                &mut rng(11),
            )
            .unwrap();
        assert_eq!(fa, fb);
    }

    #[test]
    fn ram_coverage_classifies_spans() {
        for region in MemRegionKind::ALL {
            assert_eq!(RamCoverage::of(region), RamCoverage::Inside, "{region}");
        }
        let hole = MemRegionKind::Custom {
            base: 0x1000_0000,
            size: 0x1000,
        };
        assert_eq!(RamCoverage::of(hole), RamCoverage::Outside);
        let straddle = MemRegionKind::Custom {
            base: memmap::RAM_BASE - 0x100,
            size: 0x200,
        };
        assert_eq!(RamCoverage::of(straddle), RamCoverage::Straddles);
        // A span ending exactly at 2^32 must not wrap the arithmetic.
        let top = MemRegionKind::Custom {
            base: 0xffff_f000,
            size: 0x1000,
        };
        assert_eq!(RamCoverage::of(top), RamCoverage::Outside);
    }

    #[test]
    fn skip_prediction_mirrors_apply_dispatch() {
        // In-RAM word faults: no skips possible.
        let clean = SkipPrediction::of(
            &MemFaultModel::SingleBitFlip,
            &MemTarget::only(MemRegionKind::NonRootRam),
        );
        assert_eq!(clean, SkipPrediction::default());

        // Comm-state corruption never skips, whatever the target says.
        let comm = SkipPrediction::of(
            &MemFaultModel::CommStateCorrupt,
            &MemTarget::only(MemRegionKind::Custom {
                base: 0x1000_0000,
                size: 0x1000,
            }),
        );
        assert_eq!(comm, SkipPrediction::default());

        // Descriptor attacks need a victim cell but never touch RAM.
        let desc = SkipPrediction::of(&MemFaultModel::DescriptorInvalidate, &MemTarget::all());
        assert!(desc.no_victim_possible && !desc.out_of_range_possible);
        let stage2 = SkipPrediction::of(
            &MemFaultModel::SingleBitFlip,
            &MemTarget::only(MemRegionKind::Stage2Tables),
        );
        assert!(stage2.no_victim_possible && !stage2.out_of_range_possible);

        // Word faults into a hole are guaranteed to skip.
        let hole = SkipPrediction::of(
            &MemFaultModel::SingleBitFlip,
            &MemTarget::only(MemRegionKind::Custom {
                base: 0x1000_0000,
                size: 0x1000,
            }),
        );
        assert!(hole.out_of_range_possible && hole.out_of_range_guaranteed);
        assert!(hole.predicts("address 0x10000000 outside RAM window"));
        assert!(!hole.predicts("no non-root victim cell exists"));
        assert!(hole.predicts("some future skip reason"), "unknown accepted");
    }

    #[test]
    fn display_renders_region_and_bytes() {
        let fault = AppliedMemFault {
            region: MemRegionKind::NonRootRam,
            locus: MemLocus::RamWord,
            addr: 0x4310_0000,
            before: 0,
            after: 0x100,
            len: 4,
            live: true,
        };
        let text = fault.to_string();
        assert!(text.contains("nonroot-ram@0x43100000"));
        assert!(text.contains("00000000 -> 00000100"));
        assert!(text.ends_with("live"));
    }
}

//! The memory-fault injector: fires [`crate::memfault::MemFaultModel`]s
//! on the same cadence/window triggers as the register [`crate::Injector`].
//!
//! The register injector corrupts the live register context from
//! inside the handler hook; memory faults instead need the whole
//! machine (RAM, the victim cell's stage-2 table, the comm region), so
//! the memory injector is driven by the orchestrator once per
//! simulator step: it watches the hypervisor's per-handler call
//! counters for the spec's filtered call stream and applies one fault
//! every `rate`-th call — exactly the "once every given number of
//! calls to the target functions" trigger of the paper, retargeted at
//! memory.

use crate::memfault::AppliedMemFault;
use crate::spec::MemorySpec;
use certify_board::Machine;
use certify_hypervisor::Hypervisor;
use certify_obs::trace::{TraceEvent, TraceKind, TraceLog, NO_CPU};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, Mutex};

/// One memory-injection attempt: either the applied corruptions or
/// the reason the attempt was skipped (skips never panic a worker).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemInjectionRecord {
    /// Simulator step of the attempt.
    pub step: u64,
    /// The filtered-stream call count that triggered it.
    pub filtered_call: u64,
    /// The concrete corruptions applied (empty when skipped).
    pub faults: Vec<AppliedMemFault>,
    /// Why the attempt was skipped, if it was.
    pub skipped: Option<String>,
}

impl MemInjectionRecord {
    /// Whether the attempt actually corrupted something.
    pub fn applied(&self) -> bool {
        self.skipped.is_none() && !self.faults.is_empty()
    }
}

impl fmt::Display for MemInjectionRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] mem call#{}:", self.step, self.filtered_call)?;
        if let Some(reason) = &self.skipped {
            return write!(f, " skipped ({reason})");
        }
        for fault in &self.faults {
            write!(f, " {fault}")?;
        }
        Ok(())
    }
}

/// Shared, cloneable view of a memory injector's record log.
#[derive(Debug, Clone, Default)]
pub struct MemInjectionLog {
    inner: Arc<Mutex<Vec<MemInjectionRecord>>>,
}

impl MemInjectionLog {
    /// Snapshot of all attempts so far.
    pub fn records(&self) -> Vec<MemInjectionRecord> {
        self.inner.lock().expect("mem injection log lock").clone()
    }

    /// Number of attempts so far (applied + skipped).
    pub fn len(&self) -> usize {
        self.inner.lock().expect("mem injection log lock").len()
    }

    /// Whether no attempt has been made yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of attempts that actually corrupted something.
    pub fn applied(&self) -> usize {
        self.inner
            .lock()
            .expect("mem injection log lock")
            .iter()
            .filter(|r| r.applied())
            .count()
    }

    fn push(&self, record: MemInjectionRecord) {
        self.inner
            .lock()
            .expect("mem injection log lock")
            .push(record);
    }
}

/// The memory-fault injector.
#[derive(Debug)]
pub struct MemInjector {
    spec: Arc<MemorySpec>,
    rng: StdRng,
    /// Next filtered-call threshold that fires an injection.
    next_fire: u64,
    injections_done: u64,
    log: MemInjectionLog,
    /// The causal trace sink, if a flight recorder is attached; every
    /// applied or skipped attempt is recorded into it.
    tracer: Option<TraceLog>,
}

impl MemInjector {
    /// Creates a memory injector for `spec`, seeded deterministically.
    /// The spec is taken via `Into<Arc<_>>` so campaign workers can
    /// share one allocation across thousands of trials.
    ///
    /// # Panics
    ///
    /// Panics if `spec.rate` is zero.
    pub fn new(spec: impl Into<Arc<MemorySpec>>, seed: u64) -> MemInjector {
        let spec = spec.into();
        assert!(spec.rate > 0, "memory injection rate must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let phase = if spec.phase_jitter {
            use rand::Rng;
            rng.gen_range(0..spec.rate)
        } else {
            0
        };
        MemInjector {
            next_fire: spec.rate - phase,
            spec,
            rng,
            injections_done: 0,
            log: MemInjectionLog::default(),
            tracer: None,
        }
    }

    /// Attaches a causal trace log; every injection attempt (applied
    /// or skipped) is recorded into it.
    pub fn set_tracer(&mut self, tracer: TraceLog) {
        self.tracer = Some(tracer);
    }

    /// A shared handle to the injection log.
    pub fn log(&self) -> MemInjectionLog {
        self.log.clone()
    }

    /// The specification driving this injector.
    pub fn spec(&self) -> &MemorySpec {
        self.spec.as_ref()
    }

    /// The spec's filtered call stream: calls to the target handlers
    /// from the filtered CPU, as counted by the hypervisor.
    fn filtered_calls(&self, machine: &Machine, hv: &Hypervisor) -> u64 {
        let cpus: Vec<u32> = match self.spec.cpu_filter {
            Some(cpu) => vec![cpu.0],
            None => (0..machine.num_cpus() as u32).collect(),
        };
        self.spec
            .targets
            .iter()
            .flat_map(|&handler| {
                cpus.iter()
                    .map(move |&c| hv.call_count(handler, certify_arch::CpuId(c)))
            })
            .sum()
    }

    /// Called by the orchestrator once per simulator step, after the
    /// stack has advanced: fires (possibly several) pending memory
    /// injections against the machine and hypervisor state.
    pub fn on_step(&mut self, machine: &mut Machine, hv: &mut Hypervisor) {
        let step = machine.now();
        let total = self.filtered_calls(machine, hv);
        while total >= self.next_fire {
            let trigger = self.next_fire;
            self.next_fire += self.spec.rate;
            if let Some(max) = self.spec.max_injections {
                if self.injections_done >= max {
                    return;
                }
            }
            if !self.spec.armed(step) {
                continue;
            }
            let (region, addr) = self.spec.target.sample(&mut self.rng);
            let record = match self
                .spec
                .model
                .apply(region, addr, machine, hv, &mut self.rng)
            {
                Ok(faults) => {
                    self.injections_done += 1;
                    MemInjectionRecord {
                        step,
                        filtered_call: trigger,
                        faults,
                        skipped: None,
                    }
                }
                // Satellite guard: unmapped addresses (or a missing
                // victim cell) become a recorded skip, never a panic.
                Err(skip) => MemInjectionRecord {
                    step,
                    filtered_call: trigger,
                    faults: Vec::new(),
                    skipped: Some(skip.to_string()),
                },
            };
            if let Some(tracer) = &self.tracer {
                let (kind, arg_a) = if record.applied() {
                    (TraceKind::MemInjectionApplied, record.faults.len() as u64)
                } else {
                    (TraceKind::MemInjectionSkipped, trigger)
                };
                tracer.record(TraceEvent {
                    step,
                    cpu: NO_CPU,
                    kind,
                    arg_a,
                    arg_b: 0,
                });
            }
            self.log.push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memfault::{MemFaultModel, MemRegionKind, MemTarget};
    use certify_arch::CpuId;
    use certify_board::memmap;
    use certify_hypervisor::{HandlerKind, SystemConfig};

    fn bare() -> (Machine, Hypervisor) {
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        (machine, Hypervisor::new(SystemConfig::banana_pi_demo()))
    }

    /// Drives `n` info hypercalls from CPU 0 (each bumps the
    /// `arch_handle_hvc` call counter).
    fn pump_calls(machine: &mut Machine, hv: &mut Hypervisor, n: u64) {
        for _ in 0..n {
            let _ = hv.handle_hvc(
                machine,
                CpuId(0),
                certify_hypervisor::hypercall::HVC_HYPERVISOR_GET_INFO,
                0,
                0,
            );
        }
    }

    fn spec_on_hvc(model: MemFaultModel, target: MemTarget) -> MemorySpec {
        MemorySpec::new(model, target, [HandlerKind::ArchHandleHvc], Some(CpuId(0)))
    }

    #[test]
    fn fires_every_rate_calls() {
        let (mut machine, mut hv) = bare();
        let spec = spec_on_hvc(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::NonRootRam),
        )
        .with_rate(10);
        let mut injector = MemInjector::new(spec, 1);
        let log = injector.log();
        pump_calls(&mut machine, &mut hv, 35);
        injector.on_step(&mut machine, &mut hv);
        assert_eq!(log.len(), 3, "calls 10, 20, 30");
        assert_eq!(log.applied(), 3);
        let records = log.records();
        assert_eq!(records[0].filtered_call, 10);
        assert_eq!(records[2].filtered_call, 30);
    }

    #[test]
    fn cadence_survives_sparse_observation() {
        // The injector only observes the counters once per step; a
        // burst of calls between steps still yields one injection per
        // rate crossing.
        let (mut machine, mut hv) = bare();
        let spec = spec_on_hvc(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::Ivshmem),
        )
        .with_rate(5);
        let mut injector = MemInjector::new(spec, 2);
        pump_calls(&mut machine, &mut hv, 23);
        injector.on_step(&mut machine, &mut hv);
        assert_eq!(injector.log().len(), 4, "crossings at 5, 10, 15, 20");
    }

    #[test]
    fn max_injections_caps_applied_faults() {
        let (mut machine, mut hv) = bare();
        let spec = spec_on_hvc(
            MemFaultModel::stuck_at_zero(),
            MemTarget::only(MemRegionKind::NonRootRam),
        )
        .with_rate(2)
        .with_max_injections(3);
        let mut injector = MemInjector::new(spec, 3);
        pump_calls(&mut machine, &mut hv, 100);
        injector.on_step(&mut machine, &mut hv);
        assert_eq!(injector.log().applied(), 3);
    }

    #[test]
    fn out_of_range_addresses_are_recorded_as_skips() {
        let (mut machine, mut hv) = bare();
        let spec = spec_on_hvc(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::Custom {
                base: 0x1000_0000, // unmapped hole below DRAM
                size: 0x1000,
            }),
        )
        .with_rate(1);
        let mut injector = MemInjector::new(spec, 4);
        pump_calls(&mut machine, &mut hv, 3);
        injector.on_step(&mut machine, &mut hv);
        let records = injector.log().records();
        assert_eq!(records.len(), 3);
        for record in &records {
            assert!(!record.applied());
            let reason = record.skipped.as_deref().unwrap();
            assert!(reason.contains("outside RAM window"), "note: {reason}");
            assert!(record.to_string().contains("skipped"));
        }
    }

    #[test]
    fn window_gates_firing() {
        let (mut machine, mut hv) = bare();
        // The machine is at step 0 and never advanced: a window that
        // starts later never fires, whatever the call count.
        let spec = spec_on_hvc(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::NonRootRam),
        )
        .with_rate(1)
        .with_window(100, 200);
        let mut injector = MemInjector::new(spec, 5);
        pump_calls(&mut machine, &mut hv, 10);
        injector.on_step(&mut machine, &mut hv);
        assert!(injector.log().is_empty());
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let run = || {
            let (mut machine, mut hv) = bare();
            let spec = spec_on_hvc(MemFaultModel::DoubleBitFlip, MemTarget::e6()).with_rate(3);
            let mut injector = MemInjector::new(spec, 1234);
            pump_calls(&mut machine, &mut hv, 30);
            injector.on_step(&mut machine, &mut hv);
            injector.log().records()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn comm_region_faults_land_in_the_comm_page() {
        let (mut machine, mut hv) = bare();
        let spec = spec_on_hvc(
            MemFaultModel::CommStateCorrupt,
            MemTarget::only(MemRegionKind::CommRegion),
        )
        .with_rate(1);
        let mut injector = MemInjector::new(spec, 6);
        pump_calls(&mut machine, &mut hv, 1);
        injector.on_step(&mut machine, &mut hv);
        let records = injector.log().records();
        assert_eq!(records[0].faults.len(), 1);
        let fault = records[0].faults[0];
        assert!(memmap::in_region(fault.addr, memmap::RTOS_RAM_BASE, 0x10));
    }
}

//! Golden-run profiling: finding the injection points.
//!
//! §III: *"we decided to monitor some golden (fault-free) runs of the
//! hypervisor in order to find preliminary fault injection points.
//! This profiling operation yielded three candidates functions"* —
//! `irqchip_handle_irq()`, `arch_handle_trap()` and
//! `arch_handle_hvc()`. The profiler reruns that methodology: a
//! fault-free system is driven through the full bring-up-and-run
//! workload, per-handler per-CPU activation counts are collected from
//! the hypervisor, and the handlers are ranked.

use crate::system::System;
use certify_arch::CpuId;
use certify_guest_linux::MgmtScript;
use certify_hypervisor::HandlerKind;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One profile row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRow {
    /// The handler.
    pub handler: HandlerKind,
    /// Calls observed on CPU 0 (root cell).
    pub cpu0_calls: u64,
    /// Calls observed on CPU 1 (non-root cell).
    pub cpu1_calls: u64,
}

impl ProfileRow {
    /// Total calls across CPUs.
    pub fn total(&self) -> u64 {
        self.cpu0_calls + self.cpu1_calls
    }
}

/// The golden-run profile.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Rows sorted by total activations, descending.
    pub rows: Vec<ProfileRow>,
    /// Steps the golden run executed.
    pub steps: u64,
}

impl ProfileReport {
    /// Handlers with observed activity, most active first — the
    /// "candidate functions" of the paper.
    pub fn candidates(&self) -> Vec<HandlerKind> {
        self.rows
            .iter()
            .filter(|r| r.total() > 0)
            .map(|r| r.handler)
            .collect()
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "golden-run profile over {} steps\n{:<22} {:>10} {:>10} {:>10}\n",
            self.steps, "handler", "cpu0", "cpu1", "total"
        ));
        for row in &self.rows {
            out.push_str(&format!(
                "{:<22} {:>10} {:>10} {:>10}\n",
                row.handler.function_name(),
                row.cpu0_calls,
                row.cpu1_calls,
                row.total()
            ));
        }
        out
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Runs a fault-free bring-up-and-run workload for `steps` and
/// profiles handler activations.
pub fn profile_golden_run(steps: u64) -> ProfileReport {
    let mut system = System::new(MgmtScript::bring_up_and_run(steps));
    system.run(steps);
    profile_system(&system, steps)
}

/// Profiles an already-run system.
pub fn profile_system(system: &System, steps: u64) -> ProfileReport {
    let mut rows: Vec<ProfileRow> = HandlerKind::ALL
        .into_iter()
        .map(|handler| ProfileRow {
            handler,
            cpu0_calls: system.hv.call_count(handler, CpuId(0)),
            cpu1_calls: system.hv.call_count(handler, CpuId(1)),
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.total()));
    ProfileReport { rows, steps }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn golden_profile_finds_all_three_candidates() {
        let report = profile_golden_run(2500);
        let candidates = report.candidates();
        assert_eq!(candidates.len(), 3, "profile:\n{report}");
        // All three of the paper's functions are present.
        for handler in HandlerKind::ALL {
            assert!(candidates.contains(&handler));
        }
    }

    #[test]
    fn render_contains_function_names() {
        let report = profile_golden_run(1200);
        let text = report.render();
        assert!(text.contains("irqchip_handle_irq"));
        assert!(text.contains("arch_handle_trap"));
        assert!(text.contains("arch_handle_hvc"));
    }

    #[test]
    fn rows_are_sorted_descending() {
        let report = profile_golden_run(1500);
        for pair in report.rows.windows(2) {
            assert!(pair[0].total() >= pair[1].total());
        }
    }
}

//! Trial sinks: streaming consumers of campaign results.
//!
//! The buffered engine (`Campaign::run`) materialises every trial's
//! full [`RunReport`](crate::RunReport) before anything aggregates or
//! exports them — memory grows linearly with campaign size. A
//! [`TrialSink`] inverts that: the engine hands each finished
//! [`TrialResult`] to the sink *in seed order* and forgets it, so a
//! streamed campaign holds at most `workers` undelivered reports at
//! any time (see `Campaign::run_parallel_streamed`). Aggregation
//! happens online in [`CampaignStats`](crate::CampaignStats); exports
//! stream row by row (e.g. `certify_analysis`'s `CsvSink`). A future
//! multi-process shard is just a remote `TrialSink`.

use crate::campaign::TrialResult;
use crate::trace::TraceDump;

/// A streaming consumer of trial results.
///
/// The campaign engine calls [`TrialSink::accept`] exactly once per
/// trial, in seed order (`seq` counts 0, 1, 2, … and the trial's seed
/// is `base_seed + seq`), whatever worker count or OS scheduling
/// produced the trials. The sink owns the delivered result; dropping
/// it immediately is what gives streamed campaigns their bounded
/// memory.
pub trait TrialSink {
    /// Delivers trial number `seq` (0-based, in seed order).
    fn accept(&mut self, seq: usize, trial: TrialResult);

    /// Delivers trial `seq`'s flight-recorder dump, immediately after
    /// that trial's [`TrialSink::accept`]. Only called on traced
    /// campaigns ([`crate::Campaign::with_trace`]) and only for trials
    /// the dump policy selected; the default implementation discards
    /// the dump, so sinks that don't care never see tracing.
    fn accept_dump(&mut self, seq: usize, dump: TraceDump) {
        let _ = (seq, dump);
    }

    /// Bytes this sink has written to its output so far, if it
    /// measures that (`None` for sinks with no byte-shaped output).
    /// Observed campaign runs sample this into the `sink_bytes`
    /// telemetry counter after the last delivery.
    fn bytes_written(&self) -> Option<u64> {
        None
    }
}

/// A sink that drops every trial: run a campaign purely for its
/// online [`CampaignStats`](crate::CampaignStats).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TrialSink for NullSink {
    fn accept(&mut self, _seq: usize, _trial: TrialResult) {}
}

/// A sink that buffers every trial (and every delivered trace dump) —
/// the adapter the buffered `Campaign::run`/`run_parallel` are built
/// on.
#[derive(Debug, Clone, Default)]
pub struct CollectSink {
    trials: Vec<TrialResult>,
    dumps: Vec<(usize, TraceDump)>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The buffered trials, in seed order.
    pub fn into_trials(self) -> Vec<TrialResult> {
        self.trials
    }

    /// The buffered trace dumps, as `(seq, dump)` in seed order
    /// (empty unless the campaign was traced).
    pub fn dumps(&self) -> &[(usize, TraceDump)] {
        &self.dumps
    }

    /// Consumes the collector, returning trials and dumps.
    pub fn into_parts(self) -> (Vec<TrialResult>, Vec<(usize, TraceDump)>) {
        (self.trials, self.dumps)
    }
}

impl TrialSink for CollectSink {
    fn accept(&mut self, seq: usize, trial: TrialResult) {
        debug_assert_eq!(seq, self.trials.len(), "sink deliveries out of order");
        self.trials.push(trial);
    }

    fn accept_dump(&mut self, seq: usize, dump: TraceDump) {
        self.dumps.push((seq, dump));
    }
}

/// Any `FnMut(usize, TrialResult)` closure is a sink.
impl<F: FnMut(usize, TrialResult)> TrialSink for F {
    fn accept(&mut self, seq: usize, trial: TrialResult) {
        self(seq, trial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, Scenario};

    #[test]
    fn collect_sink_buffers_in_order() {
        let campaign = Campaign::new(Scenario::golden(400), 3, 9);
        let mut sink = CollectSink::new();
        campaign.run_streamed(&mut sink);
        let trials = sink.into_trials();
        assert_eq!(trials.len(), 3);
        assert_eq!(
            trials.iter().map(|t| t.seed).collect::<Vec<_>>(),
            vec![9, 10, 11]
        );
    }

    #[test]
    fn closures_are_sinks() {
        let campaign = Campaign::new(Scenario::golden(400), 2, 1);
        let mut seen = Vec::new();
        campaign.run_streamed(&mut |seq: usize, trial: TrialResult| {
            seen.push((seq, trial.seed));
        });
        assert_eq!(seen, vec![(0, 1), (1, 2)]);
    }
}

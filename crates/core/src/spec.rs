//! Injection specifications: what to target, when to fire.
//!
//! §III of the paper: *"The generated test plan consists of two
//! classes of testing, defined by the fault intensity level: the
//! medium level refers to a discontinuous bit flipping of a single
//! register, generated once every given number of calls to the target
//! functions, while the high level instead consists in a bit flip of
//! multiple registers at the time. […] The showcased tests have an
//! occurrence of once every 100 and 50 function calls for the medium
//! and hard intensity, respectively."*

use crate::fault::FaultModel;
use crate::memfault::{MemFaultModel, MemTarget};
use certify_arch::CpuId;
use certify_hypervisor::HandlerKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A half-open `[start, end)` step window an injector is armed in.
/// Outside the window matching calls are counted but never fired on —
/// the tool for campaigns that only attack e.g. the boot phase or
/// steady state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InjectionWindow {
    /// First step (inclusive) injections may fire.
    pub start: u64,
    /// First step (exclusive) injections stop firing.
    pub end: u64,
}

impl InjectionWindow {
    /// A window over `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn new(start: u64, end: u64) -> InjectionWindow {
        assert!(start < end, "injection window must be non-empty");
        InjectionWindow { start, end }
    }

    /// Whether `step` falls inside the window.
    pub fn contains(self, step: u64) -> bool {
        step >= self.start && step < self.end
    }
}

impl fmt::Display for InjectionWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Whether `step` is armed under a window list: an empty list means
/// the injector is armed for the whole run, otherwise any containing
/// window arms it. Windows may overlap and need not be sorted.
pub fn windows_arm(windows: &[InjectionWindow], step: u64) -> bool {
    windows.is_empty() || windows.iter().any(|w| w.contains(step))
}

/// The paper's two intensity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intensity {
    /// Single-register bit flip, once every 100 target calls.
    Medium,
    /// Multi-register bit flip, once every 50 target calls.
    High,
}

impl Intensity {
    /// The occurrence rate (fire every `rate` filtered calls).
    pub fn rate(self) -> u64 {
        match self {
            Intensity::Medium => 100,
            Intensity::High => 50,
        }
    }

    /// The fault model of this intensity.
    pub fn model(self) -> FaultModel {
        match self {
            Intensity::Medium => FaultModel::single_bit_flip(),
            Intensity::High => FaultModel::multi_register_flip(),
        }
    }
}

impl fmt::Display for Intensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intensity::Medium => f.write_str("medium"),
            Intensity::High => f.write_str("high"),
        }
    }
}

/// A full injection specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionSpec {
    /// Handlers to instrument (the paper profiles all three and
    /// injects into `arch_handle_trap` / `arch_handle_hvc`).
    pub targets: BTreeSet<HandlerKind>,
    /// Only inject when this CPU calls the handler ("we filter the
    /// injection to activate only when the CPU core 1 is calling the
    /// function"). `None` = any CPU.
    pub cpu_filter: Option<CpuId>,
    /// Fire on every `rate`-th filtered call.
    pub rate: u64,
    /// The fault model to apply.
    pub model: FaultModel,
    /// Stop after this many injections (`None` = unbounded).
    pub max_injections: Option<u64>,
    /// Start the call counter at a seed-derived offset in
    /// `[0, rate)`. On real hardware the injection cadence and the
    /// workload are not phase-locked — the test starts at an arbitrary
    /// point of the management cycle. Without jitter the cadence is
    /// deterministic relative to the call stream.
    pub phase_jitter: bool,
    /// Time-triggered mode (ablation D1): instead of firing every
    /// `rate`-th call, fire at the first matching handler entry after
    /// every `period` simulator steps. `None` = the paper's
    /// call-count trigger.
    pub time_trigger: Option<u64>,
    /// Only fire inside these step windows (empty = the whole run).
    /// Multiple windows let one campaign attack e.g. both the boot
    /// phase and a later steady-state stretch.
    pub windows: Vec<InjectionWindow>,
}

impl InjectionSpec {
    /// A specification from an intensity preset.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(
        intensity: Intensity,
        targets: impl IntoIterator<Item = HandlerKind>,
        cpu_filter: Option<CpuId>,
    ) -> InjectionSpec {
        let targets: BTreeSet<HandlerKind> = targets.into_iter().collect();
        assert!(
            !targets.is_empty(),
            "injection spec needs at least one target"
        );
        InjectionSpec {
            targets,
            cpu_filter,
            rate: intensity.rate(),
            model: intensity.model(),
            max_injections: None,
            phase_jitter: false,
            time_trigger: None,
            windows: Vec::new(),
        }
    }

    /// E1: high intensity on `arch_handle_hvc` + `arch_handle_trap`
    /// in root-cell context (CPU 0).
    pub fn e1_root_high() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc, HandlerKind::ArchHandleTrap],
            Some(CpuId(0)),
        )
    }

    /// E2: high intensity on the same handlers, filtered to CPU 1,
    /// with per-seed cadence phase (the campaign sweeps where in the
    /// lifecycle the injections land).
    pub fn e2_nonroot_high() -> InjectionSpec {
        let mut spec = InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc, HandlerKind::ArchHandleTrap],
            Some(CpuId(1)),
        );
        spec.phase_jitter = true;
        spec
    }

    /// E2, boot-window aligned: the deterministic reproduction of the
    /// paper's "pretty peculiar" observation. On CPU 1 the first two
    /// hypercalls of a run are `CPU_OFF` (hot-unplug) and `CPU_BOOT`
    /// (cell entry), so a rate-2 cadence with a single injection lands
    /// exactly on the cell-boot hypercall.
    pub fn e2_boot_window() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc],
            Some(CpuId(1)),
        )
        .with_rate(2)
        .with_max_injections(1)
    }

    /// E3 (Figure 3): medium intensity on the non-root cell's
    /// `arch_handle_trap`.
    pub fn e3_nonroot_trap_medium() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::Medium,
            [HandlerKind::ArchHandleTrap],
            Some(CpuId(1)),
        )
    }

    /// Whether a handler call matches the target/CPU filter.
    pub fn matches(&self, handler: HandlerKind, cpu: CpuId) -> bool {
        self.targets.contains(&handler) && self.cpu_filter.map(|f| f == cpu).unwrap_or(true)
    }

    /// Replaces the rate, returning the spec (builder style).
    pub fn with_rate(mut self, rate: u64) -> InjectionSpec {
        assert!(rate > 0, "rate must be non-zero");
        self.rate = rate;
        self
    }

    /// Enables per-seed cadence phase, returning the spec (builder
    /// style).
    pub fn with_phase_jitter(mut self) -> InjectionSpec {
        self.phase_jitter = true;
        self
    }

    /// Switches to the time-triggered mode (ablation D1), returning
    /// the spec (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_time_trigger(mut self, period: u64) -> InjectionSpec {
        assert!(period > 0, "trigger period must be non-zero");
        self.time_trigger = Some(period);
        self
    }

    /// Replaces the fault model, returning the spec (builder style).
    pub fn with_model(mut self, model: FaultModel) -> InjectionSpec {
        self.model = model;
        self
    }

    /// Caps the number of injections, returning the spec (builder
    /// style).
    pub fn with_max_injections(mut self, max: u64) -> InjectionSpec {
        self.max_injections = Some(max);
        self
    }

    /// Adds a `[start, end)` step window, returning the spec (builder
    /// style). The one-window call keeps its historical meaning; call
    /// it again (or use [`InjectionSpec::with_windows`]) to arm
    /// several disjoint phases of the run.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn with_window(mut self, start: u64, end: u64) -> InjectionSpec {
        self.windows.push(InjectionWindow::new(start, end));
        self
    }

    /// Replaces the window list, returning the spec (builder style).
    /// An empty list arms the injector for the whole run.
    pub fn with_windows(
        mut self,
        windows: impl IntoIterator<Item = InjectionWindow>,
    ) -> InjectionSpec {
        self.windows = windows.into_iter().collect();
        self
    }

    /// Whether injections are armed at `step` under the window list.
    pub fn armed(&self, step: u64) -> bool {
        windows_arm(&self.windows, step)
    }
}

/// A memory-fault injection specification — the memory-domain sibling
/// of [`InjectionSpec`]. The cadence triggers are shared: the injector
/// counts calls to the target handlers (filtered by CPU) and fires a
/// memory fault on every `rate`-th call, optionally only inside an
/// [`InjectionWindow`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Handlers whose (filtered) call stream drives the cadence.
    pub targets: BTreeSet<HandlerKind>,
    /// Only count calls from this CPU (`None` = any CPU).
    pub cpu_filter: Option<CpuId>,
    /// Fire on every `rate`-th filtered call.
    pub rate: u64,
    /// The memory fault model to apply.
    pub model: MemFaultModel,
    /// The address-space sampler drawing the corruption target.
    pub target: MemTarget,
    /// Stop after this many applied injections (`None` = unbounded).
    pub max_injections: Option<u64>,
    /// Start the cadence at a seed-derived phase in `[0, rate)`.
    pub phase_jitter: bool,
    /// Only fire inside these step windows (empty = the whole run).
    pub windows: Vec<InjectionWindow>,
}

impl MemorySpec {
    /// A specification firing `model` at addresses drawn by `target`,
    /// paced by the given handlers' call stream.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(
        model: MemFaultModel,
        target: MemTarget,
        targets: impl IntoIterator<Item = HandlerKind>,
        cpu_filter: Option<CpuId>,
    ) -> MemorySpec {
        let targets: BTreeSet<HandlerKind> = targets.into_iter().collect();
        assert!(!targets.is_empty(), "memory spec needs at least one target");
        MemorySpec {
            targets,
            cpu_filter,
            rate: Intensity::High.rate(),
            model,
            target,
            max_injections: None,
            phase_jitter: false,
            windows: Vec::new(),
        }
    }

    /// E6: `model` against `target`, paced like E3 by the non-root
    /// cell's trap/hypercall stream (CPU 1, once every 50 calls).
    pub fn e6_memory(model: MemFaultModel, target: MemTarget) -> MemorySpec {
        MemorySpec::new(
            model,
            target,
            [HandlerKind::ArchHandleTrap, HandlerKind::ArchHandleHvc],
            Some(CpuId(1)),
        )
    }

    /// Whether a handler call matches the target/CPU filter.
    pub fn matches(&self, handler: HandlerKind, cpu: CpuId) -> bool {
        self.targets.contains(&handler) && self.cpu_filter.map(|f| f == cpu).unwrap_or(true)
    }

    /// Replaces the rate, returning the spec (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `rate` is zero.
    pub fn with_rate(mut self, rate: u64) -> MemorySpec {
        assert!(rate > 0, "rate must be non-zero");
        self.rate = rate;
        self
    }

    /// Enables per-seed cadence phase, returning the spec (builder
    /// style).
    pub fn with_phase_jitter(mut self) -> MemorySpec {
        self.phase_jitter = true;
        self
    }

    /// Caps the number of injections, returning the spec (builder
    /// style).
    pub fn with_max_injections(mut self, max: u64) -> MemorySpec {
        self.max_injections = Some(max);
        self
    }

    /// Adds a `[start, end)` step window, returning the spec (builder
    /// style). Call repeatedly (or use [`MemorySpec::with_windows`])
    /// to arm several disjoint phases of the run.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty.
    pub fn with_window(mut self, start: u64, end: u64) -> MemorySpec {
        self.windows.push(InjectionWindow::new(start, end));
        self
    }

    /// Replaces the window list, returning the spec (builder style).
    /// An empty list arms the injector for the whole run.
    pub fn with_windows(
        mut self,
        windows: impl IntoIterator<Item = InjectionWindow>,
    ) -> MemorySpec {
        self.windows = windows.into_iter().collect();
        self
    }

    /// Whether injections are armed at `step` under the window list.
    pub fn armed(&self, step: u64) -> bool {
        windows_arm(&self.windows, step)
    }

    /// What kinds of skipped injection this spec can statically
    /// produce (see [`crate::memfault::SkipPrediction`]). The campaign
    /// engine debug-asserts runtime skips against this; `certify-lint`
    /// warns when skips are guaranteed.
    pub fn skip_prediction(&self) -> crate::memfault::SkipPrediction {
        crate::memfault::SkipPrediction::of(&self.model, &self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_presets_match_the_paper() {
        assert_eq!(Intensity::Medium.rate(), 100);
        assert_eq!(Intensity::High.rate(), 50);
        assert_eq!(Intensity::Medium.model().name(), "single-bit-flip");
        assert_eq!(Intensity::High.model().name(), "multi-register-flip");
    }

    #[test]
    fn e3_spec_targets_only_nonroot_trap() {
        let spec = InjectionSpec::e3_nonroot_trap_medium();
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(1)));
        assert!(!spec.matches(HandlerKind::ArchHandleTrap, CpuId(0)));
        assert!(!spec.matches(HandlerKind::ArchHandleHvc, CpuId(1)));
        assert!(!spec.matches(HandlerKind::IrqchipHandleIrq, CpuId(1)));
    }

    #[test]
    fn no_cpu_filter_matches_any_cpu() {
        let spec = InjectionSpec::new(Intensity::Medium, [HandlerKind::ArchHandleTrap], None);
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(0)));
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(1)));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = InjectionSpec::new(Intensity::Medium, [], None);
    }

    #[test]
    fn builders_apply() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_rate(10)
            .with_max_injections(2)
            .with_window(100, 900);
        assert_eq!(spec.rate, 10);
        assert_eq!(spec.max_injections, Some(2));
        assert_eq!(spec.windows, vec![InjectionWindow::new(100, 900)]);
    }

    #[test]
    fn window_lists_arm_any_containing_window() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_window(10, 20)
            .with_window(50, 60);
        assert_eq!(spec.windows.len(), 2);
        assert!(spec.armed(15));
        assert!(!spec.armed(30), "between the two windows");
        assert!(spec.armed(55));
        assert!(!spec.armed(60), "half-open upper bound");

        // An empty list arms the whole run; with_windows replaces.
        let always = InjectionSpec::e3_nonroot_trap_medium();
        assert!(always.armed(0) && always.armed(u64::MAX));
        let replaced = spec.with_windows([InjectionWindow::new(0, 5)]);
        assert_eq!(replaced.windows, vec![InjectionWindow::new(0, 5)]);
        assert!(!replaced.armed(15));

        let mem = MemorySpec::e6_memory(
            crate::memfault::MemFaultModel::SingleBitFlip,
            crate::memfault::MemTarget::e6(),
        )
        .with_window(10, 20)
        .with_window(50, 60);
        assert!(mem.armed(15) && mem.armed(55) && !mem.armed(30));
    }

    #[test]
    fn window_is_half_open() {
        let window = InjectionWindow::new(10, 20);
        assert!(!window.contains(9));
        assert!(window.contains(10));
        assert!(window.contains(19));
        assert!(!window.contains(20));
        assert_eq!(window.to_string(), "[10, 20)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let _ = InjectionWindow::new(5, 5);
    }

    #[test]
    fn memory_spec_matches_like_the_register_spec() {
        use crate::memfault::{MemFaultModel, MemTarget};
        let spec = MemorySpec::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6());
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(1)));
        assert!(!spec.matches(HandlerKind::ArchHandleTrap, CpuId(0)));
        assert!(!spec.matches(HandlerKind::IrqchipHandleIrq, CpuId(1)));
        assert_eq!(spec.rate, Intensity::High.rate());
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_memory_targets_rejected() {
        use crate::memfault::{MemFaultModel, MemTarget};
        let _ = MemorySpec::new(MemFaultModel::SingleBitFlip, MemTarget::all(), [], None);
    }
}

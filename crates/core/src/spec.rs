//! Injection specifications: what to target, when to fire.
//!
//! §III of the paper: *"The generated test plan consists of two
//! classes of testing, defined by the fault intensity level: the
//! medium level refers to a discontinuous bit flipping of a single
//! register, generated once every given number of calls to the target
//! functions, while the high level instead consists in a bit flip of
//! multiple registers at the time. […] The showcased tests have an
//! occurrence of once every 100 and 50 function calls for the medium
//! and hard intensity, respectively."*

use crate::fault::FaultModel;
use certify_arch::CpuId;
use certify_hypervisor::HandlerKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// The paper's two intensity presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Intensity {
    /// Single-register bit flip, once every 100 target calls.
    Medium,
    /// Multi-register bit flip, once every 50 target calls.
    High,
}

impl Intensity {
    /// The occurrence rate (fire every `rate` filtered calls).
    pub fn rate(self) -> u64 {
        match self {
            Intensity::Medium => 100,
            Intensity::High => 50,
        }
    }

    /// The fault model of this intensity.
    pub fn model(self) -> FaultModel {
        match self {
            Intensity::Medium => FaultModel::single_bit_flip(),
            Intensity::High => FaultModel::multi_register_flip(),
        }
    }
}

impl fmt::Display for Intensity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Intensity::Medium => f.write_str("medium"),
            Intensity::High => f.write_str("high"),
        }
    }
}

/// A full injection specification.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionSpec {
    /// Handlers to instrument (the paper profiles all three and
    /// injects into `arch_handle_trap` / `arch_handle_hvc`).
    pub targets: BTreeSet<HandlerKind>,
    /// Only inject when this CPU calls the handler ("we filter the
    /// injection to activate only when the CPU core 1 is calling the
    /// function"). `None` = any CPU.
    pub cpu_filter: Option<CpuId>,
    /// Fire on every `rate`-th filtered call.
    pub rate: u64,
    /// The fault model to apply.
    pub model: FaultModel,
    /// Stop after this many injections (`None` = unbounded).
    pub max_injections: Option<u64>,
    /// Start the call counter at a seed-derived offset in
    /// `[0, rate)`. On real hardware the injection cadence and the
    /// workload are not phase-locked — the test starts at an arbitrary
    /// point of the management cycle. Without jitter the cadence is
    /// deterministic relative to the call stream.
    pub phase_jitter: bool,
    /// Time-triggered mode (ablation D1): instead of firing every
    /// `rate`-th call, fire at the first matching handler entry after
    /// every `period` simulator steps. `None` = the paper's
    /// call-count trigger.
    pub time_trigger: Option<u64>,
}

impl InjectionSpec {
    /// A specification from an intensity preset.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(
        intensity: Intensity,
        targets: impl IntoIterator<Item = HandlerKind>,
        cpu_filter: Option<CpuId>,
    ) -> InjectionSpec {
        let targets: BTreeSet<HandlerKind> = targets.into_iter().collect();
        assert!(
            !targets.is_empty(),
            "injection spec needs at least one target"
        );
        InjectionSpec {
            targets,
            cpu_filter,
            rate: intensity.rate(),
            model: intensity.model(),
            max_injections: None,
            phase_jitter: false,
            time_trigger: None,
        }
    }

    /// E1: high intensity on `arch_handle_hvc` + `arch_handle_trap`
    /// in root-cell context (CPU 0).
    pub fn e1_root_high() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc, HandlerKind::ArchHandleTrap],
            Some(CpuId(0)),
        )
    }

    /// E2: high intensity on the same handlers, filtered to CPU 1,
    /// with per-seed cadence phase (the campaign sweeps where in the
    /// lifecycle the injections land).
    pub fn e2_nonroot_high() -> InjectionSpec {
        let mut spec = InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc, HandlerKind::ArchHandleTrap],
            Some(CpuId(1)),
        );
        spec.phase_jitter = true;
        spec
    }

    /// E2, boot-window aligned: the deterministic reproduction of the
    /// paper's "pretty peculiar" observation. On CPU 1 the first two
    /// hypercalls of a run are `CPU_OFF` (hot-unplug) and `CPU_BOOT`
    /// (cell entry), so a rate-2 cadence with a single injection lands
    /// exactly on the cell-boot hypercall.
    pub fn e2_boot_window() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::High,
            [HandlerKind::ArchHandleHvc],
            Some(CpuId(1)),
        )
        .with_rate(2)
        .with_max_injections(1)
    }

    /// E3 (Figure 3): medium intensity on the non-root cell's
    /// `arch_handle_trap`.
    pub fn e3_nonroot_trap_medium() -> InjectionSpec {
        InjectionSpec::new(
            Intensity::Medium,
            [HandlerKind::ArchHandleTrap],
            Some(CpuId(1)),
        )
    }

    /// Whether a handler call matches the target/CPU filter.
    pub fn matches(&self, handler: HandlerKind, cpu: CpuId) -> bool {
        self.targets.contains(&handler) && self.cpu_filter.map(|f| f == cpu).unwrap_or(true)
    }

    /// Replaces the rate, returning the spec (builder style).
    pub fn with_rate(mut self, rate: u64) -> InjectionSpec {
        assert!(rate > 0, "rate must be non-zero");
        self.rate = rate;
        self
    }

    /// Enables per-seed cadence phase, returning the spec (builder
    /// style).
    pub fn with_phase_jitter(mut self) -> InjectionSpec {
        self.phase_jitter = true;
        self
    }

    /// Switches to the time-triggered mode (ablation D1), returning
    /// the spec (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_time_trigger(mut self, period: u64) -> InjectionSpec {
        assert!(period > 0, "trigger period must be non-zero");
        self.time_trigger = Some(period);
        self
    }

    /// Replaces the fault model, returning the spec (builder style).
    pub fn with_model(mut self, model: FaultModel) -> InjectionSpec {
        self.model = model;
        self
    }

    /// Caps the number of injections, returning the spec (builder
    /// style).
    pub fn with_max_injections(mut self, max: u64) -> InjectionSpec {
        self.max_injections = Some(max);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intensity_presets_match_the_paper() {
        assert_eq!(Intensity::Medium.rate(), 100);
        assert_eq!(Intensity::High.rate(), 50);
        assert_eq!(Intensity::Medium.model().name(), "single-bit-flip");
        assert_eq!(Intensity::High.model().name(), "multi-register-flip");
    }

    #[test]
    fn e3_spec_targets_only_nonroot_trap() {
        let spec = InjectionSpec::e3_nonroot_trap_medium();
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(1)));
        assert!(!spec.matches(HandlerKind::ArchHandleTrap, CpuId(0)));
        assert!(!spec.matches(HandlerKind::ArchHandleHvc, CpuId(1)));
        assert!(!spec.matches(HandlerKind::IrqchipHandleIrq, CpuId(1)));
    }

    #[test]
    fn no_cpu_filter_matches_any_cpu() {
        let spec = InjectionSpec::new(Intensity::Medium, [HandlerKind::ArchHandleTrap], None);
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(0)));
        assert!(spec.matches(HandlerKind::ArchHandleTrap, CpuId(1)));
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_targets_rejected() {
        let _ = InjectionSpec::new(Intensity::Medium, [], None);
    }

    #[test]
    fn builders_apply() {
        let spec = InjectionSpec::e3_nonroot_trap_medium()
            .with_rate(10)
            .with_max_injections(2);
        assert_eq!(spec.rate, 10);
        assert_eq!(spec.max_injections, Some(2));
    }
}

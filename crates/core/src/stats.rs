//! Online campaign statistics.
//!
//! The value of a campaign is its aggregate outcome distribution
//! (Figure 3), not the pile of per-trial reports. [`CampaignStats`]
//! folds each [`TrialResult`] into constant-size aggregates as it is
//! delivered, so a streamed campaign of any size needs O(1) memory
//! for its statistics — the enabler for production-scale campaigns
//! and, later, multi-process sharding (shards merge their stats).

use crate::campaign::TrialResult;
use crate::classify::Outcome;
use crate::json::Json;
use crate::memfault::MemRegionKind;
use crate::sink::TrialSink;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Min/max/total summary of a per-trial count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CountSummary {
    /// Smallest per-trial count seen (0 when no trial was recorded).
    pub min: usize,
    /// Largest per-trial count seen.
    pub max: usize,
    /// Sum over all trials.
    pub total: u64,
}

impl CountSummary {
    fn record(&mut self, count: usize, first_trial: bool) {
        if first_trial {
            self.min = count;
            self.max = count;
        } else {
            self.min = self.min.min(count);
            self.max = self.max.max(count);
        }
        self.total += count as u64;
    }

    /// Folds another summary in. When `self` covers no trials yet its
    /// zeroed `min` is meaningless, so the other summary is adopted
    /// wholesale.
    fn merge(&mut self, other: &CountSummary, self_is_empty: bool) {
        if self_is_empty {
            *self = *other;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
            self.total += other.total;
        }
    }
}

impl fmt::Display for CountSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {} / max {} / total {}",
            self.min, self.max, self.total
        )
    }
}

/// Constant-size aggregates of a campaign, built one trial at a time.
///
/// `CampaignStats` is itself a [`TrialSink`], and every streamed run
/// also returns the stats it folded — so `run`, `run_streamed` and
/// `run_parallel_streamed` over the same seeds produce identical
/// stats (asserted by `tests/streaming.rs`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// The scenario that was run.
    pub scenario_name: String,
    /// Number of trials folded in.
    pub trials: usize,
    /// Outcome histogram.
    pub distribution: BTreeMap<Outcome, usize>,
    /// Trials with at least one register injection.
    pub injected_trials: usize,
    /// Trials with at least one applied memory injection.
    pub mem_injected_trials: usize,
    /// Per-region outcome attribution: each trial's outcome counted
    /// once for every region it applied at least one memory fault in.
    pub mem_region_distribution: BTreeMap<(MemRegionKind, Outcome), usize>,
    /// Per-trial register-injection counts.
    pub injections: CountSummary,
    /// Per-trial applied memory-injection counts.
    pub mem_injections: CountSummary,
    /// Panic-park trials whose armed watchdog expired (E5a detection).
    pub watchdog_detected: usize,
    /// Sum of first-expiry steps over those detected trials (for mean
    /// detection latency).
    pub watchdog_expiry_sum: u64,
    /// Inconsistent-state trials that raised at least one heartbeat
    /// monitor alarm (E5b detection).
    pub monitor_detected: usize,
    /// Monitor alarms summed over all trials (false-alarm audits).
    pub monitor_alarms_total: usize,
}

impl CampaignStats {
    /// Empty stats for the named scenario.
    pub fn new(scenario_name: impl Into<String>) -> CampaignStats {
        CampaignStats {
            scenario_name: scenario_name.into(),
            trials: 0,
            distribution: BTreeMap::new(),
            injected_trials: 0,
            mem_injected_trials: 0,
            mem_region_distribution: BTreeMap::new(),
            injections: CountSummary::default(),
            mem_injections: CountSummary::default(),
            watchdog_detected: 0,
            watchdog_expiry_sum: 0,
            monitor_detected: 0,
            monitor_alarms_total: 0,
        }
    }

    /// Folds one trial into the aggregates. The trial is only
    /// borrowed: callers that also forward it to a sink do so after
    /// recording.
    pub fn record(&mut self, trial: &TrialResult) {
        let first = self.trials == 0;
        self.trials += 1;
        *self.distribution.entry(trial.outcome).or_insert(0) += 1;
        if trial.injection_count > 0 {
            self.injected_trials += 1;
        }
        if trial.mem_injection_count > 0 {
            self.mem_injected_trials += 1;
        }
        self.injections.record(trial.injection_count, first);
        self.mem_injections.record(trial.mem_injection_count, first);

        Self::attribute_regions(trial, &mut self.mem_region_distribution);

        if trial.outcome == Outcome::PanicPark {
            if let Some(step) = trial.report.watchdog_first_expiry {
                self.watchdog_detected += 1;
                self.watchdog_expiry_sum += step;
            }
        }
        if trial.outcome == Outcome::InconsistentState && trial.report.monitor_alarms > 0 {
            self.monitor_detected += 1;
        }
        self.monitor_alarms_total += trial.report.monitor_alarms;
    }

    /// Attributes `trial`'s outcome to every region it applied at
    /// least one memory fault in, folding into `map`. Region dedup is
    /// a first-occurrence scan — O(k²) with k (applied faults per
    /// trial) tiny, and no scratch allocation on the per-trial path.
    pub(crate) fn attribute_regions(
        trial: &TrialResult,
        map: &mut BTreeMap<(MemRegionKind, Outcome), usize>,
    ) {
        let applied_faults = || {
            trial
                .report
                .mem_injections
                .iter()
                .filter(|r| r.applied())
                .flat_map(|r| r.faults.iter())
        };
        for (i, fault) in applied_faults().enumerate() {
            if applied_faults().take(i).any(|f| f.region == fault.region) {
                continue;
            }
            *map.entry((fault.region, trial.outcome)).or_insert(0) += 1;
        }
    }

    /// Trials with the given outcome.
    pub fn count(&self, outcome: Outcome) -> usize {
        self.distribution.get(&outcome).copied().unwrap_or(0)
    }

    /// Fraction of trials with the given outcome (0.0 for an empty
    /// campaign). Derived from the histogram — O(log outcomes), not a
    /// trial re-scan.
    pub fn fraction(&self, outcome: Outcome) -> f64 {
        if self.trials == 0 {
            return 0.0;
        }
        self.count(outcome) as f64 / self.trials as f64
    }

    /// Mean watchdog detection latency over detected panic-park
    /// trials, in steps (0 when nothing was detected).
    pub fn watchdog_mean_latency(&self) -> u64 {
        if self.watchdog_detected == 0 {
            0
        } else {
            self.watchdog_expiry_sum / self.watchdog_detected as u64
        }
    }

    /// Merges another shard's stats into this one (the multi-process
    /// sharding primitive: shards fold locally, the coordinator
    /// merges). Min/max summaries merge exactly; the scenario name is
    /// kept from `self`.
    pub fn merge(&mut self, other: &CampaignStats) {
        if other.trials == 0 {
            return;
        }
        let first = self.trials == 0;
        self.trials += other.trials;
        for (outcome, count) in &other.distribution {
            *self.distribution.entry(*outcome).or_insert(0) += count;
        }
        self.injected_trials += other.injected_trials;
        self.mem_injected_trials += other.mem_injected_trials;
        for (key, count) in &other.mem_region_distribution {
            *self.mem_region_distribution.entry(*key).or_insert(0) += count;
        }
        self.injections.merge(&other.injections, first);
        self.mem_injections.merge(&other.mem_injections, first);
        self.watchdog_detected += other.watchdog_detected;
        self.watchdog_expiry_sum += other.watchdog_expiry_sum;
        self.monitor_detected += other.monitor_detected;
        self.monitor_alarms_total += other.monitor_alarms_total;
    }

    /// The aggregates as a JSON value (via [`crate::json`]): the
    /// outcome distribution keyed by the paper's outcome names, the
    /// per-region attribution as an array of rows, and every
    /// detection counter — the machine-readable twin of the Display
    /// rendering.
    pub fn to_json(&self) -> Json {
        let count_summary = |s: &CountSummary| {
            Json::obj([
                ("min", Json::U64(s.min as u64)),
                ("max", Json::U64(s.max as u64)),
                ("total", Json::U64(s.total)),
            ])
        };
        Json::obj([
            ("scenario", Json::str(self.scenario_name.clone())),
            ("trials", Json::U64(self.trials as u64)),
            (
                "distribution",
                Json::Obj(
                    self.distribution
                        .iter()
                        .map(|(outcome, count)| (outcome.to_string(), Json::U64(*count as u64)))
                        .collect(),
                ),
            ),
            ("injected_trials", Json::U64(self.injected_trials as u64)),
            (
                "mem_injected_trials",
                Json::U64(self.mem_injected_trials as u64),
            ),
            (
                "mem_region_distribution",
                Json::Arr(
                    self.mem_region_distribution
                        .iter()
                        .map(|((region, outcome), count)| {
                            Json::obj([
                                ("region", Json::str(region.to_string())),
                                ("outcome", Json::str(outcome.to_string())),
                                ("count", Json::U64(*count as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("injections", count_summary(&self.injections)),
            ("mem_injections", count_summary(&self.mem_injections)),
            (
                "watchdog_detected",
                Json::U64(self.watchdog_detected as u64),
            ),
            (
                "watchdog_mean_latency_steps",
                Json::U64(self.watchdog_mean_latency()),
            ),
            ("monitor_detected", Json::U64(self.monitor_detected as u64)),
            (
                "monitor_alarms_total",
                Json::U64(self.monitor_alarms_total as u64),
            ),
        ])
    }
}

impl TrialSink for CampaignStats {
    fn accept(&mut self, _seq: usize, trial: TrialResult) {
        self.record(&trial);
    }
}

impl fmt::Display for CampaignStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "campaign {} ({} trials, {} reg-injected, {} mem-injected)",
            self.scenario_name, self.trials, self.injected_trials, self.mem_injected_trials
        )?;
        let total = self.trials.max(1);
        for (outcome, count) in &self.distribution {
            writeln!(
                f,
                "  {outcome:>20}: {count:4} ({:5.1}%)",
                100.0 * *count as f64 / total as f64
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{Campaign, Scenario};
    use crate::memfault::{MemFaultModel, MemTarget};
    use crate::sink::NullSink;

    #[test]
    fn stats_match_the_buffered_aggregates() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 5, 41);
        let result = campaign.run();
        let stats = campaign.run_streamed(&mut NullSink);
        assert_eq!(stats, result.stats());
        assert_eq!(stats.trials, 5);
        assert_eq!(stats.count(Outcome::InvalidArguments), 5);
        assert_eq!(stats.fraction(Outcome::InvalidArguments), 1.0);
        assert_eq!(stats.injected_trials, 5);
        assert!(stats.injections.min >= 1);
        assert!(stats.injections.total >= stats.injections.max as u64);
    }

    #[test]
    fn region_attribution_matches_the_buffered_walk() {
        let campaign = Campaign::new(
            Scenario::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()),
            6,
            0xE6,
        );
        let result = campaign.run();
        let stats = campaign.run_streamed(&mut NullSink);
        assert_eq!(
            stats.mem_region_distribution,
            result.mem_region_distribution()
        );
        assert_eq!(stats.mem_injected_trials, result.mem_injected_trials());
        assert!(stats.mem_injections.total > 0);
    }

    #[test]
    fn display_matches_the_buffered_display() {
        let campaign = Campaign::new(Scenario::e1_root_high(), 4, 7);
        let result = campaign.run();
        let stats = campaign.run_streamed(&mut NullSink);
        assert_eq!(stats.to_string(), result.to_string());
    }

    #[test]
    fn merge_equals_one_pass() {
        let campaign_a = Campaign::new(Scenario::e1_root_high(), 3, 100);
        let campaign_b = Campaign::new(Scenario::e1_root_high(), 4, 103);
        let whole = Campaign::new(Scenario::e1_root_high(), 7, 100);
        let mut merged = campaign_a.run_streamed(&mut NullSink);
        merged.merge(&campaign_b.run_streamed(&mut NullSink));
        assert_eq!(merged, whole.run_streamed(&mut NullSink));

        // Merging into empty stats adopts the shard's summaries.
        let mut empty = CampaignStats::new("e1-root-high");
        empty.merge(&merged);
        assert_eq!(empty, merged);
    }

    #[test]
    fn empty_stats_are_harmless() {
        let stats = CampaignStats::new("nothing");
        assert_eq!(stats.fraction(Outcome::Correct), 0.0);
        assert_eq!(stats.count(Outcome::Correct), 0);
        assert_eq!(stats.watchdog_mean_latency(), 0);
        assert!(stats.to_string().contains("0 trials"));
    }
}

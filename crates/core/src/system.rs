//! The assembled testbed: board + hypervisor + root Linux guest +
//! FreeRTOS guest, driven step by step.
//!
//! One [`System`] is one test run of Figure 2: it wires the hardware
//! setup of the paper (dual-core board, serial console), installs the
//! management script into the root guest, optionally installs a fault
//! injector into the hypervisor, and advances the whole stack one
//! simulator step at a time — delivering interrupts through
//! `irqchip_handle_irq`, running the CPU-hot-plug cell-boot protocol,
//! forwarding corruption notices, and stepping each cell's guest on
//! its own CPU.

use crate::injector::{InjectionLog, Injector};
use crate::meminjector::{MemInjectionLog, MemInjector};
use crate::spec::{InjectionSpec, MemorySpec};
use certify_arch::CpuId;
use certify_board::{memmap, Machine};
use certify_guest_linux::{LinuxGuest, MgmtScript};
use certify_hypervisor::hv::IrqDelivery;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{CellId, Guest, GuestCtx, Hypervisor, SystemConfig};
use certify_obs::trace::{TraceEvent, TraceKind, TraceLog, NO_CPU};
use certify_rtos::RtosGuest;
use std::sync::Arc;

/// Maximum interrupts drained per CPU per step (loop guard).
const MAX_IRQS_PER_STEP: usize = 8;

/// A complete, steppable testbed.
pub struct System {
    /// The board.
    pub machine: Machine,
    /// The hypervisor under test.
    pub hv: Hypervisor,
    /// The root-cell guest.
    pub linux: LinuxGuest,
    /// The non-root-cell guest.
    pub rtos: RtosGuest,
    /// Step at which the cell most recently entered the Running state
    /// from the root's perspective (for blank-output analysis).
    cell_start_step: Option<u64>,
    injection_log: Option<InjectionLog>,
    mem_injector: Option<MemInjector>,
    mem_injection_log: Option<MemInjectionLog>,
    steps_run: u64,
    rtos_broken_observed: bool,
    /// The causal trace sink, if a flight recorder is attached; the
    /// orchestrator records watchdog bites and corruption-notice
    /// deliveries into it (components hold their own clones).
    tracer: Option<TraceLog>,
    boot_failures: u64,
    /// Cached per-CPU cell ownership, refreshed only when the
    /// hypervisor's ownership epoch changes (ownership changes a
    /// handful of times per run; the step loop asks every step).
    owner_cache: Vec<Option<CellId>>,
    owner_epoch: u64,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("steps_run", &self.steps_run)
            .field("hv", &self.hv)
            .finish()
    }
}

impl System {
    /// Builds the paper's testbed with the given management script
    /// (owned, or shared via `Arc` so campaigns reuse one program
    /// across thousands of trials).
    pub fn new(script: impl Into<Arc<MgmtScript>>) -> System {
        Self::build(script.into(), false)
    }

    /// Like [`System::new`], with the E5b safety-heartbeat task added
    /// to the RTOS workload.
    pub fn new_with_heartbeat(script: impl Into<Arc<MgmtScript>>) -> System {
        Self::build(script.into(), true)
    }

    fn build(script: Arc<MgmtScript>, rtos_heartbeat: bool) -> System {
        // The testbed configuration is fixed (the paper's board), so
        // build it — and its serialized blobs — once per process
        // instead of once per campaign trial.
        struct Testbed {
            platform: SystemConfig,
            cell_entry: u32,
            system_blob: Vec<u8>,
            cell_blob: Vec<u8>,
        }
        static TESTBED: std::sync::OnceLock<Testbed> = std::sync::OnceLock::new();
        let testbed = TESTBED.get_or_init(|| {
            let platform = SystemConfig::banana_pi_demo();
            let cell_config = SystemConfig::freertos_cell();
            Testbed {
                system_blob: platform.serialize(),
                cell_blob: cell_config.serialize(),
                cell_entry: cell_config.entry,
                platform,
            }
        });
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        machine.cpu_mut(CpuId(1)).power_on();
        machine.timer_mut(CpuId(0)).start();
        let hv = Hypervisor::new(testbed.platform.clone());
        let linux = LinuxGuest::with_blobs(
            script,
            testbed.system_blob.clone(),
            testbed.cell_blob.clone(),
        );
        let rtos = if rtos_heartbeat {
            RtosGuest::with_heartbeat(testbed.cell_entry)
        } else {
            RtosGuest::new(testbed.cell_entry)
        };
        let num_cpus = machine.num_cpus();
        let owner_epoch = hv.ownership_epoch();
        System {
            machine,
            hv,
            linux,
            rtos,
            cell_start_step: None,
            injection_log: None,
            mem_injector: None,
            mem_injection_log: None,
            steps_run: 0,
            rtos_broken_observed: false,
            tracer: None,
            boot_failures: 0,
            owner_cache: vec![None; num_cpus],
            owner_epoch,
        }
    }

    /// Installs a fault injector built from `spec` (owned or shared
    /// via `Arc`), seeded with `seed`. Returns a live handle to the
    /// injection log.
    pub fn install_injector(
        &mut self,
        spec: impl Into<Arc<InjectionSpec>>,
        seed: u64,
    ) -> InjectionLog {
        let injector = Injector::new(spec, seed);
        let log = injector.log();
        self.injection_log = Some(log.clone());
        self.hv.set_hook(Box::new(injector));
        log
    }

    /// The injection log, if an injector is installed.
    pub fn injection_log(&self) -> Option<&InjectionLog> {
        self.injection_log.as_ref()
    }

    /// Installs a memory-fault injector built from `spec` (owned or
    /// shared via `Arc`), seeded with `seed`. Returns a live handle to
    /// the memory-injection log. Can coexist with a register injector
    /// for mixed campaigns.
    pub fn install_mem_injector(
        &mut self,
        spec: impl Into<Arc<MemorySpec>>,
        seed: u64,
    ) -> MemInjectionLog {
        let mut injector = MemInjector::new(spec, seed);
        if let Some(tracer) = &self.tracer {
            injector.set_tracer(tracer.clone());
        }
        let log = injector.log();
        self.mem_injection_log = Some(log.clone());
        self.mem_injector = Some(injector);
        log
    }

    /// Attaches a causal trace log to the whole stack: the hypervisor
    /// records handler entries, injections, traps and parks; the RTOS
    /// guest records scheduler decisions; the memory injector records
    /// its applied/skipped attempts; the orchestrator itself records
    /// watchdog bites and corruption-notice deliveries. Clones share
    /// one bounded ring, so attaching is O(1) and recording never
    /// reallocates past the ring capacity.
    pub fn set_tracer(&mut self, tracer: TraceLog) {
        self.hv.set_tracer(tracer.clone());
        self.rtos.set_tracer(tracer.clone());
        if let Some(injector) = self.mem_injector.as_mut() {
            injector.set_tracer(tracer.clone());
        }
        self.tracer = Some(tracer);
    }

    /// The memory-injection log, if a memory injector is installed.
    pub fn mem_injection_log(&self) -> Option<&MemInjectionLog> {
        self.mem_injection_log.as_ref()
    }

    /// Steps run so far.
    pub fn steps_run(&self) -> u64 {
        self.steps_run
    }

    /// The step at which the non-root cell last started, if any.
    pub fn cell_start_step(&self) -> Option<u64> {
        self.cell_start_step
    }

    /// The non-root cell's id as created by the script, if any.
    pub fn rtos_cell(&self) -> Option<CellId> {
        self.linux.created_cell().map(CellId)
    }

    /// The serial log as owned `(step, line)` pairs. Allocates one
    /// `String` per line — hot paths should iterate
    /// `machine.uart.indexed_lines()` instead.
    pub fn serial_lines(&self) -> Vec<(u64, String)> {
        self.machine.uart.lines()
    }

    /// Runs the system for `steps` simulator steps.
    pub fn run(&mut self, steps: u64) {
        for _ in 0..steps {
            self.step();
        }
    }

    /// Advances the whole stack by one simulator step.
    pub fn step(&mut self) {
        self.steps_run += 1;
        let watchdog_bit = self.machine.advance();
        if watchdog_bit {
            if let Some(tracer) = &self.tracer {
                tracer.record(TraceEvent {
                    step: self.machine.now(),
                    cpu: NO_CPU,
                    kind: TraceKind::WatchdogBite,
                    arg_a: self.machine.wdt.expiries().len() as u64,
                    arg_b: 0,
                });
            }
        }

        // Wake and drain only when some CPU actually has a pending
        // interrupt — the GIC keeps an O(1) count, and most steps have
        // nothing queued. (With nothing pending, the historical
        // per-CPU wake and drain loops were no-ops.) A panicked
        // hypervisor delivers nothing (every CPU is parked and the
        // handler answers spurious), so the whole pass is skipped.
        if self.machine.gic.any_pending() && self.hv.panicked().is_none() {
            // Wake WFI'd CPUs with pending interrupts.
            for i in 0..self.machine.num_cpus() {
                let cpu = CpuId(i as u32);
                if self.machine.cpu(cpu).in_wfi() && self.machine.gic.has_pending(cpu) {
                    self.machine.cpu_mut(cpu).wake();
                }
            }

            // Interrupt delivery.
            for i in 0..self.machine.num_cpus() {
                self.drain_irqs(CpuId(i as u32));
            }
        }

        // CPU hot-unplug handshake: the idle thread on the target CPU
        // issues CPU_OFF.
        if let Some(cpu) = self.linux.take_offline_request() {
            if self.hv.is_enabled() {
                self.hv
                    .handle_hvc(&mut self.machine, cpu, hc::HVC_CPU_OFF, 0, 0);
            }
        }

        // Forward wild-store corruption notices to the victim guests —
        // drained only when the hypervisor flagged one (dirty check).
        if self.hv.has_corruption_notices() {
            for cell in self.hv.take_corruption_notices() {
                // Observed at the drain, one step after the wild store
                // or memory injection posted the notice — the delivery
                // is the causally interesting moment (the victim guest
                // faults on its next slice).
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent {
                        step: self.machine.now(),
                        cpu: NO_CPU,
                        kind: TraceKind::CorruptionNotice,
                        arg_a: cell.0 as u64,
                        arg_b: 0,
                    });
                }
                if cell == certify_hypervisor::cell::ROOT_CELL {
                    self.linux.on_memory_corrupted();
                } else {
                    self.rtos.on_memory_corrupted();
                }
            }
        }

        // Track the cell lifecycle for blank-output analysis.
        if self.cell_start_step.is_none() {
            if let Some(cell) = self.rtos_cell().and_then(|id| self.hv.cell(id)) {
                if cell.state() == certify_hypervisor::CellState::Running {
                    self.cell_start_step = Some(self.machine.now());
                }
            }
        }

        // Step the guests on their CPUs.
        self.step_guest(CpuId(0));
        self.step_guest(CpuId(1));

        // Fire pending memory-fault injections against the advanced
        // state (their corruption notices drain next step, like wild
        // stores).
        if let Some(injector) = self.mem_injector.as_mut() {
            injector.on_step(&mut self.machine, &mut self.hv);
        }

        if self.rtos.health() == certify_hypervisor::GuestHealth::Broken {
            self.rtos_broken_observed = true;
        }
    }

    /// Whether the RTOS guest was ever observed in the E2
    /// "non-executable" state.
    pub fn rtos_broken_observed(&self) -> bool {
        self.rtos_broken_observed
    }

    /// How many cell-boot hypercalls were rejected, leaving the CPU
    /// parked while the cell was reported running.
    pub fn boot_failures(&self) -> u64 {
        self.boot_failures
    }

    fn drain_irqs(&mut self, cpu: CpuId) {
        for _ in 0..MAX_IRQS_PER_STEP {
            if !self.machine.gic.has_pending(cpu) {
                break;
            }
            if !self.hv.is_enabled() {
                // Bare-metal interrupt handling: the root kernel acks
                // directly, no hypervisor involvement.
                let irq = self.machine.gic.acknowledge(cpu);
                self.machine.gic.complete(cpu, irq);
                continue;
            }
            match self.hv.handle_irq(&mut self.machine, cpu) {
                IrqDelivery::Spurious => break,
                IrqDelivery::Error => continue,
                IrqDelivery::MgmtWake => self.boot_protocol(cpu),
                IrqDelivery::Tick => {
                    let owner = self.hv.cpu_owner(cpu);
                    if owner == Some(certify_hypervisor::cell::ROOT_CELL) {
                        let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
                        self.linux.on_tick(&mut ctx);
                    } else if owner.is_some() {
                        let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
                        self.rtos.on_tick(&mut ctx);
                    }
                }
                IrqDelivery::Guest(irq) => {
                    let owner = self.hv.cpu_owner(cpu);
                    if owner == Some(certify_hypervisor::cell::ROOT_CELL) {
                        let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
                        self.linux.on_irq(irq, &mut ctx);
                    } else if owner.is_some() {
                        let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
                        self.rtos.on_irq(irq, &mut ctx);
                    }
                }
            }
        }
    }

    /// The park-loop wake path: a management SGI arrived on a parked
    /// CPU with a pending boot request. The CPU reads its mailbox and
    /// issues `CPU_BOOT` — the hypercall experiment E2's injections
    /// corrupt. On failure the CPU simply stays parked; the cell's
    /// state is untouched (the root already believes it Running).
    fn boot_protocol(&mut self, cpu: CpuId) {
        let Some(entry) = self.hv.boot_pending(cpu) else {
            return;
        };
        let ret = self
            .hv
            .handle_hvc(&mut self.machine, cpu, hc::HVC_CPU_BOOT, entry, 0);
        if ret >= 0 {
            self.rtos.on_reset(ret as u32);
        } else {
            // The boot hypercall was rejected (e.g. its corrupted code
            // or entry failed validation): the CPU silently stays
            // parked while the cell is already reported running.
            self.boot_failures += 1;
        }
    }

    /// Per-CPU cell ownership, served from a cache that refreshes only
    /// when the hypervisor reports an ownership change.
    fn cpu_owner_cached(&mut self, cpu: CpuId) -> Option<CellId> {
        let epoch = self.hv.ownership_epoch();
        if self.owner_epoch != epoch {
            for (i, slot) in self.owner_cache.iter_mut().enumerate() {
                *slot = self.hv.cpu_owner(CpuId(i as u32));
            }
            self.owner_epoch = epoch;
        }
        self.owner_cache.get(cpu.0 as usize).copied().flatten()
    }

    fn step_guest(&mut self, cpu: CpuId) {
        if !self.machine.cpu(cpu).can_run_guest() {
            return;
        }
        let owner = self.cpu_owner_cached(cpu);
        let is_root = owner == Some(certify_hypervisor::cell::ROOT_CELL)
            || (!self.hv.is_enabled() && cpu == CpuId(0));
        if is_root {
            if cpu == CpuId(0) {
                let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
                self.linux.step(&mut ctx);
            }
            // Root-owned secondary CPUs run the idle thread.
        } else if owner.is_some() {
            let mut ctx = GuestCtx::new(cpu, &mut self.machine, &mut self.hv);
            self.rtos.step(&mut ctx);
        }
    }

    /// Count of `[rtos]`-prefixed serial lines whose final byte arrived
    /// at or after `step` — the "USART output" liveness signal of the
    /// non-root cell.
    ///
    /// Served from the UART's incremental line index: a binary search
    /// locates the first qualifying line and only the tail is
    /// examined, so polling this mid-run (examples/availability) costs
    /// O(log lines + tail) instead of reassembling and cloning the
    /// whole capture on every call.
    pub fn rtos_output_since(&self, step: u64) -> usize {
        self.machine
            .uart
            .lines_since(step)
            .filter(|line| line.starts_with("[rtos]"))
            .count()
    }

    /// The non-root cell's LED toggle count.
    pub fn rtos_led_toggles(&self) -> u64 {
        self.machine.gpio.toggle_count(memmap::LED_PIN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_hypervisor::{CellState, GuestHealth};

    #[test]
    fn golden_run_brings_up_mixed_criticality_system() {
        let mut system = System::new(MgmtScript::bring_up_and_run(2000));
        system.run(3000);

        assert!(system.hv.is_enabled());
        assert!(system.hv.panicked().is_none());
        assert_eq!(system.linux.health(), GuestHealth::Healthy);
        assert_eq!(system.rtos.health(), GuestHealth::Healthy);

        let cell = system.hv.cell(system.rtos_cell().unwrap()).unwrap();
        assert_eq!(cell.state(), CellState::Running);

        // Both observation channels show life.
        assert!(system.rtos_led_toggles() > 5, "LED did not blink");
        let start = system.cell_start_step().unwrap();
        assert!(system.rtos_output_since(start) > 0, "no RTOS serial output");

        // All three profiled handlers saw traffic (the E4 result).
        use certify_hypervisor::HandlerKind;
        for handler in HandlerKind::ALL {
            let total: u64 = (0..2)
                .map(|c| system.hv.call_count(handler, CpuId(c)))
                .sum();
            assert!(total > 0, "{handler} saw no traffic");
        }
    }

    #[test]
    fn golden_run_is_deterministic() {
        let mut a = System::new(MgmtScript::bring_up_and_run(500));
        let mut b = System::new(MgmtScript::bring_up_and_run(500));
        a.run(1200);
        b.run(1200);
        assert_eq!(a.serial_lines(), b.serial_lines());
        assert_eq!(a.rtos_led_toggles(), b.rtos_led_toggles());
    }

    #[test]
    fn injector_fires_during_a_run() {
        let mut system = System::new(MgmtScript::bring_up_and_run(4000));
        let log = system.install_injector(InjectionSpec::e3_nonroot_trap_medium().with_rate(10), 7);
        system.run(3000);
        assert!(!log.is_empty(), "no injections fired");
    }

    #[test]
    fn mem_injector_fires_during_a_run() {
        use crate::memfault::{MemFaultModel, MemTarget};
        let mut system = System::new(MgmtScript::bring_up_and_run(4000));
        let log = system.install_mem_injector(
            MemorySpec::e6_memory(MemFaultModel::SingleBitFlip, MemTarget::e6()).with_rate(10),
            7,
        );
        system.run(3000);
        assert!(log.applied() > 0, "no memory injections applied");
    }

    #[test]
    fn register_and_memory_injectors_coexist() {
        use crate::memfault::{MemFaultModel, MemTarget};
        let mut system = System::new(MgmtScript::bring_up_and_run(4000));
        let reg_log =
            system.install_injector(InjectionSpec::e3_nonroot_trap_medium().with_rate(25), 11);
        let mem_log = system.install_mem_injector(
            MemorySpec::e6_memory(MemFaultModel::stuck_at_zero(), MemTarget::e6()).with_rate(25),
            12,
        );
        system.run(3000);
        assert!(!reg_log.is_empty() || !mem_log.is_empty());
        assert_eq!(system.steps_run(), 3000, "mixed run completed its budget");
    }
}

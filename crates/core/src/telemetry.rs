//! The engine's observability bridge: telemetry wiring for observed
//! campaign runs, and JSON views of the `certify_obs` instruments.
//!
//! `certify_obs` is a leaf crate — it cannot depend on this one — so
//! everything that couples its instruments to campaign types lives
//! here: [`EngineTelemetry`], the bundle
//! [`Campaign::run_parallel_streamed_observed`](crate::Campaign::run_parallel_streamed_observed)
//! threads through the streamed engine, plus `Json` renderings of
//! histograms, engine/shard metrics and progress snapshots for the
//! campaign-service API surface.
//!
//! Telemetry is strictly one-way: the engine writes into it, nothing
//! in it feeds back into trial execution. Observed and unobserved runs
//! of the same seeds are byte-identical (pinned by
//! `tests/hotpath_equivalence.rs`).

use crate::classify::Outcome;
use crate::json::Json;
use certify_obs::{
    Clock, EngineMetrics, Histogram, ProgressObserver, ProgressSnapshot, ShardMetrics,
};
use std::collections::BTreeMap;

/// Everything an observed engine run records into: the clock to read,
/// the metrics to fold, and the observer to notify.
pub struct EngineTelemetry<'a> {
    /// The clock all phase timings and snapshots are taken with. Use
    /// `MonotonicClock` for real time, `ManualClock` in tests.
    pub clock: &'a (dyn Clock + Sync),
    /// The folded engine metrics; merged across worker threads at the
    /// end of the run (exercising the instrument merge law on every
    /// observed campaign).
    pub metrics: EngineMetrics,
    /// Receives a whole-campaign snapshot every `progress_every`
    /// deliveries and one final snapshot at completion.
    pub progress: &'a mut dyn ProgressObserver,
    /// Deliveries between snapshots (0 = only the final snapshot).
    pub progress_every: usize,
}

impl<'a> EngineTelemetry<'a> {
    /// A telemetry bundle with zeroed metrics.
    pub fn new(
        clock: &'a (dyn Clock + Sync),
        progress: &'a mut dyn ProgressObserver,
        progress_every: usize,
    ) -> EngineTelemetry<'a> {
        EngineTelemetry {
            clock,
            metrics: EngineMetrics::default(),
            progress,
            progress_every,
        }
    }
}

impl std::fmt::Debug for EngineTelemetry<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineTelemetry")
            .field("metrics", &self.metrics)
            .field("progress_every", &self.progress_every)
            .finish_non_exhaustive()
    }
}

/// Renders an outcome histogram as snapshot rows, in classification
/// precedence order (the `BTreeMap`'s `Ord` order).
pub fn outcome_rows(distribution: &BTreeMap<Outcome, usize>) -> Vec<(String, u64)> {
    distribution
        .iter()
        .map(|(outcome, count)| (outcome.to_string(), *count as u64))
        .collect()
}

/// A latency histogram as JSON: count, mean and the quantile summary,
/// in nanoseconds.
pub fn histogram_to_json(histogram: &Histogram) -> Json {
    Json::obj([
        ("count", Json::U64(histogram.count())),
        ("sum_ns", Json::U64(histogram.sum())),
        ("mean_ns", Json::F64(histogram.mean())),
        ("min_ns", Json::U64(histogram.min())),
        ("p50_ns", Json::U64(histogram.p50())),
        ("p90_ns", Json::U64(histogram.p90())),
        ("p99_ns", Json::U64(histogram.p99())),
        ("max_ns", Json::U64(histogram.max())),
    ])
}

/// Engine metrics as JSON: the trial/sink counters, the residency
/// gauge and the per-phase histograms.
pub fn engine_metrics_to_json(metrics: &EngineMetrics) -> Json {
    Json::obj([
        ("trials", Json::U64(metrics.trials.get())),
        (
            "reorder_residency_high_water",
            Json::U64(metrics.reorder_residency.high_water()),
        ),
        ("sink_rows", Json::U64(metrics.sink_rows.get())),
        ("sink_bytes", Json::U64(metrics.sink_bytes.get())),
        (
            "phases",
            Json::obj([
                ("boot", histogram_to_json(&metrics.phases.boot)),
                (
                    "steady_state",
                    histogram_to_json(&metrics.phases.steady_state),
                ),
                ("injection", histogram_to_json(&metrics.phases.injection)),
                ("classify", histogram_to_json(&metrics.phases.classify)),
                ("total", histogram_to_json(&metrics.phases.total)),
            ]),
        ),
    ])
}

/// Shard-tier metrics as JSON.
pub fn shard_metrics_to_json(metrics: &ShardMetrics) -> Json {
    Json::obj([
        ("rows", Json::U64(metrics.rows.get())),
        ("rows_per_sec", Json::F64(metrics.rows_per_sec())),
        ("frames", Json::U64(metrics.frames.get())),
        ("frame_bytes", Json::U64(metrics.frame_bytes.get())),
        ("crc_rejects", Json::U64(metrics.crc_rejects.get())),
        ("retries", Json::U64(metrics.retries.get())),
        (
            "wasted_rerun_trials",
            Json::U64(metrics.wasted_rerun_trials.get()),
        ),
        ("elapsed_ns", Json::U64(metrics.elapsed_ns.high_water())),
    ])
}

/// A progress snapshot as JSON — the shape the campaign service will
/// stream to clients.
pub fn progress_to_json(snapshot: &ProgressSnapshot) -> Json {
    Json::obj([
        (
            "source",
            match snapshot.source {
                Some(shard) => Json::U64(shard as u64),
                None => Json::Null,
            },
        ),
        ("done", Json::U64(snapshot.done)),
        ("total", Json::U64(snapshot.total)),
        ("elapsed_ns", Json::U64(snapshot.elapsed_ns)),
        ("rows_per_sec", Json::F64(snapshot.rows_per_sec)),
        (
            "eta_ns",
            snapshot.eta_ns.map(Json::U64).unwrap_or(Json::Null),
        ),
        (
            "outcomes",
            Json::Obj(
                snapshot
                    .outcomes
                    .iter()
                    .map(|(name, count)| (name.clone(), Json::U64(*count)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_obs::{ManualClock, NullObserver, ProgressTracker};

    #[test]
    fn histogram_json_carries_the_quantile_summary() {
        let mut h = Histogram::latency_ns();
        for v in [1_000, 2_000, 2_000, 5_000] {
            h.record(v);
        }
        let rendered = histogram_to_json(&h).render();
        assert!(rendered.contains("\"count\":4"));
        assert!(rendered.contains("\"p50_ns\":2000"));
        assert!(rendered.contains("\"max_ns\":5000"));
        assert!(rendered.contains("\"mean_ns\":2500"));
    }

    #[test]
    fn progress_json_distinguishes_shard_and_campaign_sources() {
        let clock = ManualClock::new();
        let tracker = ProgressTracker::new(&clock, Some(3), 10);
        clock.advance(1_000_000_000);
        let snap = tracker.snapshot(5, vec![("correct".into(), 5)]);
        let rendered = progress_to_json(&snap).render();
        assert!(rendered.contains("\"source\":3"));
        assert!(rendered.contains("\"outcomes\":{\"correct\":5}"));
        assert!(rendered.contains("\"eta_ns\":1000000000"));

        let overall = ProgressTracker::new(&clock, None, 10).snapshot(0, Vec::new());
        let rendered = progress_to_json(&overall).render();
        assert!(rendered.contains("\"source\":null"));
        assert!(rendered.contains("\"eta_ns\":null"));
    }

    #[test]
    fn outcome_rows_follow_classification_precedence() {
        let mut distribution = BTreeMap::new();
        distribution.insert(Outcome::Correct, 3usize);
        distribution.insert(Outcome::PanicPark, 1usize);
        assert_eq!(
            outcome_rows(&distribution),
            vec![("panic park".to_string(), 1), ("correct".to_string(), 3)]
        );
    }

    #[test]
    fn telemetry_bundle_debug_and_json_render() {
        let clock = ManualClock::new();
        let mut observer = NullObserver;
        let telemetry = EngineTelemetry::new(&clock, &mut observer, 8);
        assert!(format!("{telemetry:?}").contains("progress_every: 8"));
        let rendered = engine_metrics_to_json(&telemetry.metrics).render();
        assert!(rendered.contains("\"trials\":0"));
        assert!(rendered.contains("\"phases\""));
        let rendered = shard_metrics_to_json(&ShardMetrics::default()).render();
        assert!(rendered.contains("\"crc_rejects\":0"));
    }
}

//! Trial tracing: flight-recorder configuration, anomaly dump policy
//! and the [`TraceDump`] artifact.
//!
//! The raw machinery — the event vocabulary and the bounded ring —
//! lives in [`certify_obs::trace`]; this module is the campaign-level
//! wiring. A [`TraceConfig`] attached to a campaign
//! ([`crate::Campaign::with_trace`]) gives every trial its own flight
//! recorder; when a trial classifies into the [`DumpPolicy`]'s
//! outcome set (or violates the attached certificate), the recorder's
//! contents are captured as a [`TraceDump`] and delivered to the sink
//! via [`crate::sink::TrialSink::accept_dump`]. Dumps export as
//! deterministic JSON ([`TraceDump::to_json`]) and as
//! `chrome://tracing` JSON ([`TraceDump::to_chrome_trace`]).
//!
//! Everything here is a pure function of the trial seed: the same
//! seed produces byte-identical dumps in-process, across worker
//! threads and across shard processes — pinned by
//! `tests/determinism.rs` and `crates/shard/tests/sharded.rs`.

use crate::classify::Outcome;
use crate::json::Json;
use certify_obs::trace::{TraceEvent, TraceLog, NO_CPU};
use std::collections::BTreeSet;

/// Default flight-recorder capacity (events retained per trial).
///
/// A 4500-step E3/E6 trial records on the order of 10k handler
/// entries; 4096 keeps the full injection-to-verdict suffix — the
/// part propagation analysis needs — while bounding memory at
/// ~120 KiB per in-flight trial.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// When a trial's flight recorder is dumped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DumpPolicy {
    /// Outcomes that trigger a dump.
    pub outcomes: BTreeSet<Outcome>,
    /// Dump when the trial violates the campaign's attached
    /// [`crate::ScenarioCertificate`] (no-op without one).
    pub on_conformance_violation: bool,
    /// On a panic inside a traced trial, print the ring as JSON to
    /// stderr before resuming the unwind — the trial that killed the
    /// process explains itself on the way down.
    pub on_panic: bool,
}

impl DumpPolicy {
    /// The stock anomaly policy: dump on every outcome that signals
    /// something went wrong in an *interesting* way (panic park,
    /// inconsistent state, translation-fault storm, silent data
    /// corruption), plus conformance violations and panics. The
    /// expected outcomes — correct, CPU park, invalid arguments — are
    /// the campaign's bread and butter and stay quiet.
    pub fn anomalies() -> DumpPolicy {
        DumpPolicy {
            outcomes: [
                Outcome::PanicPark,
                Outcome::InconsistentState,
                Outcome::TranslationFaultStorm,
                Outcome::SilentDataCorruption,
            ]
            .into_iter()
            .collect(),
            on_conformance_violation: true,
            on_panic: true,
        }
    }

    /// Dump every trial, whatever its outcome — the propagation-
    /// analysis firehose.
    pub fn all_outcomes() -> DumpPolicy {
        DumpPolicy {
            outcomes: Outcome::ALL.into_iter().collect(),
            on_conformance_violation: true,
            on_panic: true,
        }
    }

    /// Whether `outcome` triggers a dump.
    pub fn wants(&self, outcome: Outcome) -> bool {
        self.outcomes.contains(&outcome)
    }
}

impl Default for DumpPolicy {
    fn default() -> DumpPolicy {
        DumpPolicy::anomalies()
    }
}

/// Per-campaign tracing configuration: ring capacity + dump policy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Flight-recorder capacity in events (floored at 1).
    pub capacity: usize,
    /// When to keep a trial's dump.
    pub policy: DumpPolicy,
}

impl TraceConfig {
    /// The stock configuration: [`DEFAULT_TRACE_CAPACITY`] events,
    /// [`DumpPolicy::anomalies`].
    pub fn new() -> TraceConfig {
        TraceConfig::default()
    }

    /// Builder: override the ring capacity.
    pub fn with_capacity(mut self, capacity: usize) -> TraceConfig {
        self.capacity = capacity;
        self
    }

    /// Builder: override the dump policy.
    pub fn with_policy(mut self, policy: DumpPolicy) -> TraceConfig {
        self.policy = policy;
        self
    }
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
            policy: DumpPolicy::default(),
        }
    }
}

/// One anomalous trial's flight-recorder contents, ready to persist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDump {
    /// The trial's seed.
    pub seed: u64,
    /// The scenario that ran.
    pub scenario: String,
    /// The classified outcome that triggered (or survived) the dump.
    pub outcome: Outcome,
    /// Events recorded over the whole trial, including evicted ones.
    pub total: u64,
    /// Events lost off the head of the ring (`total - events.len()`).
    pub dropped: u64,
    /// The retained event suffix, oldest first.
    pub events: Vec<TraceEvent>,
}

impl TraceDump {
    /// Captures the current ring contents of `log` as a dump.
    pub fn capture(log: &TraceLog, seed: u64, scenario: &str, outcome: Outcome) -> TraceDump {
        let events = log.snapshot();
        let total = log.total();
        TraceDump {
            seed,
            scenario: scenario.to_string(),
            outcome,
            total,
            dropped: total - events.len() as u64,
            events,
        }
    }

    /// The dump as a deterministic JSON value (via [`crate::json`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::U64(self.seed)),
            ("scenario", Json::str(self.scenario.clone())),
            ("outcome", Json::str(self.outcome.to_string())),
            ("total", Json::U64(self.total)),
            ("dropped", Json::U64(self.dropped)),
            (
                "events",
                Json::Arr(self.events.iter().map(trace_event_to_json).collect()),
            ),
        ])
    }

    /// The dump as a `chrome://tracing` / Perfetto JSON document:
    /// every event an instant ("ph":"i") at `ts` = machine step, on
    /// the thread lane of its CPU (lane -1 for events with no CPU).
    pub fn to_chrome_trace(&self) -> String {
        let events = self
            .events
            .iter()
            .map(|event| {
                let tid = if event.cpu == NO_CPU {
                    Json::I64(-1)
                } else {
                    Json::U64(event.cpu as u64)
                };
                Json::obj([
                    ("name", Json::str(event.kind.name())),
                    ("ph", Json::str("i")),
                    ("ts", Json::U64(event.step)),
                    ("pid", Json::U64(0)),
                    ("tid", tid),
                    ("s", Json::str("t")),
                    (
                        "args",
                        Json::obj([("a", Json::U64(event.arg_a)), ("b", Json::U64(event.arg_b))]),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
            (
                "otherData",
                Json::obj([
                    ("scenario", Json::str(self.scenario.clone())),
                    ("seed", Json::U64(self.seed)),
                    ("outcome", Json::str(self.outcome.to_string())),
                    ("dropped", Json::U64(self.dropped)),
                ]),
            ),
        ])
        .render()
    }
}

/// One event as JSON; a [`NO_CPU`] cpu renders as `null`.
pub(crate) fn trace_event_to_json(event: &TraceEvent) -> Json {
    let cpu = if event.cpu == NO_CPU {
        Json::Null
    } else {
        Json::U64(event.cpu as u64)
    };
    Json::obj([
        ("step", Json::U64(event.step)),
        ("cpu", cpu),
        ("kind", Json::str(event.kind.name())),
        ("a", Json::U64(event.arg_a)),
        ("b", Json::U64(event.arg_b)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_obs::trace::TraceKind;

    fn sample_dump() -> TraceDump {
        let log = TraceLog::new(2);
        for step in 1..=3u64 {
            log.record(TraceEvent {
                step,
                cpu: if step == 3 { NO_CPU } else { 1 },
                kind: TraceKind::HandlerEntry,
                arg_a: step * 10,
                arg_b: 0,
            });
        }
        TraceDump::capture(&log, 42, "e3-fig3-medium", Outcome::SilentDataCorruption)
    }

    #[test]
    fn capture_reflects_ring_truncation() {
        let dump = sample_dump();
        assert_eq!(dump.total, 3);
        assert_eq!(dump.dropped, 1);
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[0].step, 2);
    }

    #[test]
    fn json_encodes_no_cpu_as_null() {
        let rendered = sample_dump().to_json().render();
        assert!(rendered.contains("\"seed\":42"));
        assert!(rendered.contains("\"cpu\":null"));
        assert!(rendered.contains("\"kind\":\"handler_entry\""));
    }

    #[test]
    fn chrome_trace_is_well_formed_enough() {
        let doc = sample_dump().to_chrome_trace();
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"i\""));
        assert!(doc.contains("\"tid\":-1"));
        assert!(doc.contains("\"scenario\":\"e3-fig3-medium\""));
    }

    #[test]
    fn default_policy_dumps_anomalies_only() {
        let policy = DumpPolicy::default();
        assert!(policy.wants(Outcome::SilentDataCorruption));
        assert!(policy.wants(Outcome::PanicPark));
        assert!(!policy.wants(Outcome::Correct));
        assert!(!policy.wants(Outcome::CpuPark));
        assert!(policy.on_conformance_violation);
        assert!(DumpPolicy::all_outcomes().wants(Outcome::Correct));
    }
}

//! The Linux-like root guest.

use crate::script::{MgmtOp, MgmtRecord, MgmtScript};
use certify_arch::{CpuId, IrqId};
use certify_board::memmap;
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{CellConfig, Guest, GuestCtx, GuestHealth, SystemConfig};
use std::fmt;
use std::sync::Arc;

/// Root-RAM address where the system configuration blob is staged.
pub const SYS_BLOB_ADDR: u32 = memmap::ROOT_RAM_BASE + 0x0100_0000;
/// Root-RAM address where the cell configuration blob is staged.
pub const CELL_BLOB_ADDR: u32 = memmap::ROOT_RAM_BASE + 0x0200_0000;
/// Steps between heartbeat LED toggles.
pub const HEARTBEAT_PERIOD: u64 = 16;

/// The root-cell guest.
pub struct LinuxGuest {
    /// The script program is immutable (only the `pc` cursor below
    /// advances), so campaigns share one `Arc` across all trials.
    script: Arc<MgmtScript>,
    pc: usize,
    wait: u64,
    health: GuestHealth,
    pending_panic: bool,
    boot_line: usize,
    steps: u64,
    heartbeat_level: bool,
    records: Vec<MgmtRecord>,
    pending_offline: Option<CpuId>,
    created_cell: Option<u32>,
    system_blob: Vec<u8>,
    cell_blob: Vec<u8>,
    watchdog_armed: bool,
    monitor: Option<MonitorState>,
    monitor_alarms: Vec<u64>,
}

/// Live state of the E5b heartbeat safety monitor.
#[derive(Debug, Clone, Copy)]
struct MonitorState {
    remaining: u64,
    window: u64,
    last_seq: u32,
    last_change: u64,
}

const BOOT_LINES: [&str; 4] = [
    "[linux] Booting Linux on physical CPU 0x0",
    "[linux] Linux version 5.10.0-jailhouse",
    "[linux] smp: Brought up 1 node, 2 CPUs",
    "[linux] jailhouse: driver registered",
];

impl LinuxGuest {
    /// Creates the root guest with the given management script (owned
    /// or shared via `Arc`). The configuration blobs are serialized
    /// from `platform` / `cell_config` (the driver owns the `.cell`
    /// files).
    pub fn new(
        script: impl Into<Arc<MgmtScript>>,
        platform: &SystemConfig,
        cell_config: &CellConfig,
    ) -> Self {
        Self::with_blobs(script, platform.serialize(), cell_config.serialize())
    }

    /// Like [`LinuxGuest::new`], with the configuration blobs already
    /// serialized — campaigns serialize the fixed platform configs
    /// once and hand each trial a byte copy.
    pub fn with_blobs(
        script: impl Into<Arc<MgmtScript>>,
        system_blob: Vec<u8>,
        cell_blob: Vec<u8>,
    ) -> Self {
        LinuxGuest {
            script: script.into(),
            pc: 0,
            wait: 0,
            health: GuestHealth::Healthy,
            pending_panic: false,
            boot_line: 0,
            steps: 0,
            heartbeat_level: false,
            records: Vec::new(),
            pending_offline: None,
            created_cell: None,
            system_blob,
            cell_blob,
            watchdog_armed: false,
            monitor: None,
            monitor_alarms: Vec::new(),
        }
    }

    /// Steps at which the heartbeat safety monitor raised an alarm.
    pub fn monitor_alarms(&self) -> &[u64] {
        &self.monitor_alarms
    }

    /// Whether the kernel armed the hardware watchdog.
    pub fn watchdog_armed(&self) -> bool {
        self.watchdog_armed
    }

    /// Recorded operation results (the root-side log of the run).
    pub fn records(&self) -> &[MgmtRecord] {
        &self.records
    }

    /// The id of the cell the script created, if any.
    pub fn created_cell(&self) -> Option<u32> {
        self.created_cell
    }

    /// Pops a pending CPU-offline request for the orchestrator: the
    /// idle thread on that CPU must issue `CPU_OFF`.
    pub fn take_offline_request(&mut self) -> Option<CpuId> {
        self.pending_offline.take()
    }

    /// Whether the script has halted.
    pub fn script_done(&self) -> bool {
        self.pc >= self.script.ops.len()
            || matches!(self.script.ops.get(self.pc), Some(MgmtOp::Halt))
    }

    fn uart_print(ctx: &mut GuestCtx<'_>, line: &str) {
        // The root cell owns the UART directly: every byte is a plain
        // (stage-2 mapped) store, no hypervisor involvement.
        for byte in line.bytes() {
            ctx.ram_write32(memmap::UART_BASE + memmap::UART_THR_OFFSET, u32::from(byte));
        }
        ctx.ram_write32(
            memmap::UART_BASE + memmap::UART_THR_OFFSET,
            u32::from(b'\n'),
        );
    }

    fn stage(ctx: &mut GuestCtx<'_>, addr: u32, blob: &[u8]) {
        ctx.ram_write32(addr, blob.len() as u32);
        for (i, chunk) in blob.chunks(4).enumerate() {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            ctx.ram_write32(addr + 4 + 4 * i as u32, u32::from_le_bytes(word));
        }
    }

    /// One heartbeat period's hardware work (the caller gates on
    /// `HEARTBEAT_PERIOD`).
    fn heartbeat(&mut self, ctx: &mut GuestCtx<'_>) {
        if self.watchdog_armed {
            // The kernel's heartbeat path feeds the hardware watchdog:
            // a panicked kernel stops feeding and the dog barks.
            ctx.ram_write32(
                memmap::WDT_BASE + memmap::WDT_CTRL_OFFSET,
                memmap::WDT_RESTART_KEY,
            );
        }
        self.heartbeat_level = !self.heartbeat_level;
        let data_reg = memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET;
        // Trapped GPIO MMIO: the root cell's arch_handle_trap stream.
        let current = ctx.mmio_read32(data_reg);
        if ctx.parked() {
            return;
        }
        let mask = 1u32 << memmap::ROOT_LED_PIN;
        let next = if self.heartbeat_level {
            current | mask
        } else {
            current & !mask
        };
        ctx.mmio_write32(data_reg, next);
    }

    fn record(&mut self, step: u64, op: MgmtOp, result: i64) {
        self.records.push(MgmtRecord { step, op, result });
    }

    fn execute_op(&mut self, ctx: &mut GuestCtx<'_>) {
        let Some(op) = self.script.ops.get(self.pc).copied() else {
            return;
        };
        let step = ctx.now();
        match op {
            MgmtOp::Delay(n) | MgmtOp::RunFor(n) => {
                self.wait = n;
                self.pc += 1;
            }
            MgmtOp::PollInfo => {
                let ret = ctx.hvc(hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::StageSystemConfig => {
                let blob = self.system_blob.clone();
                Self::stage(ctx, SYS_BLOB_ADDR, &blob);
                self.record(step, op, 0);
                self.pc += 1;
            }
            MgmtOp::Enable => {
                let ret = ctx.hvc(hc::HVC_HYPERVISOR_ENABLE, SYS_BLOB_ADDR, 0);
                if ret == 0 {
                    Self::uart_print(ctx, "[linux] jailhouse: hypervisor enabled");
                } else {
                    Self::uart_print(
                        ctx,
                        &format!("[linux] jailhouse: enable failed: invalid arguments ({ret})"),
                    );
                }
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::RequestCpuOffline(cpu) => {
                self.pending_offline = Some(CpuId(cpu));
                Self::uart_print(ctx, &format!("[linux] smp: CPU{cpu} offlined"));
                self.record(step, op, 0);
                self.pc += 1;
            }
            MgmtOp::WaitCpuParked(cpu) => {
                let ret = ctx.hvc(hc::HVC_CPU_GET_INFO, cpu, 0);
                self.record(step, op, ret);
                if ret == 1 {
                    self.pc += 1;
                }
                // Otherwise retry next step.
            }
            MgmtOp::StageCellConfig => {
                let blob = self.cell_blob.clone();
                Self::stage(ctx, CELL_BLOB_ADDR, &blob);
                self.record(step, op, 0);
                self.pc += 1;
            }
            MgmtOp::CreateCell => {
                let ret = ctx.hvc(hc::HVC_CELL_CREATE, CELL_BLOB_ADDR, 0);
                if ret >= 0 {
                    self.created_cell = Some(ret as u32);
                    Self::uart_print(ctx, &format!("[linux] jailhouse: cell {ret} created"));
                } else {
                    Self::uart_print(
                        ctx,
                        &format!("[linux] jailhouse: cell create failed ({ret})"),
                    );
                }
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::LoadCell => {
                let id = self.created_cell.unwrap_or(u32::MAX);
                let ret = ctx.hvc(hc::HVC_CELL_SET_LOADABLE, id, 0);
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::StartCell => {
                let id = self.created_cell.unwrap_or(u32::MAX);
                let ret = ctx.hvc(hc::HVC_CELL_START, id, 0);
                if ret == 0 {
                    Self::uart_print(ctx, &format!("[linux] jailhouse: cell {id} started"));
                }
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::QueryCellState => {
                let id = self.created_cell.unwrap_or(u32::MAX);
                let ret = ctx.hvc(hc::HVC_CELL_GET_STATE, id, 0);
                let name = match ret {
                    0 => "stopped",
                    1 => "running",
                    2 => "shut down",
                    3 => "failed",
                    _ => "error",
                };
                Self::uart_print(ctx, &format!("[linux] jailhouse: cell {id} is {name}"));
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::ShutdownCell => {
                let id = self.created_cell.unwrap_or(u32::MAX);
                let ret = ctx.hvc(hc::HVC_CELL_SHUTDOWN, id, 0);
                if ret == 0 {
                    Self::uart_print(ctx, &format!("[linux] jailhouse: cell {id} shut down"));
                }
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::DestroyCell => {
                let id = self.created_cell.unwrap_or(u32::MAX);
                let ret = ctx.hvc(hc::HVC_CELL_DESTROY, id, 0);
                if ret == 0 {
                    self.created_cell = None;
                    Self::uart_print(ctx, &format!("[linux] jailhouse: cell {id} destroyed"));
                }
                self.record(step, op, ret);
                self.pc += 1;
            }
            MgmtOp::ArmWatchdog => {
                ctx.ram_write32(memmap::WDT_BASE + memmap::WDT_MODE_OFFSET, 1);
                ctx.ram_write32(
                    memmap::WDT_BASE + memmap::WDT_CTRL_OFFSET,
                    memmap::WDT_RESTART_KEY,
                );
                Self::uart_print(ctx, "[linux] watchdog: armed");
                self.watchdog_armed = true;
                self.record(step, op, 0);
                self.pc += 1;
            }
            MgmtOp::MonitorFor { steps, window } => {
                let seq = ctx.ram_read32(memmap::IVSHMEM_BASE);
                match &mut self.monitor {
                    None => {
                        self.monitor = Some(MonitorState {
                            remaining: steps,
                            window,
                            last_seq: seq,
                            last_change: step,
                        });
                    }
                    Some(state) => {
                        if seq != state.last_seq {
                            state.last_seq = seq;
                            state.last_change = step;
                        } else if step.saturating_sub(state.last_change) == state.window {
                            // Exactly at the window edge: one alarm per
                            // stall.
                            self.monitor_alarms.push(step);
                            Self::uart_print(ctx, "[linux] safety-monitor: cell heartbeat lost");
                        }
                        if state.remaining == 0 {
                            self.monitor = None;
                            self.record(step, op, 0);
                            self.pc += 1;
                        } else {
                            state.remaining -= 1;
                        }
                    }
                }
            }
            MgmtOp::Restart(target) => {
                self.pc = target.min(self.script.ops.len());
            }
            MgmtOp::Halt => {
                // Stay here.
            }
        }
    }
}

impl fmt::Debug for LinuxGuest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LinuxGuest")
            .field("script", &self.script.name)
            .field("pc", &self.pc)
            .field("health", &self.health)
            .finish()
    }
}

impl Guest for LinuxGuest {
    fn name(&self) -> &str {
        "linux-root"
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) {
        if !self.health.is_alive() {
            return;
        }
        if self.pending_panic {
            // A propagated fault corrupted kernel memory: Linux oopses
            // and brings the whole system down — the paper's *panic
            // park*.
            self.pending_panic = false;
            self.health = GuestHealth::Panicked;
            Self::uart_print(ctx, "[linux] Unable to handle kernel paging request");
            Self::uart_print(ctx, "[linux] Kernel panic - not syncing: Fatal exception");
            return;
        }
        self.steps += 1;

        if self.boot_line < BOOT_LINES.len() {
            let line = BOOT_LINES[self.boot_line];
            self.boot_line += 1;
            Self::uart_print(ctx, line);
            return;
        }

        // The heartbeat only touches hardware every HEARTBEAT_PERIOD
        // steps, and a park can only arise from those accesses (an
        // externally parked CPU never enters step() at all) — so the
        // park check is gated to the steps that did I/O.
        if self.steps.is_multiple_of(HEARTBEAT_PERIOD) {
            self.heartbeat(ctx);
            if ctx.parked() {
                self.health = GuestHealth::HardFault;
                return;
            }
        }

        if self.wait > 0 {
            self.wait -= 1;
            return;
        }
        self.execute_op(ctx);
        if ctx.parked() {
            self.health = GuestHealth::HardFault;
        }
    }

    fn on_tick(&mut self, _ctx: &mut GuestCtx<'_>) {
        // The root guest's scheduling is driven by step(); ticks keep
        // the timer stream (and thus irqchip profiling traffic) alive.
    }

    fn on_irq(&mut self, _irq: IrqId, _ctx: &mut GuestCtx<'_>) {}

    fn on_reset(&mut self, _entry: u32) {
        // The root guest boots with the machine; nothing to do.
    }

    fn on_memory_corrupted(&mut self) {
        if self.health.is_alive() {
            self.pending_panic = true;
        }
    }

    fn health(&self) -> GuestHealth {
        self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_board::Machine;
    use certify_hypervisor::Hypervisor;

    fn new_system() -> (Machine, Hypervisor, LinuxGuest) {
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        machine.cpu_mut(CpuId(1)).power_on();
        let platform = SystemConfig::banana_pi_demo();
        let hv = Hypervisor::new(platform.clone());
        let guest = LinuxGuest::new(
            MgmtScript::bring_up_and_run(100),
            &platform,
            &SystemConfig::freertos_cell(),
        );
        (machine, hv, guest)
    }

    /// Drives only the root guest (plus the CPU_OFF handshake) until
    /// the script reaches `Halt` or `max_steps` elapse.
    fn drive(machine: &mut Machine, hv: &mut Hypervisor, guest: &mut LinuxGuest, max_steps: u64) {
        for _ in 0..max_steps {
            machine.advance();
            {
                let mut ctx = GuestCtx::new(CpuId(0), machine, hv);
                guest.step(&mut ctx);
            }
            if let Some(cpu) = guest.take_offline_request() {
                hv.handle_hvc(machine, cpu, hc::HVC_CPU_OFF, 0, 0);
            }
            if guest.script_done() {
                break;
            }
        }
    }

    #[test]
    fn boot_banner_appears_on_uart() {
        let (mut machine, mut hv, mut guest) = new_system();
        drive(&mut machine, &mut hv, &mut guest, 6);
        assert!(machine
            .uart
            .indexed_lines()
            .any(|l| l.contains("Booting Linux")));
    }

    #[test]
    fn script_brings_up_the_cell() {
        let (mut machine, mut hv, mut guest) = new_system();
        drive(&mut machine, &mut hv, &mut guest, 400);
        assert!(hv.is_enabled());
        assert_eq!(guest.created_cell(), Some(1));
        let cell = hv.cell(certify_hypervisor::CellId(1)).unwrap();
        assert_eq!(cell.state(), certify_hypervisor::CellState::Running);
        // Every management hypercall succeeded.
        for record in guest.records() {
            assert!(
                record.result >= 0,
                "op {} failed with {}",
                record.op,
                record.result
            );
        }
    }

    #[test]
    fn corruption_notice_causes_kernel_panic_on_next_step() {
        let (mut machine, mut hv, mut guest) = new_system();
        drive(&mut machine, &mut hv, &mut guest, 10);
        guest.on_memory_corrupted();
        {
            let mut ctx = GuestCtx::new(CpuId(0), &mut machine, &mut hv);
            guest.step(&mut ctx);
        }
        assert_eq!(guest.health(), GuestHealth::Panicked);
        assert!(machine
            .uart
            .indexed_lines()
            .any(|l| l.contains("Kernel panic - not syncing")));
        // A panicked kernel makes no further progress.
        let bytes = machine.uart.byte_count();
        {
            let mut ctx = GuestCtx::new(CpuId(0), &mut machine, &mut hv);
            guest.step(&mut ctx);
        }
        assert_eq!(machine.uart.byte_count(), bytes);
    }

    #[test]
    fn heartbeat_led_toggles() {
        let (mut machine, mut hv, mut guest) = new_system();
        drive(&mut machine, &mut hv, &mut guest, 200);
        assert!(machine.gpio.toggle_count(memmap::ROOT_LED_PIN) > 2);
    }

    #[test]
    fn enable_attempt_script_records_einval_on_corrupted_blob() {
        // Stage, then corrupt the staged blob before the enable: the
        // enable records -22 and the hypervisor stays disabled.
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        let mut guest = LinuxGuest::new(
            MgmtScript::enable_attempt(0),
            &platform,
            &SystemConfig::freertos_cell(),
        );
        // Run past boot + delay + staging.
        for _ in 0..14 {
            machine.advance();
            let mut ctx = GuestCtx::new(CpuId(0), &mut machine, &mut hv);
            guest.step(&mut ctx);
        }
        // Corrupt one staged byte.
        let b = machine.ram().read8(SYS_BLOB_ADDR + 4).unwrap();
        machine.ram_mut().write8(SYS_BLOB_ADDR + 4, b ^ 1).unwrap();
        for _ in 0..200 {
            machine.advance();
            let mut ctx = GuestCtx::new(CpuId(0), &mut machine, &mut hv);
            guest.step(&mut ctx);
            if guest.script_done() {
                break;
            }
        }
        let enable = guest
            .records()
            .iter()
            .find(|r| matches!(r.op, MgmtOp::Enable))
            .expect("enable attempted");
        assert_eq!(
            enable.result,
            certify_hypervisor::HvError::InvalidArguments.code()
        );
        assert!(!hv.is_enabled());
        assert!(machine
            .uart
            .indexed_lines()
            .any(|l| l.contains("invalid arguments")));
    }
}

//! The root-cell guest: a Linux-like management OS with a
//! Jailhouse-style driver.
//!
//! In the paper's deployment the root cell runs "general-purpose
//! Linux", patched with the Jailhouse driver: it installs the
//! hypervisor (`jailhouse enable`), offlines CPU 1 (the hot-plug
//! handover), creates/loads/starts the FreeRTOS cell, and later shuts
//! it down or destroys it. All of that, plus kernel-panic semantics,
//! is modelled here:
//!
//! * [`script`] — the management *script*: an ordered list of driver
//!   operations (with results recorded for the analysis pipeline);
//! * [`guest`] — [`LinuxGuest`], the [`certify_hypervisor::Guest`]
//!   implementation that boots, prints dmesg-style lines on the
//!   (directly mapped) UART, blinks a heartbeat LED through trapped
//!   GPIO MMIO, executes the script, and **panics** ("Kernel panic -
//!   not syncing") when a propagated fault corrupts its memory — the
//!   observable behind the paper's *panic park* outcome.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guest;
pub mod script;

pub use guest::LinuxGuest;
pub use script::{MgmtOp, MgmtRecord, MgmtScript};

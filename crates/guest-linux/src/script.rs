//! Management scripts: the sequence of driver operations a test run
//! performs.
//!
//! The paper's experiments differ only in *what the root cell does*
//! and *where faults are injected*. Scripts capture the former: E1 is
//! "poll, then try to enable the hypervisor"; E2/E3 are "enable,
//! hand over CPU 1, create/load/start the FreeRTOS cell, let it run"
//! (optionally cycling shutdown/destroy/recreate).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One management operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MgmtOp {
    /// Do nothing for the given number of steps.
    Delay(u64),
    /// Issue a `HYPERVISOR_GET_INFO` hypercall (cheap traffic that
    /// also advances the injection cadence).
    PollInfo,
    /// Write the serialized system configuration into root RAM.
    StageSystemConfig,
    /// Issue `HYPERVISOR_ENABLE` on the staged configuration.
    Enable,
    /// Ask the kernel to offline the given CPU (the hot-unplug leg of
    /// the CPU handover; the idle thread on that CPU issues the
    /// `CPU_OFF` hypercall).
    RequestCpuOffline(u32),
    /// Poll `CPU_GET_INFO` until the CPU reports parked.
    WaitCpuParked(u32),
    /// Write the serialized non-root cell configuration into root RAM.
    StageCellConfig,
    /// Issue `CELL_CREATE` on the staged cell configuration.
    CreateCell,
    /// Issue `CELL_SET_LOADABLE` on the created cell.
    LoadCell,
    /// Issue `CELL_START` on the created cell.
    StartCell,
    /// Let the system run for the given number of steps.
    RunFor(u64),
    /// Issue `CELL_GET_STATE` on the created cell, recording the
    /// result.
    QueryCellState,
    /// Issue `CELL_SHUTDOWN` on the created cell.
    ShutdownCell,
    /// Issue `CELL_DESTROY` on the created cell.
    DestroyCell,
    /// Enable the hardware watchdog; the kernel's heartbeat path feeds
    /// it from then on, so a kernel panic is converted into a detected
    /// (and, on real hardware, reset-triggering) event — extension
    /// experiment E5a.
    ArmWatchdog,
    /// Run a safety monitor for the given number of steps: watch the
    /// non-root cell's shared-memory heartbeat and raise an alarm if
    /// it stalls for more than the window — extension experiment E5b.
    MonitorFor {
        /// Steps to monitor.
        steps: u64,
        /// Stall window (steps without a heartbeat) that raises the
        /// alarm.
        window: u64,
    },
    /// Jump back to the operation at the given index (lifecycle
    /// cycling).
    Restart(usize),
    /// Stop executing the script (the driver goes quiet; the system
    /// keeps running).
    Halt,
}

impl fmt::Display for MgmtOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtOp::Delay(n) => write!(f, "delay({n})"),
            MgmtOp::PollInfo => write!(f, "poll_info"),
            MgmtOp::StageSystemConfig => write!(f, "stage_system_config"),
            MgmtOp::Enable => write!(f, "enable"),
            MgmtOp::RequestCpuOffline(c) => write!(f, "request_cpu{c}_offline"),
            MgmtOp::WaitCpuParked(c) => write!(f, "wait_cpu{c}_parked"),
            MgmtOp::StageCellConfig => write!(f, "stage_cell_config"),
            MgmtOp::CreateCell => write!(f, "cell_create"),
            MgmtOp::LoadCell => write!(f, "cell_set_loadable"),
            MgmtOp::StartCell => write!(f, "cell_start"),
            MgmtOp::RunFor(n) => write!(f, "run_for({n})"),
            MgmtOp::QueryCellState => write!(f, "cell_get_state"),
            MgmtOp::ShutdownCell => write!(f, "cell_shutdown"),
            MgmtOp::DestroyCell => write!(f, "cell_destroy"),
            MgmtOp::ArmWatchdog => write!(f, "arm_watchdog"),
            MgmtOp::MonitorFor { steps, window } => {
                write!(f, "monitor_for({steps}, window={window})")
            }
            MgmtOp::Restart(i) => write!(f, "restart(@{i})"),
            MgmtOp::Halt => write!(f, "halt"),
        }
    }
}

/// A recorded operation result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MgmtRecord {
    /// Simulator step at which the operation completed.
    pub step: u64,
    /// The operation.
    pub op: MgmtOp,
    /// The hypercall result (0 for local operations like staging).
    pub result: i64,
}

/// A named, ordered operation list.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MgmtScript {
    /// Script name for logs.
    pub name: String,
    /// The operations.
    pub ops: Vec<MgmtOp>,
}

impl MgmtScript {
    /// E1's script: boot, issue `polls` info hypercalls (advancing the
    /// injection cadence), stage the system configuration and attempt
    /// one `enable`, then keep polling so post-condition liveness can
    /// be observed.
    pub fn enable_attempt(polls: usize) -> MgmtScript {
        let mut ops = vec![MgmtOp::Delay(8), MgmtOp::StageSystemConfig];
        ops.extend(std::iter::repeat_n(MgmtOp::PollInfo, polls));
        ops.push(MgmtOp::Enable);
        ops.push(MgmtOp::RunFor(64));
        ops.push(MgmtOp::PollInfo);
        ops.push(MgmtOp::Halt);
        MgmtScript {
            name: "enable-attempt".into(),
            ops,
        }
    }

    /// The golden / E3 script: enable, hand over CPU 1, bring up the
    /// FreeRTOS cell, then let the mixed-criticality system run.
    pub fn bring_up_and_run(run_steps: u64) -> MgmtScript {
        MgmtScript {
            name: "bring-up-and-run".into(),
            ops: vec![
                MgmtOp::Delay(8),
                MgmtOp::StageSystemConfig,
                MgmtOp::Enable,
                MgmtOp::RequestCpuOffline(1),
                MgmtOp::WaitCpuParked(1),
                MgmtOp::StageCellConfig,
                MgmtOp::CreateCell,
                MgmtOp::LoadCell,
                MgmtOp::StartCell,
                MgmtOp::RunFor(run_steps),
                MgmtOp::QueryCellState,
                MgmtOp::Halt,
            ],
        }
    }

    /// E2's script: like [`MgmtScript::bring_up_and_run`] but cycling
    /// the cell lifecycle — run, query, shutdown, destroy, recreate —
    /// so injections repeatedly cross the cell-boot window.
    pub fn lifecycle_cycling(run_steps: u64) -> MgmtScript {
        MgmtScript {
            name: "lifecycle-cycling".into(),
            ops: vec![
                MgmtOp::Delay(8),
                MgmtOp::StageSystemConfig,
                MgmtOp::Enable,
                MgmtOp::RequestCpuOffline(1),
                MgmtOp::WaitCpuParked(1),
                MgmtOp::StageCellConfig,
                // index 6: loop head
                MgmtOp::CreateCell,
                MgmtOp::LoadCell,
                MgmtOp::StartCell,
                MgmtOp::RunFor(run_steps),
                MgmtOp::QueryCellState,
                MgmtOp::ShutdownCell,
                MgmtOp::QueryCellState,
                MgmtOp::DestroyCell,
                MgmtOp::Restart(6),
            ],
        }
    }

    /// The loop-head index used by [`MgmtScript::lifecycle_cycling`].
    pub const LIFECYCLE_LOOP_HEAD: usize = 6;

    /// E5a: like [`MgmtScript::bring_up_and_run`] but with the
    /// hardware watchdog armed, so a root-cell panic is detected.
    pub fn bring_up_with_watchdog(run_steps: u64) -> MgmtScript {
        let mut script = MgmtScript::bring_up_and_run(run_steps);
        script.name = "bring-up-with-watchdog".into();
        script.ops.insert(1, MgmtOp::ArmWatchdog);
        script
    }

    /// E5b: bring the cell up and run the heartbeat safety monitor, so
    /// a silently-dead cell (the E2 inconsistent state) is detected.
    pub fn bring_up_with_monitor(monitor_steps: u64, window: u64) -> MgmtScript {
        MgmtScript {
            name: "bring-up-with-monitor".into(),
            ops: vec![
                MgmtOp::Delay(8),
                MgmtOp::StageSystemConfig,
                MgmtOp::Enable,
                MgmtOp::RequestCpuOffline(1),
                MgmtOp::WaitCpuParked(1),
                MgmtOp::StageCellConfig,
                MgmtOp::CreateCell,
                MgmtOp::LoadCell,
                MgmtOp::StartCell,
                MgmtOp::MonitorFor {
                    steps: monitor_steps,
                    window,
                },
                MgmtOp::QueryCellState,
                MgmtOp::Halt,
            ],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enable_attempt_places_enable_after_the_polls() {
        let script = MgmtScript::enable_attempt(49);
        let polls = script
            .ops
            .iter()
            .filter(|op| matches!(op, MgmtOp::PollInfo))
            .count();
        assert_eq!(polls, 50); // 49 pre-enable + 1 liveness poll
        let enable_pos = script
            .ops
            .iter()
            .position(|op| matches!(op, MgmtOp::Enable))
            .unwrap();
        // Exactly 49 polls precede the enable.
        let pre = script.ops[..enable_pos]
            .iter()
            .filter(|op| matches!(op, MgmtOp::PollInfo))
            .count();
        assert_eq!(pre, 49);
    }

    #[test]
    fn lifecycle_restart_points_at_create() {
        let script = MgmtScript::lifecycle_cycling(100);
        assert_eq!(
            script.ops[MgmtScript::LIFECYCLE_LOOP_HEAD],
            MgmtOp::CreateCell
        );
        assert!(matches!(
            script.ops.last(),
            Some(MgmtOp::Restart(MgmtScript::LIFECYCLE_LOOP_HEAD))
        ));
    }

    #[test]
    fn ops_display_is_stable() {
        assert_eq!(MgmtOp::Enable.to_string(), "enable");
        assert_eq!(
            MgmtOp::RequestCpuOffline(1).to_string(),
            "request_cpu1_offline"
        );
        assert_eq!(MgmtOp::Restart(6).to_string(), "restart(@6)");
    }
}

//! Cell runtime state.
//!
//! A *cell* is Jailhouse's unit of partitioning: a static bundle of
//! CPUs, memory regions and interrupt lines running one guest. The
//! root cell (id 0) is created when the hypervisor is enabled and can
//! never be destroyed; non-root cells are created, loaded, started,
//! shut down and destroyed through hypercalls.
//!
//! The state machine matters for the paper's experiments: E2 hinges on
//! a cell being *reported* [`CellState::Running`] while its CPU never
//! came online, and E3's CPU-park outcome moves the cell to
//! [`CellState::Failed`] while the rest of the system keeps going.

use crate::config::{CellConfig, MemFlags};
use crate::error::HvError;
use certify_arch::mmu::{S2Perms, Stage2Table, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A cell identifier. Id 0 is always the root cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId(pub u32);

/// The root cell's id.
pub const ROOT_CELL: CellId = CellId(0);

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

/// Lifecycle state of a cell, mirroring Jailhouse's communication-
/// region states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellState {
    /// Created but not yet started; loadable.
    Stopped,
    /// Started; the hypervisor believes the cell is executing. (E2
    /// shows this belief can be wrong.)
    Running,
    /// Shut down by the root cell; resources have been returned.
    ShutDown,
    /// A fault was isolated in this cell (e.g. its CPU was parked on an
    /// unhandled trap).
    Failed,
}

impl fmt::Display for CellState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            CellState::Stopped => "stopped",
            CellState::Running => "running",
            CellState::ShutDown => "shut down",
            CellState::Failed => "failed",
        };
        f.write_str(name)
    }
}

/// A cell and its runtime state.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    /// This cell's id.
    pub id: CellId,
    /// The static configuration the cell was created from.
    pub config: CellConfig,
    state: CellState,
    /// Whether an image has been loaded since the last stop.
    loaded: bool,
    /// The stage-2 translation table enforcing this cell's memory
    /// assignment. Built once from the static configuration — the
    /// hardware mechanism behind the isolation the paper probes.
    stage2: Stage2Table,
}

impl Cell {
    /// Creates a cell in the [`CellState::Stopped`] state, building
    /// its stage-2 table from the configured memory regions
    /// (page-aligned, non-emulated regions are identity-mapped;
    /// emulated `IO` regions are deliberately left unmapped so their
    /// accesses trap).
    pub fn new(id: CellId, config: CellConfig) -> Cell {
        let mut stage2 = Stage2Table::new();
        for region in &config.regions {
            if region.flags.contains(MemFlags::IO) {
                continue;
            }
            if region.base % PAGE_SIZE != 0 || region.size % PAGE_SIZE != 0 {
                // Sub-page device windows (e.g. a UART register block)
                // are handled by the region-list fast path instead of
                // the page tables.
                continue;
            }
            let perms = S2Perms {
                read: region.flags.contains(MemFlags::READ),
                write: region.flags.contains(MemFlags::WRITE),
                execute: region.flags.contains(MemFlags::EXECUTE),
            };
            stage2.map_identity(region.base, region.size, perms);
        }
        Cell {
            id,
            config,
            state: CellState::Stopped,
            loaded: false,
            stage2,
        }
    }

    /// The cell's stage-2 translation table.
    pub fn stage2(&self) -> &Stage2Table {
        &self.stage2
    }

    /// Mutable access to the stage-2 table — the surface a memory-fault
    /// campaign corrupts to model MMU-table faults. Regular hypervisor
    /// operation never rewrites the table after [`Cell::new`].
    pub fn stage2_mut(&mut self) -> &mut Stage2Table {
        &mut self.stage2
    }

    /// The cell's communication region, rooted at its first private
    /// executable RAM region (Jailhouse's convention).
    pub fn comm_region(&self) -> Option<crate::commregion::CommRegion> {
        self.config
            .regions
            .iter()
            .find(|r| {
                r.flags.contains(MemFlags::EXECUTE)
                    && !r.flags.contains(MemFlags::IO)
                    && !r.flags.contains(MemFlags::SHARED)
            })
            .map(|r| crate::commregion::CommRegion::at(r.base))
    }

    /// Current lifecycle state.
    pub fn state(&self) -> CellState {
        self.state
    }

    /// Whether this is the root cell.
    pub fn is_root(&self) -> bool {
        self.id == ROOT_CELL
    }

    /// Marks the cell image as loaded (`CELL_SET_LOADABLE` + copy).
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Busy`] if the cell is running.
    pub fn mark_loaded(&mut self) -> Result<(), HvError> {
        if self.state == CellState::Running {
            return Err(HvError::Busy);
        }
        self.loaded = true;
        Ok(())
    }

    /// Whether an image is loaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Transition: start the cell.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::Busy`] if already running, or
    /// [`HvError::InvalidArguments`] if no image was loaded.
    pub fn start(&mut self) -> Result<(), HvError> {
        match self.state {
            CellState::Running => Err(HvError::Busy),
            _ if !self.loaded => Err(HvError::InvalidArguments),
            _ => {
                self.state = CellState::Running;
                Ok(())
            }
        }
    }

    /// Transition: the root cell shut this cell down; its resources
    /// return to the root cell.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::NotPermitted`] on the root cell.
    pub fn shut_down(&mut self) -> Result<(), HvError> {
        if self.is_root() {
            return Err(HvError::NotPermitted);
        }
        self.state = CellState::ShutDown;
        self.loaded = false;
        Ok(())
    }

    /// Transition: a fault was isolated into this cell.
    pub fn mark_failed(&mut self) {
        if !self.is_root() {
            self.state = CellState::Failed;
        }
    }
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} \"{}\" [{}]", self.id, self.config.name, self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn rtos_cell() -> Cell {
        Cell::new(CellId(1), SystemConfig::freertos_cell())
    }

    #[test]
    fn new_cell_is_stopped_and_unloaded() {
        let cell = rtos_cell();
        assert_eq!(cell.state(), CellState::Stopped);
        assert!(!cell.is_loaded());
        assert!(!cell.is_root());
    }

    #[test]
    fn start_requires_loaded_image() {
        let mut cell = rtos_cell();
        assert_eq!(cell.start(), Err(HvError::InvalidArguments));
        cell.mark_loaded().unwrap();
        assert_eq!(cell.start(), Ok(()));
        assert_eq!(cell.state(), CellState::Running);
    }

    #[test]
    fn double_start_is_busy() {
        let mut cell = rtos_cell();
        cell.mark_loaded().unwrap();
        cell.start().unwrap();
        assert_eq!(cell.start(), Err(HvError::Busy));
    }

    #[test]
    fn mark_loaded_while_running_is_busy() {
        let mut cell = rtos_cell();
        cell.mark_loaded().unwrap();
        cell.start().unwrap();
        assert_eq!(cell.mark_loaded(), Err(HvError::Busy));
    }

    #[test]
    fn shutdown_resets_loaded_flag() {
        let mut cell = rtos_cell();
        cell.mark_loaded().unwrap();
        cell.start().unwrap();
        cell.shut_down().unwrap();
        assert_eq!(cell.state(), CellState::ShutDown);
        assert!(!cell.is_loaded());
        // Restart requires a fresh load.
        assert_eq!(cell.start(), Err(HvError::InvalidArguments));
    }

    #[test]
    fn root_cell_cannot_shut_down_or_fail() {
        let mut root = Cell::new(ROOT_CELL, SystemConfig::banana_pi_demo().root);
        assert_eq!(root.shut_down(), Err(HvError::NotPermitted));
        root.mark_failed();
        assert_ne!(root.state(), CellState::Failed);
    }

    #[test]
    fn failed_cell_can_be_restarted_after_reload() {
        let mut cell = rtos_cell();
        cell.mark_loaded().unwrap();
        cell.start().unwrap();
        cell.mark_failed();
        assert_eq!(cell.state(), CellState::Failed);
        // The paper: destroying and re-creating fixes the cell; at the
        // cell-object level a reload+start models the re-creation.
        cell.mark_loaded().unwrap();
        assert_eq!(cell.start(), Ok(()));
    }

    #[test]
    fn display_shows_name_and_state() {
        let cell = rtos_cell();
        let s = cell.to_string();
        assert!(s.contains("freertos-demo"));
        assert!(s.contains("stopped"));
    }
}

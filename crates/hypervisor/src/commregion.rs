//! Per-cell communication regions.
//!
//! Jailhouse places a small *communication region* at the start of
//! each cell's RAM: a page through which the hypervisor publishes the
//! cell's lifecycle state and exchanges management messages with the
//! guest. Tools (and the root cell) read the published state — which
//! is exactly why experiment E2's inconsistency is dangerous: the
//! comm region of a dead cell still says `RUNNING`.
//!
//! Layout (all little-endian `u32`, at the cell's first RAM region):
//!
//! ```text
//! +0x00  magic "JHCM"
//! +0x04  cell state (0 stopped, 1 running, 2 shut down, 3 failed)
//! +0x08  message to the cell (e.g. shutdown request)
//! +0x0c  message from the cell (e.g. shutdown ack)
//! ```

use crate::cell::CellState;
use certify_board::Machine;

/// Magic word identifying an initialised communication region.
pub const COMM_MAGIC: u32 = 0x4a48_434d; // "JHCM"
/// Offset of the state word.
pub const STATE_OFFSET: u32 = 0x4;
/// Offset of the to-cell message word.
pub const MSG_TO_CELL_OFFSET: u32 = 0x8;
/// Offset of the from-cell message word.
pub const MSG_FROM_CELL_OFFSET: u32 = 0xc;

/// Message codes exchanged through the region.
pub mod msg {
    /// No message pending.
    pub const NONE: u32 = 0;
    /// The root cell requests a graceful shutdown.
    pub const SHUTDOWN_REQUEST: u32 = 1;
    /// The cell acknowledges the shutdown request.
    pub const SHUTDOWN_ACK: u32 = 2;
}

/// Encodes a cell state for the region.
pub fn encode_state(state: CellState) -> u32 {
    match state {
        CellState::Stopped => 0,
        CellState::Running => 1,
        CellState::ShutDown => 2,
        CellState::Failed => 3,
    }
}

/// Decodes a state word; `None` for corrupted values.
pub fn decode_state(word: u32) -> Option<CellState> {
    match word {
        0 => Some(CellState::Stopped),
        1 => Some(CellState::Running),
        2 => Some(CellState::ShutDown),
        3 => Some(CellState::Failed),
        _ => None,
    }
}

/// Hypervisor-side view of one cell's communication region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommRegion {
    base: u32,
}

impl CommRegion {
    /// A region rooted at `base` (the cell's first RAM address).
    pub fn at(base: u32) -> CommRegion {
        CommRegion { base }
    }

    /// The region's base address.
    pub fn base(self) -> u32 {
        self.base
    }

    /// Initialises the region: writes the magic, the state, and clears
    /// both message slots.
    pub fn init(self, machine: &mut Machine, state: CellState) {
        let _ = machine.ram_mut().write32(self.base, COMM_MAGIC);
        self.publish_state(machine, state);
        let _ = machine
            .ram_mut()
            .write32(self.base + MSG_TO_CELL_OFFSET, msg::NONE);
        let _ = machine
            .ram_mut()
            .write32(self.base + MSG_FROM_CELL_OFFSET, msg::NONE);
    }

    /// Publishes a lifecycle state.
    pub fn publish_state(self, machine: &mut Machine, state: CellState) {
        let _ = machine
            .ram_mut()
            .write32(self.base + STATE_OFFSET, encode_state(state));
    }

    /// Reads the published state (what `jailhouse cell list` would
    /// show). Returns `None` if the region is uninitialised or
    /// corrupted.
    pub fn read_state(self, machine: &Machine) -> Option<CellState> {
        if machine.ram().read32(self.base).ok()? != COMM_MAGIC {
            return None;
        }
        decode_state(machine.ram().read32(self.base + STATE_OFFSET).ok()?)
    }

    /// Posts a message to the cell.
    pub fn post_to_cell(self, machine: &mut Machine, message: u32) {
        let _ = machine
            .ram_mut()
            .write32(self.base + MSG_TO_CELL_OFFSET, message);
    }

    /// Reads (without clearing) the message pending for the cell.
    pub fn message_to_cell(self, machine: &Machine) -> u32 {
        machine
            .ram()
            .read32(self.base + MSG_TO_CELL_OFFSET)
            .unwrap_or(msg::NONE)
    }

    /// The cell's reply slot.
    pub fn message_from_cell(self, machine: &Machine) -> u32 {
        machine
            .ram()
            .read32(self.base + MSG_FROM_CELL_OFFSET)
            .unwrap_or(msg::NONE)
    }

    /// Guest-side acknowledgement of a pending message.
    pub fn acknowledge(self, machine: &mut Machine, reply: u32) {
        let _ = machine
            .ram_mut()
            .write32(self.base + MSG_FROM_CELL_OFFSET, reply);
        let _ = machine
            .ram_mut()
            .write32(self.base + MSG_TO_CELL_OFFSET, msg::NONE);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new_banana_pi()
    }

    const BASE: u32 = certify_board::memmap::RTOS_RAM_BASE;

    #[test]
    fn init_publishes_magic_and_state() {
        let mut m = machine();
        let region = CommRegion::at(BASE);
        region.init(&mut m, CellState::Stopped);
        assert_eq!(region.read_state(&m), Some(CellState::Stopped));
        assert_eq!(m.ram().read32(BASE).unwrap(), COMM_MAGIC);
    }

    #[test]
    fn uninitialised_region_reads_none() {
        let m = machine();
        assert_eq!(CommRegion::at(BASE).read_state(&m), None);
    }

    #[test]
    fn state_transitions_are_visible() {
        let mut m = machine();
        let region = CommRegion::at(BASE);
        region.init(&mut m, CellState::Stopped);
        region.publish_state(&mut m, CellState::Running);
        assert_eq!(region.read_state(&m), Some(CellState::Running));
        region.publish_state(&mut m, CellState::Failed);
        assert_eq!(region.read_state(&m), Some(CellState::Failed));
    }

    #[test]
    fn corrupted_state_word_reads_none() {
        let mut m = machine();
        let region = CommRegion::at(BASE);
        region.init(&mut m, CellState::Running);
        m.ram_mut().write32(BASE + STATE_OFFSET, 99).unwrap();
        assert_eq!(region.read_state(&m), None);
    }

    #[test]
    fn message_round_trip() {
        let mut m = machine();
        let region = CommRegion::at(BASE);
        region.init(&mut m, CellState::Running);
        region.post_to_cell(&mut m, msg::SHUTDOWN_REQUEST);
        assert_eq!(region.message_to_cell(&m), msg::SHUTDOWN_REQUEST);
        region.acknowledge(&mut m, msg::SHUTDOWN_ACK);
        assert_eq!(region.message_from_cell(&m), msg::SHUTDOWN_ACK);
        assert_eq!(region.message_to_cell(&m), msg::NONE);
    }

    #[test]
    fn state_codes_round_trip() {
        for state in [
            CellState::Stopped,
            CellState::Running,
            CellState::ShutDown,
            CellState::Failed,
        ] {
            assert_eq!(decode_state(encode_state(state)), Some(state));
        }
        assert_eq!(decode_state(4), None);
    }
}

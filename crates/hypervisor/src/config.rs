//! Static cell and system configurations.
//!
//! Jailhouse cells are described by C structures compiled into `.cell`
//! blobs, loaded into root-cell memory and passed to the hypervisor by
//! physical address. This module models that pipeline: configurations
//! are built in Rust, serialized to a compact binary blob with a magic
//! and checksum, staged into guest RAM, and re-parsed by the
//! hypervisor when handling `HYPERVISOR_ENABLE` / `CELL_CREATE`.
//!
//! The checksum is what makes experiment E1 deterministic: a corrupted
//! blob address (or a blob corrupted in flight) fails validation and
//! the hypercall returns *invalid arguments* before any side effect.

use crate::error::HvError;
use certify_arch::{CpuId, IrqId};
use certify_board::memmap;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Maximum cell-name length in the serialized form.
pub const MAX_NAME_LEN: usize = 31;
/// Magic prefix of a serialized cell configuration.
pub const CONFIG_MAGIC: u32 = 0x4a48_4345; // "JHCE"

/// Access permissions of a memory region, Jailhouse-style flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MemFlags(pub u32);

impl MemFlags {
    /// Region is readable.
    pub const READ: MemFlags = MemFlags(1 << 0);
    /// Region is writable.
    pub const WRITE: MemFlags = MemFlags(1 << 1);
    /// Region is executable.
    pub const EXECUTE: MemFlags = MemFlags(1 << 2);
    /// Region is device MMIO emulated by the hypervisor (accesses
    /// trap into `arch_handle_trap`).
    pub const IO: MemFlags = MemFlags(1 << 3);
    /// Region is shared with other cells (ivshmem).
    pub const SHARED: MemFlags = MemFlags(1 << 4);

    /// Read+write+execute normal memory.
    pub fn rwx() -> MemFlags {
        MemFlags(Self::READ.0 | Self::WRITE.0 | Self::EXECUTE.0)
    }

    /// Read+write normal memory.
    pub fn rw() -> MemFlags {
        MemFlags(Self::READ.0 | Self::WRITE.0)
    }

    /// Emulated device MMIO (read/write, trapping).
    pub fn io() -> MemFlags {
        MemFlags(Self::READ.0 | Self::WRITE.0 | Self::IO.0)
    }

    /// Shared read/write memory.
    pub fn shared_rw() -> MemFlags {
        MemFlags(Self::READ.0 | Self::WRITE.0 | Self::SHARED.0)
    }

    /// Whether all bits of `other` are set in `self`.
    pub fn contains(self, other: MemFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Union of two flag sets.
    pub fn union(self, other: MemFlags) -> MemFlags {
        MemFlags(self.0 | other.0)
    }
}

impl fmt::Display for MemFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}{}{}",
            if self.contains(MemFlags::READ) {
                "r"
            } else {
                "-"
            },
            if self.contains(MemFlags::WRITE) {
                "w"
            } else {
                "-"
            },
            if self.contains(MemFlags::EXECUTE) {
                "x"
            } else {
                "-"
            },
            if self.contains(MemFlags::IO) {
                "i"
            } else {
                "-"
            },
            if self.contains(MemFlags::SHARED) {
                "s"
            } else {
                "-"
            },
        )
    }
}

/// A physical memory region assigned to a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRegion {
    /// Physical base address.
    pub base: u32,
    /// Region size in bytes.
    pub size: u32,
    /// Access permissions.
    pub flags: MemFlags,
}

impl MemRegion {
    /// Creates a region.
    pub fn new(base: u32, size: u32, flags: MemFlags) -> MemRegion {
        MemRegion { base, size, flags }
    }

    /// Whether `addr` falls inside this region.
    pub fn contains_addr(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// Whether this region overlaps `other`.
    pub fn overlaps(&self, other: &MemRegion) -> bool {
        let self_end = u64::from(self.base) + u64::from(self.size);
        let other_end = u64::from(other.base) + u64::from(other.size);
        u64::from(self.base) < other_end && u64::from(other.base) < self_end
    }
}

impl fmt::Display for MemRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "0x{:08x}..0x{:08x} [{}]",
            self.base,
            u64::from(self.base) + u64::from(self.size),
            self.flags
        )
    }
}

/// A static cell description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Human-readable cell name (≤ [`MAX_NAME_LEN`] bytes).
    pub name: String,
    /// CPUs statically assigned to this cell.
    pub cpus: Vec<CpuId>,
    /// Memory regions assigned to this cell.
    pub regions: Vec<MemRegion>,
    /// Interrupt lines routed to this cell.
    pub irqs: Vec<IrqId>,
    /// Guest entry point (physical address of the first instruction).
    pub entry: u32,
}

impl CellConfig {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`HvError::InvalidArguments`] when the name is too long
    /// or empty, no CPU is assigned, regions are empty or overlap each
    /// other, or the entry point lies outside an executable region.
    pub fn validate(&self) -> Result<(), HvError> {
        if self.name.is_empty() || self.name.len() > MAX_NAME_LEN {
            return Err(HvError::InvalidArguments);
        }
        if self.cpus.is_empty() {
            return Err(HvError::InvalidArguments);
        }
        if self.regions.is_empty() {
            return Err(HvError::InvalidArguments);
        }
        for (i, a) in self.regions.iter().enumerate() {
            if a.size == 0 || u64::from(a.base) + u64::from(a.size) > u64::from(u32::MAX) + 1 {
                return Err(HvError::InvalidArguments);
            }
            for b in self.regions.iter().skip(i + 1) {
                if a.overlaps(b) {
                    return Err(HvError::InvalidArguments);
                }
            }
        }
        let entry_ok = self
            .regions
            .iter()
            .any(|r| r.contains_addr(self.entry) && r.flags.contains(MemFlags::EXECUTE));
        if !entry_ok {
            return Err(HvError::InvalidArguments);
        }
        Ok(())
    }

    /// The region containing `addr`, if any.
    pub fn region_for(&self, addr: u32) -> Option<&MemRegion> {
        self.regions.iter().find(|r| r.contains_addr(addr))
    }

    /// Serializes to the binary blob format staged in guest RAM:
    ///
    /// ```text
    /// magic | checksum | name_len | name bytes (padded to 32) |
    /// num_cpus | cpu ids | num_regions | regions | num_irqs | irqs |
    /// entry
    /// ```
    ///
    /// All fields are little-endian `u32` except the name bytes. The
    /// checksum is a wrapping sum of every subsequent word.
    pub fn serialize(&self) -> Vec<u8> {
        let mut words: Vec<u32> = Vec::new();
        words.push(self.name.len() as u32);
        let mut name_bytes = [0u8; 32];
        name_bytes[..self.name.len().min(32)]
            .copy_from_slice(&self.name.as_bytes()[..self.name.len().min(32)]);
        for chunk in name_bytes.chunks(4) {
            words.push(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]));
        }
        words.push(self.cpus.len() as u32);
        words.extend(self.cpus.iter().map(|c| c.0));
        words.push(self.regions.len() as u32);
        for r in &self.regions {
            words.push(r.base);
            words.push(r.size);
            words.push(r.flags.0);
        }
        words.push(self.irqs.len() as u32);
        words.extend(self.irqs.iter().map(|i| u32::from(i.0)));
        words.push(self.entry);

        let checksum = words.iter().fold(0u32, |acc, w| acc.wrapping_add(*w));
        let mut blob = Vec::with_capacity((words.len() + 2) * 4);
        blob.extend(CONFIG_MAGIC.to_le_bytes());
        blob.extend(checksum.to_le_bytes());
        for w in words {
            blob.extend(w.to_le_bytes());
        }
        blob
    }

    /// Parses a binary blob produced by [`CellConfig::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`HvError::InvalidArguments`] on a bad magic, checksum
    /// mismatch, truncated blob, or malformed contents — the
    /// first line of defence that experiment E1 exercises.
    pub fn deserialize(blob: &[u8]) -> Result<CellConfig, HvError> {
        let mut reader = WordReader::new(blob);
        let magic = reader.next()?;
        if magic != CONFIG_MAGIC {
            return Err(HvError::InvalidArguments);
        }
        let checksum = reader.next()?;
        let payload_sum = reader
            .remaining_words()?
            .iter()
            .fold(0u32, |acc, w| acc.wrapping_add(*w));
        if payload_sum != checksum {
            return Err(HvError::InvalidArguments);
        }

        let name_len = reader.next()? as usize;
        if name_len == 0 || name_len > MAX_NAME_LEN {
            return Err(HvError::InvalidArguments);
        }
        let mut name_bytes = Vec::with_capacity(32);
        for _ in 0..8 {
            name_bytes.extend(reader.next()?.to_le_bytes());
        }
        let name = String::from_utf8(name_bytes[..name_len].to_vec())
            .map_err(|_| HvError::InvalidArguments)?;

        let num_cpus = reader.next()? as usize;
        if num_cpus > 64 {
            return Err(HvError::InvalidArguments);
        }
        let cpus = (0..num_cpus)
            .map(|_| reader.next().map(CpuId))
            .collect::<Result<Vec<_>, _>>()?;

        let num_regions = reader.next()? as usize;
        if num_regions > 64 {
            return Err(HvError::InvalidArguments);
        }
        let mut regions = Vec::with_capacity(num_regions);
        for _ in 0..num_regions {
            let base = reader.next()?;
            let size = reader.next()?;
            let flags = MemFlags(reader.next()?);
            regions.push(MemRegion { base, size, flags });
        }

        let num_irqs = reader.next()? as usize;
        if num_irqs > 256 {
            return Err(HvError::InvalidArguments);
        }
        let irqs = (0..num_irqs)
            .map(|_| reader.next().map(|w| IrqId(w as u16)))
            .collect::<Result<Vec<_>, _>>()?;

        let entry = reader.next()?;

        let config = CellConfig {
            name,
            cpus,
            regions,
            irqs,
            entry,
        };
        config.validate()?;
        Ok(config)
    }
}

/// Little-endian word cursor over a byte blob.
struct WordReader<'a> {
    blob: &'a [u8],
    pos: usize,
}

impl<'a> WordReader<'a> {
    fn new(blob: &'a [u8]) -> Self {
        WordReader { blob, pos: 0 }
    }

    fn next(&mut self) -> Result<u32, HvError> {
        let bytes = self
            .blob
            .get(self.pos..self.pos + 4)
            .ok_or(HvError::InvalidArguments)?;
        self.pos += 4;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// All words from the current position to the end (for checksums).
    fn remaining_words(&self) -> Result<Vec<u32>, HvError> {
        let rest = &self.blob[self.pos..];
        if !rest.len().is_multiple_of(4) {
            return Err(HvError::InvalidArguments);
        }
        Ok(rest
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// The whole-system configuration: the root cell plus the hypervisor
/// carve-out.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Root-cell description (owns everything initially).
    pub root: CellConfig,
    /// Memory reserved for the hypervisor itself.
    pub hv_region: MemRegion,
}

impl SystemConfig {
    /// The paper's deployment: root cell owning both CPUs, its RAM
    /// slice, the UART (direct), the GIC distributor window (emulated)
    /// and the GPIO block (emulated), with the hypervisor carve-out at
    /// the top of DRAM.
    pub fn banana_pi_demo() -> SystemConfig {
        SystemConfig {
            root: CellConfig {
                name: "banana-pi".into(),
                cpus: vec![CpuId(0), CpuId(1)],
                regions: vec![
                    MemRegion::new(
                        memmap::ROOT_RAM_BASE,
                        memmap::ROOT_RAM_SIZE,
                        MemFlags::rwx(),
                    ),
                    MemRegion::new(
                        memmap::IVSHMEM_BASE,
                        memmap::IVSHMEM_SIZE,
                        MemFlags::shared_rw(),
                    ),
                    MemRegion::new(memmap::UART_BASE, memmap::UART_SIZE, MemFlags::rw()),
                    MemRegion::new(memmap::WDT_BASE, memmap::WDT_SIZE, MemFlags::rw()),
                    MemRegion::new(memmap::GPIO_BASE, memmap::GPIO_SIZE, MemFlags::io()),
                ],
                irqs: vec![IrqId(memmap::UART_IRQ), IrqId(memmap::IVSHMEM_IRQ)],
                entry: memmap::ROOT_RAM_BASE + 0x8000,
            },
            hv_region: MemRegion::new(memmap::HV_RAM_BASE, memmap::HV_RAM_SIZE, MemFlags::rw()),
        }
    }

    /// The paper's FreeRTOS non-root cell: CPU 1, its RAM slice, the
    /// shared ivshmem page and the (emulated) GPIO block for the LED.
    pub fn freertos_cell() -> CellConfig {
        CellConfig {
            name: "freertos-demo".into(),
            cpus: vec![CpuId(1)],
            regions: vec![
                MemRegion::new(
                    memmap::RTOS_RAM_BASE,
                    memmap::RTOS_RAM_SIZE,
                    MemFlags::rwx(),
                ),
                MemRegion::new(
                    memmap::IVSHMEM_BASE,
                    memmap::IVSHMEM_SIZE,
                    MemFlags::shared_rw(),
                ),
                MemRegion::new(memmap::GPIO_BASE, memmap::GPIO_SIZE, MemFlags::io()),
            ],
            irqs: vec![IrqId(memmap::IVSHMEM_IRQ)],
            entry: memmap::RTOS_RAM_BASE + 0x8000,
        }
    }

    /// Serializes the system configuration (same framing as a cell
    /// blob; the root config is the payload, followed by the
    /// hypervisor region).
    pub fn serialize(&self) -> Vec<u8> {
        let mut blob = self.root.serialize();
        // Append the hv region and refresh the checksum over the whole
        // payload.
        blob.extend(self.hv_region.base.to_le_bytes());
        blob.extend(self.hv_region.size.to_le_bytes());
        blob.extend(self.hv_region.flags.0.to_le_bytes());
        let payload: Vec<u32> = blob[8..]
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let checksum = payload.iter().fold(0u32, |acc, w| acc.wrapping_add(*w));
        blob[4..8].copy_from_slice(&checksum.to_le_bytes());
        blob
    }

    /// Parses a blob produced by [`SystemConfig::serialize`].
    ///
    /// # Errors
    ///
    /// Returns [`HvError::InvalidArguments`] on magic/checksum/layout
    /// errors.
    pub fn deserialize(blob: &[u8]) -> Result<SystemConfig, HvError> {
        if blob.len() < 12 + 8 {
            return Err(HvError::InvalidArguments);
        }
        let split = blob.len() - 12;
        // Validate the overall checksum first.
        let mut reader = WordReader::new(blob);
        let magic = reader.next()?;
        if magic != CONFIG_MAGIC {
            return Err(HvError::InvalidArguments);
        }
        let checksum = reader.next()?;
        let payload_sum = reader
            .remaining_words()?
            .iter()
            .fold(0u32, |acc, w| acc.wrapping_add(*w));
        if payload_sum != checksum {
            return Err(HvError::InvalidArguments);
        }

        // Re-serialize the cell part with its own checksum to reuse the
        // cell parser.
        let mut cell_blob = blob[..split].to_vec();
        let cell_payload: Vec<u32> = cell_blob[8..]
            .chunks(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let cell_sum = cell_payload
            .iter()
            .fold(0u32, |acc, w| acc.wrapping_add(*w));
        cell_blob[4..8].copy_from_slice(&cell_sum.to_le_bytes());
        let root = CellConfig::deserialize(&cell_blob)?;

        let mut tail = WordReader::new(&blob[split..]);
        let hv_region = MemRegion {
            base: tail.next()?,
            size: tail.next()?,
            flags: MemFlags(tail.next()?),
        };
        if hv_region.size == 0 {
            return Err(HvError::InvalidArguments);
        }
        Ok(SystemConfig { root, hv_region })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_configs_validate() {
        SystemConfig::banana_pi_demo().root.validate().unwrap();
        SystemConfig::freertos_cell().validate().unwrap();
    }

    #[test]
    fn cell_blob_round_trips() {
        let config = SystemConfig::freertos_cell();
        let blob = config.serialize();
        assert_eq!(CellConfig::deserialize(&blob).unwrap(), config);
    }

    #[test]
    fn system_blob_round_trips() {
        let config = SystemConfig::banana_pi_demo();
        let blob = config.serialize();
        assert_eq!(SystemConfig::deserialize(&blob).unwrap(), config);
    }

    #[test]
    fn corrupted_magic_rejected() {
        let mut blob = SystemConfig::freertos_cell().serialize();
        blob[0] ^= 0x01;
        assert_eq!(
            CellConfig::deserialize(&blob),
            Err(HvError::InvalidArguments)
        );
    }

    #[test]
    fn any_single_bit_flip_in_blob_is_rejected() {
        // The E1 guarantee: a corrupted configuration never parses.
        let blob = SystemConfig::freertos_cell().serialize();
        for byte in 0..blob.len() {
            for bit in 0..8 {
                let mut corrupted = blob.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    CellConfig::deserialize(&corrupted).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn truncated_blob_rejected() {
        let blob = SystemConfig::freertos_cell().serialize();
        for len in 0..blob.len() {
            assert!(CellConfig::deserialize(&blob[..len]).is_err());
        }
    }

    #[test]
    fn overlapping_regions_rejected() {
        let mut config = SystemConfig::freertos_cell();
        config.regions.push(MemRegion::new(
            memmap::RTOS_RAM_BASE + 0x1000,
            0x1000,
            MemFlags::rw(),
        ));
        assert_eq!(config.validate(), Err(HvError::InvalidArguments));
    }

    #[test]
    fn entry_outside_executable_region_rejected() {
        let mut config = SystemConfig::freertos_cell();
        config.entry = memmap::UART_BASE;
        assert_eq!(config.validate(), Err(HvError::InvalidArguments));
    }

    #[test]
    fn empty_cpu_list_rejected() {
        let mut config = SystemConfig::freertos_cell();
        config.cpus.clear();
        assert_eq!(config.validate(), Err(HvError::InvalidArguments));
    }

    #[test]
    fn name_length_limits() {
        let mut config = SystemConfig::freertos_cell();
        config.name = String::new();
        assert!(config.validate().is_err());
        config.name = "x".repeat(MAX_NAME_LEN + 1);
        assert!(config.validate().is_err());
        config.name = "x".repeat(MAX_NAME_LEN);
        assert!(config.validate().is_ok());
    }

    #[test]
    fn region_overlap_detection() {
        let a = MemRegion::new(0x1000, 0x1000, MemFlags::rw());
        let b = MemRegion::new(0x1fff, 0x1, MemFlags::rw());
        let c = MemRegion::new(0x2000, 0x1000, MemFlags::rw());
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn flags_display() {
        assert_eq!(MemFlags::rwx().to_string(), "rwx--");
        assert_eq!(MemFlags::io().to_string(), "rw-i-");
        assert_eq!(MemFlags::shared_rw().to_string(), "rw--s");
    }
}

//! Hypervisor error codes.
//!
//! Jailhouse returns negative errno-style values from hypercalls; the
//! root-cell driver renders them as messages like *"invalid
//! arguments"* — the exact string the paper's E1 experiment observes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An error returned by a hypercall or internal hypervisor operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HvError {
    /// `-EPERM`: operation not permitted (e.g. management call from a
    /// non-root cell, or the hypervisor is not enabled).
    NotPermitted,
    /// `-ENOENT`: no cell with the requested id exists.
    NoSuchCell,
    /// `-ENOMEM`: a requested region does not fit available memory.
    OutOfMemory,
    /// `-EBUSY`: the target cell or resource is in use.
    Busy,
    /// `-EEXIST`: a cell with this id/name already exists.
    AlreadyExists,
    /// `-EINVAL`: malformed hypercall arguments or configuration — the
    /// "invalid arguments" of the paper.
    InvalidArguments,
    /// `-ENOSYS`: unknown hypercall code.
    UnknownHypercall,
}

impl HvError {
    /// The negative errno-style return value placed in `r0`.
    pub fn code(self) -> i64 {
        match self {
            HvError::NotPermitted => -1,
            HvError::NoSuchCell => -2,
            HvError::OutOfMemory => -12,
            HvError::Busy => -16,
            HvError::AlreadyExists => -17,
            HvError::InvalidArguments => -22,
            HvError::UnknownHypercall => -38,
        }
    }

    /// Decodes an errno-style value back to an error, if it matches.
    pub fn from_code(code: i64) -> Option<HvError> {
        match code {
            -1 => Some(HvError::NotPermitted),
            -2 => Some(HvError::NoSuchCell),
            -12 => Some(HvError::OutOfMemory),
            -16 => Some(HvError::Busy),
            -17 => Some(HvError::AlreadyExists),
            -22 => Some(HvError::InvalidArguments),
            -38 => Some(HvError::UnknownHypercall),
            _ => None,
        }
    }

    /// Whether this error is reported to the operator as "invalid
    /// arguments" (the classifier for experiment E1 groups rejections
    /// this way, mirroring the paper's wording).
    pub fn is_rejection(self) -> bool {
        matches!(
            self,
            HvError::InvalidArguments | HvError::UnknownHypercall | HvError::NoSuchCell
        )
    }
}

impl fmt::Display for HvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            HvError::NotPermitted => "operation not permitted",
            HvError::NoSuchCell => "no such cell",
            HvError::OutOfMemory => "out of memory",
            HvError::Busy => "resource busy",
            HvError::AlreadyExists => "cell already exists",
            HvError::InvalidArguments => "invalid arguments",
            HvError::UnknownHypercall => "unknown hypercall",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for HvError {}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [HvError; 7] = [
        HvError::NotPermitted,
        HvError::NoSuchCell,
        HvError::OutOfMemory,
        HvError::Busy,
        HvError::AlreadyExists,
        HvError::InvalidArguments,
        HvError::UnknownHypercall,
    ];

    #[test]
    fn codes_are_negative_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for e in ALL {
            assert!(e.code() < 0);
            assert!(seen.insert(e.code()), "duplicate code for {e:?}");
        }
    }

    #[test]
    fn codes_round_trip() {
        for e in ALL {
            assert_eq!(HvError::from_code(e.code()), Some(e));
        }
        assert_eq!(HvError::from_code(0), None);
        assert_eq!(HvError::from_code(-99), None);
    }

    #[test]
    fn einval_displays_the_papers_message() {
        assert_eq!(HvError::InvalidArguments.to_string(), "invalid arguments");
    }

    #[test]
    fn rejection_grouping() {
        assert!(HvError::InvalidArguments.is_rejection());
        assert!(HvError::UnknownHypercall.is_rejection());
        assert!(!HvError::Busy.is_rejection());
    }
}

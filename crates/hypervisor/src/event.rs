//! Structured hypervisor event log.
//!
//! Alongside the raw serial capture, the hypervisor records a
//! structured trace of everything the analysis pipeline needs to
//! classify an experiment run: handler activity, hypercall results,
//! parks, wild stores, corruption notices and panics. The trace is an
//! *observation* channel only — nothing in the hypervisor reads it
//! back, so it cannot mask a failure.

use crate::cell::{CellId, CellState};
use crate::hooks::HandlerKind;
use certify_arch::cpu::ParkReason;
use certify_arch::{CpuId, IrqId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a wild hypervisor store landed, i.e. which part of the system
/// a propagating fault corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorruptionTarget {
    /// A guest cell's memory.
    Cell(CellId),
    /// The hypervisor's own state (manifests at the next hypervisor
    /// entry on a root CPU).
    HypervisorState,
}

impl fmt::Display for CorruptionTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorruptionTarget::Cell(id) => write!(f, "{id} memory"),
            CorruptionTarget::HypervisorState => write!(f, "hypervisor state"),
        }
    }
}

/// One entry in the hypervisor trace.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum HvEvent {
    /// A profiled handler was entered.
    HandlerEntry {
        /// Which handler.
        handler: HandlerKind,
        /// Executing CPU.
        cpu: CpuId,
        /// 1-based per-(handler, CPU) call index.
        call_index: u64,
        /// Simulator step.
        step: u64,
    },
    /// A hypercall completed.
    Hypercall {
        /// Calling CPU.
        cpu: CpuId,
        /// Hypercall code as seen by the dispatcher (possibly
        /// corrupted).
        code: u32,
        /// Errno-style result.
        result: i64,
        /// Simulator step.
        step: u64,
    },
    /// A CPU was parked.
    CpuParked {
        /// The parked CPU.
        cpu: CpuId,
        /// Why.
        reason: ParkReason,
        /// Simulator step.
        step: u64,
    },
    /// A handler stored through a corrupted pointer.
    WildStore {
        /// Executing CPU.
        cpu: CpuId,
        /// The wild address.
        addr: u32,
        /// What it corrupted.
        target: Option<CorruptionTarget>,
        /// Simulator step.
        step: u64,
    },
    /// A guest access violated the cell's memory assignment.
    AccessViolation {
        /// Offending CPU.
        cpu: CpuId,
        /// Faulting address.
        addr: u32,
        /// Simulator step.
        step: u64,
    },
    /// An IRQ id mismatch was detected (the "IRQ error" the paper
    /// calls completely predictable).
    IrqError {
        /// The CPU that observed the mismatch.
        cpu: CpuId,
        /// The id the handler saw.
        seen: IrqId,
        /// The id that was actually acknowledged.
        actual: IrqId,
        /// Simulator step.
        step: u64,
    },
    /// A cell changed lifecycle state.
    CellStateChanged {
        /// The cell.
        cell: CellId,
        /// The new state.
        state: CellState,
        /// Simulator step.
        step: u64,
    },
    /// The hypervisor itself panicked (e.g. HYP-mode data abort).
    HypervisorPanic {
        /// Panic message.
        message: String,
        /// Simulator step.
        step: u64,
    },
}

impl HvEvent {
    /// The simulator step of this event.
    pub fn step(&self) -> u64 {
        match self {
            HvEvent::HandlerEntry { step, .. }
            | HvEvent::Hypercall { step, .. }
            | HvEvent::CpuParked { step, .. }
            | HvEvent::WildStore { step, .. }
            | HvEvent::AccessViolation { step, .. }
            | HvEvent::IrqError { step, .. }
            | HvEvent::CellStateChanged { step, .. }
            | HvEvent::HypervisorPanic { step, .. } => *step,
        }
    }
}

impl fmt::Display for HvEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvEvent::HandlerEntry {
                handler,
                cpu,
                call_index,
                step,
            } => write!(f, "[{step}] {cpu} {handler} call #{call_index}"),
            HvEvent::Hypercall {
                cpu,
                code,
                result,
                step,
            } => write!(
                f,
                "[{step}] {cpu} hvc {} -> {result}",
                crate::hypercall::name(*code)
            ),
            HvEvent::CpuParked { cpu, reason, step } => {
                write!(f, "[{step}] {cpu} parked: {reason}")
            }
            HvEvent::WildStore {
                cpu,
                addr,
                target,
                step,
            } => match target {
                Some(t) => write!(f, "[{step}] {cpu} wild store 0x{addr:08x} -> {t}"),
                None => write!(f, "[{step}] {cpu} wild store 0x{addr:08x} -> unmapped"),
            },
            HvEvent::AccessViolation { cpu, addr, step } => {
                write!(f, "[{step}] {cpu} access violation at 0x{addr:08x}")
            }
            HvEvent::IrqError {
                cpu,
                seen,
                actual,
                step,
            } => write!(f, "[{step}] {cpu} irq error: saw {seen}, active {actual}"),
            HvEvent::CellStateChanged { cell, state, step } => {
                write!(f, "[{step}] {cell} -> {state}")
            }
            HvEvent::HypervisorPanic { message, step } => {
                write!(f, "[{step}] HYPERVISOR PANIC: {message}")
            }
        }
    }
}

/// Per-CPU tally of park events, updated as [`HvEvent::CpuParked`]
/// entries are recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpuParkTally {
    /// Parks with [`ParkReason::Idle`].
    pub idle: u64,
    /// Parks with [`ParkReason::UnhandledTrap`].
    pub unhandled_trap: u64,
    /// Parks with [`ParkReason::CellShutdown`].
    pub cell_shutdown: u64,
    /// Parks with [`ParkReason::FailedOnline`].
    pub failed_online: u64,
    /// Parks with [`ParkReason::HypervisorPanic`].
    pub hypervisor_panic: u64,
    /// The first unhandled-trap park reason recorded, if any (carries
    /// the exception-class code for classifier notes).
    pub first_unhandled_trap: Option<ParkReason>,
}

/// Online classification evidence, maintained by the hypervisor as
/// events are recorded so a post-run classifier reads O(1) counters
/// instead of scanning the whole event trace per question. Everything
/// here is derivable from [`HvEvent`]s — the equivalence is asserted
/// by `tests/hotpath_equivalence.rs` in the workspace root.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Evidence {
    per_cpu: Vec<CpuParkTally>,
    /// Steps of every access-violation event, in record order
    /// (nondecreasing — the simulator clock is monotonic).
    violation_steps: Vec<u64>,
}

impl Evidence {
    /// Records a park event (mirrors an [`HvEvent::CpuParked`] push).
    pub(crate) fn record_park(&mut self, cpu: CpuId, reason: ParkReason) {
        let idx = cpu.0 as usize;
        if self.per_cpu.len() <= idx {
            self.per_cpu.resize_with(idx + 1, CpuParkTally::default);
        }
        let tally = &mut self.per_cpu[idx];
        match reason {
            ParkReason::Idle => tally.idle += 1,
            ParkReason::UnhandledTrap(_) => {
                tally.unhandled_trap += 1;
                tally.first_unhandled_trap.get_or_insert(reason);
            }
            ParkReason::CellShutdown => tally.cell_shutdown += 1,
            ParkReason::FailedOnline => tally.failed_online += 1,
            ParkReason::HypervisorPanic => tally.hypervisor_panic += 1,
        }
    }

    /// Records an access violation (mirrors an
    /// [`HvEvent::AccessViolation`] push).
    pub(crate) fn record_violation(&mut self, step: u64) {
        self.violation_steps.push(step);
    }

    /// The park tally for `cpu` (all-zero if the CPU never parked).
    pub fn park_tally(&self, cpu: CpuId) -> CpuParkTally {
        self.per_cpu
            .get(cpu.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// Total access violations recorded.
    pub fn access_violations(&self) -> usize {
        self.violation_steps.len()
    }

    /// Access violations at or after `step` — a binary search over the
    /// nondecreasing violation-step list.
    pub fn violations_since(&self, step: u64) -> usize {
        self.violation_steps.len() - self.violation_steps.partition_point(|&s| s < step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evidence_tallies_parks_and_violations() {
        let mut evidence = Evidence::default();
        evidence.record_park(CpuId(1), ParkReason::UnhandledTrap(0x24));
        evidence.record_park(CpuId(1), ParkReason::UnhandledTrap(0x20));
        evidence.record_park(CpuId(1), ParkReason::FailedOnline);
        evidence.record_park(CpuId(0), ParkReason::Idle);
        let cpu1 = evidence.park_tally(CpuId(1));
        assert_eq!(cpu1.unhandled_trap, 2);
        assert_eq!(cpu1.failed_online, 1);
        assert_eq!(
            cpu1.first_unhandled_trap,
            Some(ParkReason::UnhandledTrap(0x24)),
            "first trap code is kept, later ones ignored"
        );
        assert_eq!(evidence.park_tally(CpuId(0)).idle, 1);
        assert_eq!(evidence.park_tally(CpuId(7)), CpuParkTally::default());

        evidence.record_violation(10);
        evidence.record_violation(20);
        evidence.record_violation(20);
        evidence.record_violation(35);
        assert_eq!(evidence.access_violations(), 4);
        assert_eq!(evidence.violations_since(0), 4);
        assert_eq!(evidence.violations_since(20), 3);
        assert_eq!(evidence.violations_since(21), 1);
        assert_eq!(evidence.violations_since(36), 0);
    }

    #[test]
    fn step_accessor_covers_every_variant() {
        let events = [
            HvEvent::HandlerEntry {
                handler: HandlerKind::ArchHandleHvc,
                cpu: CpuId(0),
                call_index: 1,
                step: 10,
            },
            HvEvent::Hypercall {
                cpu: CpuId(0),
                code: 1,
                result: -22,
                step: 11,
            },
            HvEvent::CpuParked {
                cpu: CpuId(1),
                reason: ParkReason::UnhandledTrap(0x24),
                step: 12,
            },
            HvEvent::WildStore {
                cpu: CpuId(1),
                addr: 0x7b00_0000,
                target: Some(CorruptionTarget::HypervisorState),
                step: 13,
            },
            HvEvent::AccessViolation {
                cpu: CpuId(1),
                addr: 0x4000_0000,
                step: 14,
            },
            HvEvent::IrqError {
                cpu: CpuId(0),
                seen: IrqId(5),
                actual: IrqId(27),
                step: 15,
            },
            HvEvent::CellStateChanged {
                cell: CellId(1),
                state: CellState::Failed,
                step: 16,
            },
            HvEvent::HypervisorPanic {
                message: "HYP data abort".into(),
                step: 17,
            },
        ];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.step(), 10 + i as u64);
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn display_mentions_the_park_code() {
        let e = HvEvent::CpuParked {
            cpu: CpuId(1),
            reason: ParkReason::UnhandledTrap(0x24),
            step: 1,
        };
        assert!(e.to_string().contains("0x24"));
    }
}

//! The guest interface: how cell payloads execute on the simulated
//! platform.
//!
//! Guests (the root Linux-like manager and the FreeRTOS-like RTOS) are
//! behavioural models, not instruction streams. Each scheduling slice
//! the system orchestrator gives a guest a [`GuestCtx`] through which
//! every architectural side effect flows — direct RAM accesses
//! (stage-2 checked), MMIO (trapped and emulated by the hypervisor)
//! and hypercalls. Because all guest interaction goes through the
//! hypervisor's handlers, the fault injector automatically sees the
//! same call stream the paper's instrumented Jailhouse saw.

use crate::hv::Hypervisor;
use certify_arch::{CpuId, IrqId};
use certify_board::Machine;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A guest's self-reported health, used by the outcome classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GuestHealth {
    /// Operating normally.
    Healthy,
    /// The guest kernel panicked (root cell: "Kernel panic - not
    /// syncing", the paper's *panic park* evidence).
    Panicked,
    /// The guest took an unrecoverable internal fault and stopped
    /// making progress.
    HardFault,
    /// The guest was started at a bogus entry point and never became
    /// executable (the E2 "non-executable state").
    Broken,
}

impl GuestHealth {
    /// Whether the guest is still making progress.
    pub fn is_alive(self) -> bool {
        matches!(self, GuestHealth::Healthy)
    }
}

impl fmt::Display for GuestHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            GuestHealth::Healthy => "healthy",
            GuestHealth::Panicked => "panicked",
            GuestHealth::HardFault => "hard fault",
            GuestHealth::Broken => "broken",
        };
        f.write_str(name)
    }
}

/// Execution context handed to a guest for one scheduling slice.
pub struct GuestCtx<'a> {
    /// The CPU this guest is running on.
    pub cpu: CpuId,
    /// The board.
    pub machine: &'a mut Machine,
    /// The hypervisor.
    pub hv: &'a mut Hypervisor,
}

impl<'a> GuestCtx<'a> {
    /// Creates a context for `cpu`.
    pub fn new(cpu: CpuId, machine: &'a mut Machine, hv: &'a mut Hypervisor) -> Self {
        GuestCtx { cpu, machine, hv }
    }

    /// Current simulator step.
    pub fn now(&self) -> u64 {
        self.machine.now()
    }

    /// Issues a hypervisor call (`hvc`), returning the errno-style
    /// result.
    pub fn hvc(&mut self, code: u32, arg1: u32, arg2: u32) -> i64 {
        self.hv.handle_hvc(self.machine, self.cpu, code, arg1, arg2)
    }

    /// Performs a trapped MMIO write (the access faults to the
    /// hypervisor, which emulates it against the cell's assignment).
    pub fn mmio_write32(&mut self, addr: u32, value: u32) {
        self.hv
            .guest_mmio_write(self.machine, self.cpu, addr, value);
    }

    /// Performs a trapped MMIO read.
    pub fn mmio_read32(&mut self, addr: u32) -> u32 {
        self.hv.guest_mmio_read(self.machine, self.cpu, addr)
    }

    /// Performs a stage-2-checked direct RAM write. A violation
    /// escalates through the trap path (and, Jailhouse-style, parks
    /// the CPU).
    pub fn ram_write32(&mut self, addr: u32, value: u32) {
        self.hv.guest_ram_write(self.machine, self.cpu, addr, value);
    }

    /// Performs a stage-2-checked direct RAM read. Returns 0 when the
    /// access was denied.
    pub fn ram_read32(&mut self, addr: u32) -> u32 {
        self.hv.guest_ram_read(self.machine, self.cpu, addr)
    }

    /// Whether this CPU has been parked (a guest observing this should
    /// stop doing work; the orchestrator will too).
    pub fn parked(&self) -> bool {
        self.machine.cpu(self.cpu).is_parked()
    }

    /// Prints a string through the hypervisor debug console, one
    /// character per hypercall — the non-root cell's console path, and
    /// a major contributor to `arch_handle_hvc` traffic in golden-run
    /// profiling.
    pub fn console_print(&mut self, s: &str) {
        for byte in s.bytes() {
            if self.parked() {
                return;
            }
            self.hvc(crate::hypercall::HVC_DEBUG_CONSOLE_PUTC, u32::from(byte), 0);
        }
    }
}

impl fmt::Debug for GuestCtx<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GuestCtx").field("cpu", &self.cpu).finish()
    }
}

/// A cell payload: the behavioural model of a guest OS.
pub trait Guest: fmt::Debug {
    /// A short name for logs.
    fn name(&self) -> &str;

    /// Executes one scheduling slice.
    fn step(&mut self, ctx: &mut GuestCtx<'_>);

    /// Delivers a timer tick.
    fn on_tick(&mut self, ctx: &mut GuestCtx<'_>);

    /// Delivers a (non-timer) interrupt.
    fn on_irq(&mut self, irq: IrqId, ctx: &mut GuestCtx<'_>);

    /// (Re)enters the guest at `entry` — cell start or reset. A guest
    /// entered at an address other than its configured entry point
    /// must transition to [`GuestHealth::Broken`].
    fn on_reset(&mut self, entry: u32);

    /// Informs the guest that its memory was corrupted from outside
    /// (a wild hypervisor store landed in its RAM). The guest models
    /// the consequence — typically a wild access or crash on its next
    /// slice.
    fn on_memory_corrupted(&mut self);

    /// Current health.
    fn health(&self) -> GuestHealth;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_liveness() {
        assert!(GuestHealth::Healthy.is_alive());
        assert!(!GuestHealth::Panicked.is_alive());
        assert!(!GuestHealth::HardFault.is_alive());
        assert!(!GuestHealth::Broken.is_alive());
    }

    #[test]
    fn health_display() {
        assert_eq!(GuestHealth::Broken.to_string(), "broken");
        assert_eq!(GuestHealth::Panicked.to_string(), "panicked");
    }
}

//! Injection hooks: the "dozen lines of code added to Jailhouse".
//!
//! The paper instruments the hypervisor so that, at the entry of each
//! profiled handler, a test orchestrator can observe the call and
//! corrupt the live register context. This module is that patch,
//! promoted to a first-class API: the hypervisor invokes the installed
//! [`InjectionHook`] with a [`HookCtx`] giving the handler identity,
//! the calling CPU, per-handler call counters and mutable access to
//! the register file.
//!
//! The `certify-core` crate implements the hook with the paper's fault
//! models and intensity plans; golden runs simply install no hook.

use certify_arch::{CpuId, RegisterFile};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three handlers identified by the paper's golden-run profiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HandlerKind {
    /// `irqchip_handle_irq()` — hardware interrupt dispatch.
    IrqchipHandleIrq,
    /// `arch_handle_trap()` — trap/exception handling (MMIO emulation,
    /// aborts).
    ArchHandleTrap,
    /// `arch_handle_hvc()` — hypervisor call dispatch.
    ArchHandleHvc,
}

impl HandlerKind {
    /// All handlers, in profiling-report order.
    pub const ALL: [HandlerKind; 3] = [
        HandlerKind::IrqchipHandleIrq,
        HandlerKind::ArchHandleTrap,
        HandlerKind::ArchHandleHvc,
    ];

    /// Dense index of this handler in [`HandlerKind::ALL`] — used for
    /// flat per-handler tables on hot paths.
    pub fn index(self) -> usize {
        match self {
            HandlerKind::IrqchipHandleIrq => 0,
            HandlerKind::ArchHandleTrap => 1,
            HandlerKind::ArchHandleHvc => 2,
        }
    }

    /// The C function name used in the paper.
    pub fn function_name(self) -> &'static str {
        match self {
            HandlerKind::IrqchipHandleIrq => "irqchip_handle_irq",
            HandlerKind::ArchHandleTrap => "arch_handle_trap",
            HandlerKind::ArchHandleHvc => "arch_handle_hvc",
        }
    }
}

impl fmt::Display for HandlerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.function_name())
    }
}

/// Context passed to an [`InjectionHook`] at handler entry.
#[derive(Debug)]
pub struct HookCtx<'a> {
    /// Which handler is being entered.
    pub handler: HandlerKind,
    /// The CPU executing the handler — the paper's experiments filter
    /// on this ("only when the CPU core 1 is calling the function").
    pub cpu: CpuId,
    /// 1-based count of calls to this handler on this CPU, including
    /// this one. The paper's intensity levels fire "once every given
    /// number of calls to the target functions".
    pub call_index: u64,
    /// Simulator step at handler entry.
    pub step: u64,
    /// The live register context; mutations are what the handler will
    /// see and what a resumed guest will get back.
    pub regs: &'a mut RegisterFile,
    /// Must be set (via [`HookCtx::mark_touched`]) by any hook that
    /// mutates `regs`. When it stays `false` the hypervisor knows the
    /// entry context is exactly what it set up and skips the pointer
    /// integrity check and the guest-register writeback — the handler
    /// fast path that keeps fault-free campaign steps cheap.
    pub touched: bool,
}

impl HookCtx<'_> {
    /// Records that the hook mutated the register context, so the
    /// hypervisor re-validates pointers and writes back guest state.
    pub fn mark_touched(&mut self) {
        self.touched = true;
    }
}

/// A fault-injection (or tracing) hook installed into the hypervisor.
pub trait InjectionHook: fmt::Debug {
    /// Invoked at every profiled-handler entry, before the handler
    /// reads any register.
    ///
    /// A hook that mutates `ctx.regs` **must** call
    /// [`HookCtx::mark_touched`]; otherwise the hypervisor assumes the
    /// context is untouched and skips corruption-dependent work.
    fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>);
}

/// A hook that only counts calls — used for golden-run profiling
/// without perturbing anything.
#[derive(Debug, Default, Clone)]
pub struct CountingHook {
    counts: std::collections::BTreeMap<(HandlerKind, u32), u64>,
}

impl CountingHook {
    /// Creates a hook with zeroed counters.
    pub fn new() -> CountingHook {
        CountingHook::default()
    }

    /// Calls observed for `handler` on `cpu`.
    pub fn count(&self, handler: HandlerKind, cpu: CpuId) -> u64 {
        self.counts.get(&(handler, cpu.0)).copied().unwrap_or(0)
    }
}

impl InjectionHook for CountingHook {
    fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
        *self.counts.entry((ctx.handler, ctx.cpu.0)).or_insert(0) += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn function_names_match_the_paper() {
        assert_eq!(
            HandlerKind::IrqchipHandleIrq.function_name(),
            "irqchip_handle_irq"
        );
        assert_eq!(
            HandlerKind::ArchHandleTrap.function_name(),
            "arch_handle_trap"
        );
        assert_eq!(
            HandlerKind::ArchHandleHvc.function_name(),
            "arch_handle_hvc"
        );
    }

    #[test]
    fn counting_hook_counts_per_handler_and_cpu() {
        let mut hook = CountingHook::new();
        let mut regs = RegisterFile::new();
        for i in 0..3 {
            let mut ctx = HookCtx {
                handler: HandlerKind::ArchHandleHvc,
                cpu: CpuId(0),
                call_index: i + 1,
                step: i,
                regs: &mut regs,
                touched: false,
            };
            hook.on_handler_entry(&mut ctx);
        }
        let mut ctx = HookCtx {
            handler: HandlerKind::ArchHandleHvc,
            cpu: CpuId(1),
            call_index: 1,
            step: 9,
            regs: &mut regs,
            touched: false,
        };
        hook.on_handler_entry(&mut ctx);
        assert_eq!(hook.count(HandlerKind::ArchHandleHvc, CpuId(0)), 3);
        assert_eq!(hook.count(HandlerKind::ArchHandleHvc, CpuId(1)), 1);
        assert_eq!(hook.count(HandlerKind::ArchHandleTrap, CpuId(0)), 0);
    }
}

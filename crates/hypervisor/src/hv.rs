//! The hypervisor core: handler dispatch, cell management, isolation
//! enforcement, parking and fault propagation.
//!
//! All guest/hypervisor interaction funnels through three entry points
//! — [`Hypervisor::handle_hvc`], the trapped-access path behind
//! [`Hypervisor::guest_mmio_write`]/[`Hypervisor::guest_mmio_read`]/
//! [`Hypervisor::guest_ram_write`]/[`Hypervisor::guest_ram_read`], and
//! [`Hypervisor::handle_irq`] — which model `arch_handle_hvc()`,
//! `arch_handle_trap()` and `irqchip_handle_irq()` from the paper.
//! Each invokes the installed [`InjectionHook`] on a live register
//! context *before* reading any register, so every campaign sees the
//! handler stream exactly as the instrumented Jailhouse did.

use crate::cell::{Cell, CellId, CellState, ROOT_CELL};
use crate::config::{CellConfig, MemFlags, SystemConfig};
use crate::error::HvError;
use crate::event::{CorruptionTarget, Evidence, HvEvent};
use crate::hooks::{HandlerKind, HookCtx, InjectionHook};
use crate::hypercall as hc;
use crate::regconv;
use certify_arch::cpu::ParkReason;
use certify_arch::syndrome::{ExceptionClass, Syndrome};
use certify_arch::{CpuId, IrqId, Reg, RegisterFile, SPURIOUS_IRQ};
use certify_board::{memmap, Machine};
use certify_obs::trace::{TraceEvent, TraceKind, TraceLog};
use std::fmt;

/// Maximum size of a staged configuration blob.
const MAX_BLOB_LEN: u32 = 4096;
/// Size of the executable "code segment" at the start of a cell's
/// first executable region. A corrupted guest resume address inside
/// this window re-enters valid code; outside it, the guest fetches
/// garbage and aborts.
const CODE_SEGMENT_SIZE: u32 = 0x1_0000;

/// What the interrupt handler decided, for the orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqDelivery {
    /// Nothing was pending (spurious acknowledge).
    Spurious,
    /// The handler observed an id mismatch — the predictable "IRQ
    /// error" the paper describes.
    Error,
    /// A management SGI woke a parked CPU (cell boot protocol).
    MgmtWake,
    /// A timer tick for the owning guest.
    Tick,
    /// A shared peripheral interrupt for the owning guest.
    Guest(IrqId),
}

/// Number of profiled handler kinds (flat call-count table stride).
const NUM_HANDLERS: usize = HandlerKind::ALL.len();

/// The partitioning hypervisor.
pub struct Hypervisor {
    platform: SystemConfig,
    enabled: bool,
    cells: Vec<Option<Cell>>,
    cpu_owner: Vec<Option<CellId>>,
    /// Bumped whenever any CPU's owning cell changes, so orchestrators
    /// can cache ownership lookups between changes.
    ownership_epoch: u64,
    boot_entry: Vec<Option<u32>>,
    /// Flat per-(CPU, handler) call counters, `cpu * NUM_HANDLERS +
    /// handler` — indexed on every handler entry, so no map lookups on
    /// the hot path.
    call_counts: Vec<u64>,
    hook: Option<Box<dyn InjectionHook>>,
    events: Vec<HvEvent>,
    evidence: Evidence,
    trace_handlers: bool,
    /// The causal trace sink, if a flight recorder is attached. `None`
    /// is the hot path: one branch per event site, nothing else.
    tracer: Option<TraceLog>,
    corruption_notices: Vec<CellId>,
    latent_hv_corruption: bool,
    panic: Option<String>,
    /// Per-CPU cache of the last sub-page direct window resolved via
    /// the region list (see [`Hypervisor::stage2_allows_cached`]).
    direct_win: Vec<DirectWin>,
}

/// One cached direct-access window (sub-page device region).
#[derive(Debug, Clone, Copy, Default)]
struct DirectWin {
    base: u32,
    end: u32,
    read: bool,
    write: bool,
    epoch: u64,
}

impl fmt::Debug for Hypervisor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Hypervisor")
            .field("enabled", &self.enabled)
            .field("cells", &self.cells.iter().flatten().count())
            .field("panic", &self.panic)
            .finish()
    }
}

impl Hypervisor {
    /// Creates a (disabled) hypervisor for the given platform.
    pub fn new(platform: SystemConfig) -> Hypervisor {
        Hypervisor {
            platform,
            enabled: false,
            cells: Vec::new(),
            cpu_owner: Vec::new(),
            ownership_epoch: 0,
            boot_entry: Vec::new(),
            call_counts: Vec::new(),
            hook: None,
            events: Vec::new(),
            evidence: Evidence::default(),
            trace_handlers: false,
            tracer: None,
            corruption_notices: Vec::new(),
            latent_hv_corruption: false,
            panic: None,
            direct_win: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Whether the hypervisor has been installed.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The hypervisor panic message, if the hypervisor died.
    pub fn panicked(&self) -> Option<&str> {
        self.panic.as_deref()
    }

    /// The cell with the given id, if it exists.
    pub fn cell(&self, id: CellId) -> Option<&Cell> {
        self.cells.get(id.0 as usize).and_then(|c| c.as_ref())
    }

    /// All live cells.
    pub fn cells(&self) -> impl Iterator<Item = &Cell> {
        self.cells.iter().flatten()
    }

    /// The cell that owns `cpu`, if managed.
    pub fn cpu_owner(&self, cpu: CpuId) -> Option<CellId> {
        self.cpu_owner.get(cpu.0 as usize).copied().flatten()
    }

    /// Pending boot entry for a woken CPU (the per-CPU mailbox the
    /// park loop reads).
    pub fn boot_pending(&self, cpu: CpuId) -> Option<u32> {
        self.boot_entry.get(cpu.0 as usize).copied().flatten()
    }

    /// Calls observed for `handler` on `cpu` (the golden-run profile).
    pub fn call_count(&self, handler: HandlerKind, cpu: CpuId) -> u64 {
        self.call_counts
            .get(cpu.0 as usize * NUM_HANDLERS + handler.index())
            .copied()
            .unwrap_or(0)
    }

    /// All `(handler, cpu, count)` profile rows with a non-zero count,
    /// ordered by handler then CPU.
    pub fn call_counts(&self) -> impl Iterator<Item = (HandlerKind, CpuId, u64)> + '_ {
        HandlerKind::ALL.into_iter().flat_map(move |handler| {
            (0..self.call_counts.len() / NUM_HANDLERS).filter_map(move |cpu| {
                let count = self.call_counts[cpu * NUM_HANDLERS + handler.index()];
                (count > 0).then_some((handler, CpuId(cpu as u32), count))
            })
        })
    }

    /// The structured event trace.
    ///
    /// Console-putc hypercalls are traced only while
    /// [`Hypervisor::set_trace_handlers`] is on: at one hypercall per
    /// serial byte they dominate the trace without carrying
    /// classification signal (the bytes themselves are in the UART
    /// capture).
    pub fn events(&self) -> &[HvEvent] {
        &self.events
    }

    /// Online classification evidence (park tallies, access-violation
    /// counts), updated as events are recorded — the O(1) counters the
    /// trial classifier reads instead of scanning the trace.
    pub fn evidence(&self) -> &Evidence {
        &self.evidence
    }

    /// Bumped whenever a CPU's owning cell changes; callers may cache
    /// [`Hypervisor::cpu_owner`] results while it is unchanged.
    pub fn ownership_epoch(&self) -> u64 {
        self.ownership_epoch
    }

    /// Enables per-handler-entry trace events (off by default; the
    /// stream is large).
    pub fn set_trace_handlers(&mut self, on: bool) {
        self.trace_handlers = on;
    }

    /// Attaches a causal trace log. The hypervisor records handler
    /// entries, applied injections, guest traps and CPU parks into it.
    pub fn set_tracer(&mut self, tracer: TraceLog) {
        self.tracer = Some(tracer);
    }

    /// Installs a fault-injection hook.
    pub fn set_hook(&mut self, hook: Box<dyn InjectionHook>) {
        self.hook = Some(hook);
    }

    /// Removes the injection hook, returning it.
    pub fn take_hook(&mut self) -> Option<Box<dyn InjectionHook>> {
        self.hook.take()
    }

    /// Whether any corruption notice is queued — an O(1) gate so the
    /// orchestrator only pays for the drain when something happened.
    pub fn has_corruption_notices(&self) -> bool {
        !self.corruption_notices.is_empty()
    }

    /// Drains pending memory-corruption notices (cells whose RAM a
    /// wild store hit). The orchestrator forwards these to the guest
    /// models.
    pub fn take_corruption_notices(&mut self) -> Vec<CellId> {
        std::mem::take(&mut self.corruption_notices)
    }

    /// Registers an externally observed corruption of `cell`'s memory
    /// (a memory-fault injection that hit live data). Delivered to the
    /// guest model through the same [`Self::take_corruption_notices`]
    /// channel as wild hypervisor stores.
    pub fn notify_corruption(&mut self, cell: CellId) {
        self.corruption_notices.push(cell);
    }

    /// The first live non-root cell, if any — the victim of the
    /// non-root-targeting memory-fault campaigns.
    pub fn first_nonroot_cell(&self) -> Option<CellId> {
        self.cells
            .iter()
            .flatten()
            .map(|c| c.id)
            .find(|&id| id != ROOT_CELL)
    }

    /// Mutable access to a cell's stage-2 translation table (memory
    /// fault injection into the MMU tables).
    pub fn cell_stage2_mut(&mut self, id: CellId) -> Option<&mut certify_arch::Stage2Table> {
        // Table corruption can conjure or remove mappings underneath a
        // cached direct window, so the caches must not outlive the
        // handout (see `stage2_allows_cached`).
        self.direct_win.clear();
        self.cells
            .get_mut(id.0 as usize)
            .and_then(|c| c.as_mut())
            .map(|c| c.stage2_mut())
    }

    // ------------------------------------------------------------------
    // Blob staging helpers (the root-cell driver side)
    // ------------------------------------------------------------------

    /// Writes `[len][bytes…]` into RAM at `addr` — how the root-cell
    /// driver stages a configuration for `HYPERVISOR_ENABLE` /
    /// `CELL_CREATE`.
    pub fn stage_blob(&self, machine: &mut Machine, addr: u32, blob: &[u8]) {
        let ram = machine.ram_mut();
        let _ = ram.write32(addr, blob.len() as u32);
        for (i, byte) in blob.iter().enumerate() {
            let _ = ram.write8(addr + 4 + i as u32, *byte);
        }
    }

    fn read_staged_blob(&self, machine: &Machine, addr: u32) -> Result<Vec<u8>, HvError> {
        if !addr.is_multiple_of(4) {
            return Err(HvError::InvalidArguments);
        }
        let len = machine
            .ram()
            .read32(addr)
            .map_err(|_| HvError::InvalidArguments)?;
        if len == 0 || len > MAX_BLOB_LEN {
            return Err(HvError::InvalidArguments);
        }
        let mut blob = Vec::with_capacity(len as usize);
        // Word-wise copy for the aligned body, byte-wise for the tail
        // (reads exactly the `len` bytes the byte-at-a-time copy did).
        let mut offset = 0;
        while offset + 4 <= len {
            let word = machine
                .ram()
                .read32(addr + 4 + offset)
                .map_err(|_| HvError::InvalidArguments)?;
            blob.extend_from_slice(&word.to_le_bytes());
            offset += 4;
        }
        while offset < len {
            blob.push(
                machine
                    .ram()
                    .read8(addr + 4 + offset)
                    .map_err(|_| HvError::InvalidArguments)?,
            );
            offset += 1;
        }
        Ok(blob)
    }

    // ------------------------------------------------------------------
    // Handler-entry plumbing
    // ------------------------------------------------------------------

    /// Counts the handler entry, emits the optional trace event and
    /// runs the injection hook. Returns whether the hook touched the
    /// register context — `false` means the context is exactly what
    /// the caller set up, so corruption-dependent work can be skipped.
    fn enter_handler(
        &mut self,
        handler: HandlerKind,
        cpu: CpuId,
        step: u64,
        regs: &mut RegisterFile,
    ) -> bool {
        let slot = cpu.0 as usize * NUM_HANDLERS + handler.index();
        if self.call_counts.len() <= slot {
            self.call_counts
                .resize((cpu.0 as usize + 1) * NUM_HANDLERS, 0);
        }
        self.call_counts[slot] += 1;
        let call_index = self.call_counts[slot];
        if self.trace_handlers {
            self.events.push(HvEvent::HandlerEntry {
                handler,
                cpu,
                call_index,
                step,
            });
        }
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent {
                step,
                cpu: cpu.0,
                kind: TraceKind::HandlerEntry,
                arg_a: handler.index() as u64,
                arg_b: call_index,
            });
        }
        if let Some(hook) = self.hook.as_mut() {
            // Debug builds police the touched contract: a hook that
            // mutates the context without `mark_touched` would have
            // its corruption silently ignored by the fast paths.
            #[cfg(debug_assertions)]
            let snapshot = regs.clone();
            let mut ctx = HookCtx {
                handler,
                cpu,
                call_index,
                step,
                regs,
                touched: false,
            };
            hook.on_handler_entry(&mut ctx);
            let touched = ctx.touched;
            #[cfg(debug_assertions)]
            debug_assert!(
                touched || *regs == snapshot,
                "injection hook mutated the register context without \
                 calling HookCtx::mark_touched"
            );
            if touched {
                if let Some(tracer) = &self.tracer {
                    tracer.record(TraceEvent {
                        step,
                        cpu: cpu.0,
                        kind: TraceKind::InjectionApplied,
                        arg_a: handler.index() as u64,
                        arg_b: call_index,
                    });
                }
            }
            touched
        } else {
            false
        }
    }

    /// Verifies the pointer-live registers against their expected
    /// values (precomputed once per handler entry); every mismatch
    /// makes the handler store through the corrupted pointer. Returns
    /// `true` if any pointer was corrupt.
    fn check_pointers(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        regs: &RegisterFile,
        expected_pointers: &[(Reg, u32); 5],
    ) -> bool {
        let mut corrupted = false;
        for &(reg, expected) in expected_pointers {
            let seen = regs.read(reg);
            if seen != expected {
                corrupted = true;
                self.wild_store(machine, cpu, seen);
                if self.panic.is_some() {
                    break;
                }
            }
        }
        corrupted
    }

    /// A store through a corrupted pointer, performed with hypervisor
    /// privileges. Where it lands decides whether the fault stays
    /// latent, corrupts a guest, or kills the hypervisor outright.
    fn wild_store(&mut self, machine: &mut Machine, cpu: CpuId, addr: u32) {
        let step = machine.now();
        let aligned = addr & !3;
        let target = if memmap::in_region(addr, memmap::HV_RAM_BASE, memmap::HV_RAM_SIZE) {
            self.latent_hv_corruption = true;
            let _ = machine.ram_mut().write32(aligned, 0xdead_beef);
            Some(CorruptionTarget::HypervisorState)
        } else if let Some(victim) = self.ram_owner(addr) {
            self.corruption_notices.push(victim);
            let _ = machine.ram_mut().write32(aligned, 0xdead_beef);
            Some(CorruptionTarget::Cell(victim))
        } else if Machine::is_ram(addr) {
            // RAM that currently belongs to no cell: damage without a
            // victim.
            let _ = machine.ram_mut().write32(aligned, 0xdead_beef);
            None
        } else if Machine::decode_device(addr).is_some() {
            // A garbage store to a real device register: absorbed by
            // the device (e.g. a junk character on the UART).
            let _ = machine.write32(aligned, 0xdead_beef);
            None
        } else {
            // An unmapped hole: the hypervisor itself takes a data
            // abort in HYP mode — unrecoverable.
            self.events.push(HvEvent::WildStore {
                cpu,
                addr,
                target: None,
                step,
            });
            self.hyp_panic(machine, format!("HYP data abort at 0x{addr:08x}"));
            return;
        };
        self.events.push(HvEvent::WildStore {
            cpu,
            addr,
            target,
            step,
        });
    }

    /// The cell whose (non-IO) memory contains `addr`, if any.
    fn ram_owner(&self, addr: u32) -> Option<CellId> {
        if !Machine::is_ram(addr) {
            return None;
        }
        for cell in self.cells.iter().flatten() {
            for region in &cell.config.regions {
                if region.contains_addr(addr) && !region.flags.contains(MemFlags::IO) {
                    return Some(cell.id);
                }
            }
        }
        None
    }

    /// Kills the hypervisor: prints a panic banner, parks every CPU.
    fn hyp_panic(&mut self, machine: &mut Machine, message: String) {
        if self.panic.is_some() {
            return;
        }
        let step = machine.now();
        let banner = format!("[hyp] PANIC: {message}\n");
        machine.uart.write_str(&banner, step);
        for i in 0..machine.num_cpus() {
            machine
                .cpu_mut(CpuId(i as u32))
                .park(ParkReason::HypervisorPanic);
            if let Some(tracer) = &self.tracer {
                tracer.record(TraceEvent {
                    step,
                    cpu: i as u32,
                    kind: TraceKind::CpuParked,
                    arg_a: ParkReason::HypervisorPanic.code() as u64,
                    arg_b: 0,
                });
            }
        }
        self.events.push(HvEvent::HypervisorPanic {
            message: message.clone(),
            step,
        });
        self.panic = Some(message);
    }

    /// Parks a CPU (Jailhouse's `cpu_park()`), marking the owning
    /// non-root cell failed.
    fn park_cpu(&mut self, machine: &mut Machine, cpu: CpuId, reason: ParkReason) {
        let step = machine.now();
        machine.cpu_mut(cpu).park(reason);
        let detail = format!("[hyp] parking {cpu}: {reason}\n");
        machine.uart.write_str(&detail, step);
        self.events.push(HvEvent::CpuParked { cpu, reason, step });
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent {
                step,
                cpu: cpu.0,
                kind: TraceKind::CpuParked,
                arg_a: reason.code() as u64,
                arg_b: reason.trap_code() as u64,
            });
        }
        self.evidence.record_park(cpu, reason);
        if let Some(owner) = self.cpu_owner(cpu) {
            if owner != ROOT_CELL {
                let comm = if let Some(cell) = self
                    .cells
                    .get_mut(owner.0 as usize)
                    .and_then(|c| c.as_mut())
                {
                    if matches!(reason, ParkReason::UnhandledTrap(_)) {
                        cell.mark_failed();
                        self.events.push(HvEvent::CellStateChanged {
                            cell: owner,
                            state: CellState::Failed,
                            step,
                        });
                        cell.comm_region()
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(region) = comm {
                    region.publish_state(machine, CellState::Failed);
                }
            }
        }
    }

    /// If a latent hypervisor-state corruption is pending and a root
    /// CPU just entered the hypervisor, the corruption manifests: the
    /// hypervisor mangles root-cell state.
    fn manifest_latent(&mut self, cpu: CpuId) {
        if self.latent_hv_corruption && self.cpu_owner(cpu) == Some(ROOT_CELL) {
            self.latent_hv_corruption = false;
            self.corruption_notices.push(ROOT_CELL);
        }
    }

    // ------------------------------------------------------------------
    // arch_handle_hvc
    // ------------------------------------------------------------------

    /// The hypervisor-call handler (`arch_handle_hvc()` in the paper).
    ///
    /// Sets up the architectural entry context (arguments in `r0`–`r2`,
    /// live hypervisor pointers per [`regconv`]), fires the injection
    /// hook, then dispatches on the — possibly corrupted — register
    /// values. Returns the errno-style result the guest sees in `r0`.
    pub fn handle_hvc(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        code: u32,
        arg1: u32,
        arg2: u32,
    ) -> i64 {
        if self.panic.is_some() {
            return HvError::NotPermitted.code();
        }
        let step = machine.now();
        self.ensure_cpu_slots(machine.num_cpus());

        let mut regs = machine.cpu(cpu).regs.clone();
        regs.write(Reg::R0, code);
        regs.write(Reg::R1, arg1);
        regs.write(Reg::R2, arg2);
        let owner = self.cpu_owner(cpu);
        let expected = regconv::expected_pointers(cpu, owner.unwrap_or(ROOT_CELL));
        if self.enabled {
            for (reg, value) in expected {
                regs.write(reg, value);
            }
        }
        regs.hsr = Syndrome::hvc(0).encode();

        let touched = self.enter_handler(HandlerKind::ArchHandleHvc, cpu, step, &mut regs);

        // Pointer-integrity: only the installed hypervisor has live
        // pointer state; the pre-enable loader path is minimal. An
        // untouched context still holds the exact values written
        // above, so the check is provably clean and skipped.
        let result =
            if touched && self.enabled && self.check_pointers(machine, cpu, &regs, &expected) {
                // The handler crashed through a wild pointer; the call
                // fails without completing.
                Err(HvError::InvalidArguments)
            } else if self.panic.is_some() {
                Err(HvError::NotPermitted)
            } else {
                let seen_code = regs.read(Reg::R0);
                let seen_arg1 = regs.read(Reg::R1);
                let seen_arg2 = regs.read(Reg::R2);
                self.dispatch_hypercall(machine, cpu, seen_code, seen_arg1, seen_arg2)
            };

        let ret = match result {
            Ok(value) => value,
            Err(e) => e.code(),
        };
        // Console-putc traffic is one hypercall per serial byte; its
        // trace entries carry no classification signal (the bytes land
        // in the UART capture), so they are only recorded when handler
        // tracing is explicitly on.
        let seen_code = regs.read(Reg::R0);
        if self.trace_handlers || seen_code != hc::HVC_DEBUG_CONSOLE_PUTC {
            self.events.push(HvEvent::Hypercall {
                cpu,
                code: seen_code,
                result: ret,
                step,
            });
        }

        // Write back (possibly corrupted) guest-saved registers — an
        // untouched context holds the guest's own values already.
        if touched {
            let guest_regs = &mut machine.cpu_mut(cpu).regs;
            for reg in regconv::GUEST_SAVED {
                guest_regs.write(reg, regs.read(reg));
            }
        }

        self.manifest_latent(cpu);
        ret
    }

    fn dispatch_hypercall(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        code: u32,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        match code {
            hc::HVC_HYPERVISOR_GET_INFO => {
                if arg1 != 0 || arg2 != 0 {
                    return Err(HvError::InvalidArguments);
                }
                Ok(self.cells.iter().flatten().count() as i64)
            }
            hc::HVC_HYPERVISOR_ENABLE => self.hvc_enable(machine, cpu, arg1, arg2),
            hc::HVC_HYPERVISOR_DISABLE => self.hvc_disable(cpu, arg1, arg2),
            hc::HVC_CELL_CREATE => self.hvc_cell_create(machine, cpu, arg1, arg2),
            hc::HVC_CELL_SET_LOADABLE => self.hvc_cell_set_loadable(cpu, arg1, arg2),
            hc::HVC_CELL_START => self.hvc_cell_start(machine, cpu, arg1, arg2),
            hc::HVC_CELL_SHUTDOWN => self.hvc_cell_shutdown(machine, cpu, arg1, arg2),
            hc::HVC_CELL_DESTROY => self.hvc_cell_destroy(machine, cpu, arg1, arg2),
            hc::HVC_CELL_GET_STATE => self.hvc_cell_get_state(cpu, arg1, arg2),
            hc::HVC_CPU_GET_INFO => self.hvc_cpu_get_info(machine, arg1, arg2),
            hc::HVC_DEBUG_CONSOLE_PUTC => self.hvc_console_putc(machine, arg1, arg2),
            hc::HVC_CPU_OFF => self.hvc_cpu_off(machine, cpu, arg1, arg2),
            hc::HVC_CPU_BOOT => self.hvc_cpu_boot(machine, cpu, arg1, arg2),
            _ => Err(HvError::UnknownHypercall),
        }
    }

    fn require_enabled(&self) -> Result<(), HvError> {
        if self.enabled {
            Ok(())
        } else {
            Err(HvError::NotPermitted)
        }
    }

    fn require_root_caller(&self, cpu: CpuId) -> Result<(), HvError> {
        if self.cpu_owner(cpu) == Some(ROOT_CELL) {
            Ok(())
        } else {
            Err(HvError::NotPermitted)
        }
    }

    fn ensure_cpu_slots(&mut self, n: usize) {
        if self.cpu_owner.len() < n {
            self.cpu_owner.resize(n, None);
            self.boot_entry.resize(n, None);
        }
    }

    fn hvc_enable(
        &mut self,
        machine: &mut Machine,
        _cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        if self.enabled {
            return Err(HvError::Busy);
        }
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let blob = self.read_staged_blob(machine, arg1)?;
        let config = SystemConfig::deserialize(&blob)?;
        config.root.validate()?;
        // The staged configuration must describe this platform.
        if config.hv_region != self.platform.hv_region {
            return Err(HvError::InvalidArguments);
        }
        for cpu in &config.root.cpus {
            if (cpu.0 as usize) >= machine.num_cpus() {
                return Err(HvError::InvalidArguments);
            }
        }
        self.ensure_cpu_slots(machine.num_cpus());
        let mut root = Cell::new(ROOT_CELL, config.root.clone());
        root.mark_loaded().expect("fresh cell is loadable");
        root.start().expect("fresh loaded cell starts");
        self.cells = vec![Some(root)];
        for cpu in &config.root.cpus {
            self.cpu_owner[cpu.0 as usize] = Some(ROOT_CELL);
        }
        self.ownership_epoch += 1;
        for irq in &config.root.irqs {
            machine.gic.enable(*irq);
            machine.gic.set_target(*irq, config.root.cpus[0]);
        }
        self.enabled = true;
        let step = machine.now();
        machine.uart.write_str("[hyp] hypervisor enabled\n", step);
        self.events.push(HvEvent::CellStateChanged {
            cell: ROOT_CELL,
            state: CellState::Running,
            step,
        });
        Ok(0)
    }

    fn hvc_disable(&mut self, cpu: CpuId, arg1: u32, arg2: u32) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg1 != 0 || arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        if self.cells.iter().flatten().count() > 1 {
            return Err(HvError::Busy);
        }
        self.enabled = false;
        self.cells.clear();
        self.cpu_owner.iter_mut().for_each(|o| *o = None);
        self.ownership_epoch += 1;
        self.boot_entry.iter_mut().for_each(|b| *b = None);
        Ok(0)
    }

    fn hvc_cell_create(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        // The blob must be staged inside root-cell memory.
        let root_config = &self.cell(ROOT_CELL).expect("root exists").config;
        let in_root_ram = root_config
            .regions
            .iter()
            .any(|r| !r.flags.contains(MemFlags::IO) && r.contains_addr(arg1));
        if !in_root_ram {
            return Err(HvError::InvalidArguments);
        }
        let blob = self.read_staged_blob(machine, arg1)?;
        let config = CellConfig::deserialize(&blob)?;
        self.validate_new_cell(machine, &config)?;

        let id = self.allocate_cell_id();
        for cell_cpu in &config.cpus {
            self.cpu_owner[cell_cpu.0 as usize] = Some(id);
        }
        self.ownership_epoch += 1;
        let step = machine.now();
        let cell = Cell::new(id, config);
        if let Some(region) = cell.comm_region() {
            region.init(machine, CellState::Stopped);
        }
        self.cells[id.0 as usize] = Some(cell);
        self.events.push(HvEvent::CellStateChanged {
            cell: id,
            state: CellState::Stopped,
            step,
        });
        Ok(i64::from(id.0))
    }

    fn validate_new_cell(&self, machine: &Machine, config: &CellConfig) -> Result<(), HvError> {
        config.validate()?;
        if self
            .cells
            .iter()
            .flatten()
            .any(|c| c.config.name == config.name)
        {
            return Err(HvError::AlreadyExists);
        }
        for cell_cpu in &config.cpus {
            let idx = cell_cpu.0 as usize;
            if idx >= machine.num_cpus() {
                return Err(HvError::InvalidArguments);
            }
            // CPU 0 must stay with the root cell.
            if cell_cpu.0 == 0 {
                return Err(HvError::InvalidArguments);
            }
            // The CPU must have been offlined (parked) by the root cell
            // first — the hot-plug handover.
            if self.cpu_owner(*cell_cpu) != Some(ROOT_CELL) {
                return Err(HvError::Busy);
            }
            if !machine.cpu(*cell_cpu).is_parked() {
                return Err(HvError::Busy);
            }
        }
        for region in &config.regions {
            if region.overlaps(&self.platform.hv_region) {
                return Err(HvError::InvalidArguments);
            }
            for cell in self.cells.iter().flatten() {
                for existing in &cell.config.regions {
                    if region.overlaps(existing) {
                        // Overlap is only tolerable for emulated
                        // devices and explicitly shared memory.
                        let both_io = region.flags.contains(MemFlags::IO)
                            && existing.flags.contains(MemFlags::IO);
                        let both_shared = region.flags.contains(MemFlags::SHARED)
                            && existing.flags.contains(MemFlags::SHARED);
                        if !(both_io || both_shared) {
                            return Err(HvError::InvalidArguments);
                        }
                    }
                }
            }
        }
        for irq in &config.irqs {
            for cell in self.cells.iter().flatten() {
                if cell.id != ROOT_CELL && cell.config.irqs.contains(irq) {
                    return Err(HvError::Busy);
                }
            }
        }
        Ok(())
    }

    fn allocate_cell_id(&mut self) -> CellId {
        for (i, slot) in self.cells.iter().enumerate().skip(1) {
            if slot.is_none() {
                return CellId(i as u32);
            }
        }
        self.cells.push(None);
        CellId((self.cells.len() - 1) as u32)
    }

    fn cell_mut(&mut self, id: CellId) -> Result<&mut Cell, HvError> {
        self.cells
            .get_mut(id.0 as usize)
            .and_then(|c| c.as_mut())
            .ok_or(HvError::NoSuchCell)
    }

    fn hvc_cell_set_loadable(&mut self, cpu: CpuId, arg1: u32, arg2: u32) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let id = CellId(arg1);
        if id == ROOT_CELL {
            return Err(HvError::InvalidArguments);
        }
        self.cell_mut(id)?.mark_loaded()?;
        Ok(0)
    }

    fn hvc_cell_start(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let id = CellId(arg1);
        if id == ROOT_CELL {
            return Err(HvError::InvalidArguments);
        }
        let step = machine.now();
        let (cpus, irqs, entry, comm) = {
            let cell = self.cell_mut(id)?;
            cell.start()?;
            (
                cell.config.cpus.clone(),
                cell.config.irqs.clone(),
                cell.config.entry,
                cell.comm_region(),
            )
        };
        if let Some(region) = comm {
            region.publish_state(machine, CellState::Running);
        }
        for irq in &irqs {
            machine.gic.enable(*irq);
            machine.gic.set_target(*irq, cpus[0]);
        }
        for cell_cpu in &cpus {
            self.boot_entry[cell_cpu.0 as usize] = Some(entry);
            machine.gic.send_sgi(*cell_cpu, IrqId(memmap::MGMT_SGI));
        }
        self.events.push(HvEvent::CellStateChanged {
            cell: id,
            state: CellState::Running,
            step,
        });
        Ok(0)
    }

    /// Returns a cell's CPUs and interrupt lines to the root cell —
    /// the resource handover the paper verifies after `cell shutdown`.
    fn reclaim_cell_resources(&mut self, machine: &mut Machine, id: CellId) {
        let (cpus, irqs) = match self.cell(id) {
            Some(cell) => (cell.config.cpus.clone(), cell.config.irqs.clone()),
            None => return,
        };
        for cell_cpu in &cpus {
            machine.cpu_mut(*cell_cpu).park(ParkReason::CellShutdown);
            machine.gic.reset_cpu_interface(*cell_cpu);
            self.cpu_owner[cell_cpu.0 as usize] = Some(ROOT_CELL);
            self.boot_entry[cell_cpu.0 as usize] = None;
        }
        self.ownership_epoch += 1;
        for irq in &irqs {
            machine.gic.clear_target(*irq);
            machine.gic.disable(*irq);
        }
    }

    fn hvc_cell_shutdown(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let id = CellId(arg1);
        let step = machine.now();
        let comm = {
            let cell = self.cell_mut(id)?;
            cell.shut_down()?;
            cell.comm_region()
        };
        if let Some(region) = comm {
            region.publish_state(machine, CellState::ShutDown);
        }
        self.reclaim_cell_resources(machine, id);
        self.events.push(HvEvent::CellStateChanged {
            cell: id,
            state: CellState::ShutDown,
            step,
        });
        Ok(0)
    }

    fn hvc_cell_destroy(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let id = CellId(arg1);
        if id == ROOT_CELL {
            return Err(HvError::InvalidArguments);
        }
        // Existence check before any side effect.
        let regions = self
            .cell(id)
            .ok_or(HvError::NoSuchCell)?
            .config
            .regions
            .clone();
        self.reclaim_cell_resources(machine, id);
        // Scrub the cell's private memory.
        for region in &regions {
            if !region.flags.contains(MemFlags::IO) && !region.flags.contains(MemFlags::SHARED) {
                let _ = machine.ram_mut().zero_range(region.base, region.size);
            }
        }
        let step = machine.now();
        self.cells[id.0 as usize] = None;
        self.events.push(HvEvent::CellStateChanged {
            cell: id,
            state: CellState::ShutDown,
            step,
        });
        Ok(0)
    }

    fn hvc_cell_get_state(&mut self, cpu: CpuId, arg1: u32, arg2: u32) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let cell = self.cell(CellId(arg1)).ok_or(HvError::NoSuchCell)?;
        Ok(match cell.state() {
            CellState::Stopped => 0,
            CellState::Running => 1,
            CellState::ShutDown => 2,
            CellState::Failed => 3,
        })
    }

    fn hvc_cpu_get_info(
        &mut self,
        machine: &Machine,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        if arg2 != 0 || (arg1 as usize) >= machine.num_cpus() {
            return Err(HvError::InvalidArguments);
        }
        Ok(i64::from(machine.cpu(CpuId(arg1)).is_parked()))
    }

    fn hvc_console_putc(
        &mut self,
        machine: &mut Machine,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        if arg1 > 0xff || arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let step = machine.now();
        machine.uart.write_reg(memmap::UART_THR_OFFSET, arg1, step);
        Ok(0)
    }

    fn hvc_cpu_off(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        self.require_root_caller(cpu)?;
        if arg1 != 0 || arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        machine.cpu_mut(cpu).park(ParkReason::Idle);
        Ok(0)
    }

    fn hvc_cpu_boot(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        arg1: u32,
        arg2: u32,
    ) -> Result<i64, HvError> {
        self.require_enabled()?;
        if arg2 != 0 {
            return Err(HvError::InvalidArguments);
        }
        let pending = self
            .boot_entry
            .get(cpu.0 as usize)
            .copied()
            .flatten()
            .ok_or(HvError::NotPermitted)?;
        let owner = self.cpu_owner(cpu).ok_or(HvError::NotPermitted)?;
        let cell = self.cell(owner).ok_or(HvError::NoSuchCell)?;
        let entry_ok = cell
            .config
            .regions
            .iter()
            .any(|r| r.contains_addr(arg1) && r.flags.contains(MemFlags::EXECUTE));
        self.boot_entry[cpu.0 as usize] = None;
        if !entry_ok {
            // The CPU fails to come online: the E2 "swap feature of the
            // CPU hot plug" failure. Note the cell stays Running.
            self.park_cpu(machine, cpu, ParkReason::FailedOnline);
            return Err(HvError::InvalidArguments);
        }
        let _ = pending; // The handler trusts its (possibly corrupted) argument.
        machine.cpu_mut(cpu).power_on();
        machine.cpu_mut(cpu).reset_to(arg1);
        machine.timer_mut(cpu).start();
        Ok(i64::from(arg1))
    }

    // ------------------------------------------------------------------
    // arch_handle_trap
    // ------------------------------------------------------------------

    /// A trapped guest MMIO write (`arch_handle_trap()` with a data
    /// abort from a lower exception level).
    pub fn guest_mmio_write(&mut self, machine: &mut Machine, cpu: CpuId, addr: u32, value: u32) {
        let syndrome = Syndrome::mmio_data_abort(true, 2);
        let _ = self.handle_trap(machine, cpu, addr, syndrome, value);
    }

    /// A trapped guest MMIO read. Returns the value read (0 when the
    /// access was denied and the CPU parked).
    pub fn guest_mmio_read(&mut self, machine: &mut Machine, cpu: CpuId, addr: u32) -> u32 {
        let syndrome = Syndrome::mmio_data_abort(false, 2);
        self.handle_trap(machine, cpu, addr, syndrome, 0)
    }

    /// A stage-2-checked direct write: permitted accesses go straight
    /// to the bus (RAM or a direct-mapped device such as the root
    /// cell's UART); violations escalate through the trap path.
    pub fn guest_ram_write(&mut self, machine: &mut Machine, cpu: CpuId, addr: u32, value: u32) {
        if self.stage2_allows_cached(cpu, addr, true) {
            let _ = machine.write32(addr, value);
        } else {
            self.guest_mmio_write(machine, cpu, addr, value);
        }
    }

    /// A stage-2-checked direct read.
    pub fn guest_ram_read(&mut self, machine: &mut Machine, cpu: CpuId, addr: u32) -> u32 {
        if self.stage2_allows_cached(cpu, addr, false) {
            machine.read32(addr).unwrap_or(0)
        } else {
            self.guest_mmio_read(machine, cpu, addr)
        }
    }

    /// [`Hypervisor::stage2_allows`] with a per-CPU one-entry cache of
    /// the last sub-page direct window resolved through the region
    /// list — console output hits the same device window byte after
    /// byte, and the cache turns each repeat into two compares. The
    /// cache is keyed on the ownership epoch, so any cell/CPU
    /// reconfiguration invalidates it.
    fn stage2_allows_cached(&mut self, cpu: CpuId, addr: u32, write: bool) -> bool {
        let idx = cpu.0 as usize;
        if let Some(win) = self.direct_win.get(idx) {
            if win.epoch == self.ownership_epoch && addr >= win.base && addr < win.end {
                return if write { win.write } else { win.read };
            }
        }
        let Some(owner) = self.cpu_owner(cpu) else {
            // Unmanaged CPU (hypervisor disabled): no second stage.
            return !self.enabled;
        };
        let Some(cell) = self.cell(owner) else {
            return false;
        };
        let kind = if write {
            certify_arch::AccessKind::Write
        } else {
            certify_arch::AccessKind::Read
        };
        if cell.stage2().translate(addr, kind).is_ok() {
            return true;
        }
        let mut windows = cell.config.regions.iter().filter(|r| {
            r.contains_addr(addr)
                && !r.flags.contains(MemFlags::IO)
                && (r.base % certify_arch::mmu::PAGE_SIZE != 0
                    || r.size % certify_arch::mmu::PAGE_SIZE != 0)
        });
        match (windows.next(), windows.next()) {
            (None, _) => false,
            (Some(_), Some(_)) => {
                // Overlapping sub-page windows: a single window's
                // flags cannot answer for the address, so defer to
                // the pure per-access check and cache nothing.
                self.stage2_allows(cpu, addr, write)
            }
            (Some(region), None) => {
                let allowed = region.flags.contains(if write {
                    MemFlags::WRITE
                } else {
                    MemFlags::READ
                });
                // The cache answers before consulting the stage-2
                // table, so it may only hold windows that overlap no
                // mapped page (otherwise a page-mapped permission
                // would lose to the window's). Probe every page the
                // window touches; skip caching on any overlap.
                let page_mask = !(certify_arch::mmu::PAGE_SIZE - 1);
                let end = region.base.wrapping_add(region.size);
                let mut probe = region.base & page_mask;
                let mut overlaps_mapped = false;
                while probe < end {
                    if !matches!(
                        cell.stage2()
                            .translate(probe.max(region.base), certify_arch::AccessKind::Read),
                        Err(certify_arch::S2Fault::Translation { .. })
                    ) {
                        overlaps_mapped = true;
                        break;
                    }
                    match probe.checked_add(certify_arch::mmu::PAGE_SIZE) {
                        Some(next) => probe = next,
                        None => break,
                    }
                }
                if !overlaps_mapped {
                    let win = DirectWin {
                        base: region.base,
                        end,
                        read: region.flags.contains(MemFlags::READ),
                        write: region.flags.contains(MemFlags::WRITE),
                        epoch: self.ownership_epoch,
                    };
                    if self.direct_win.len() <= idx {
                        self.direct_win.resize(idx + 1, DirectWin::default());
                    }
                    self.direct_win[idx] = win;
                }
                allowed
            }
        }
    }

    /// Whether the stage-2 translation of `cpu`'s cell maps `addr`
    /// directly (normal memory, correct permission).
    ///
    /// Page-aligned regions are resolved through the cell's stage-2
    /// [`certify_arch::Stage2Table`]; sub-page direct-mapped device
    /// windows fall back to the region list.
    pub fn stage2_allows(&self, cpu: CpuId, addr: u32, write: bool) -> bool {
        let Some(owner) = self.cpu_owner(cpu) else {
            // Unmanaged CPU (hypervisor disabled): no second stage.
            return !self.enabled;
        };
        let Some(cell) = self.cell(owner) else {
            return false;
        };
        let kind = if write {
            certify_arch::AccessKind::Write
        } else {
            certify_arch::AccessKind::Read
        };
        if cell.stage2().translate(addr, kind).is_ok() {
            return true;
        }
        cell.config.regions.iter().any(|r| {
            r.contains_addr(addr)
                && !r.flags.contains(MemFlags::IO)
                && (r.base % certify_arch::mmu::PAGE_SIZE != 0
                    || r.size % certify_arch::mmu::PAGE_SIZE != 0)
                && r.flags.contains(if write {
                    MemFlags::WRITE
                } else {
                    MemFlags::READ
                })
        })
    }

    fn handle_trap(
        &mut self,
        machine: &mut Machine,
        cpu: CpuId,
        far: u32,
        syndrome: Syndrome,
        data: u32,
    ) -> u32 {
        if self.panic.is_some() {
            return 0;
        }
        if !self.enabled {
            // No hypervisor installed: the access hits the bus
            // directly (the root guest runs bare).
            return if syndrome.is_write() {
                let _ = machine.write32(far, data);
                0
            } else {
                machine.read32(far).unwrap_or(0)
            };
        }
        let step = machine.now();
        self.ensure_cpu_slots(machine.num_cpus());
        let owner = self.cpu_owner(cpu).unwrap_or(ROOT_CELL);
        if let Some(tracer) = &self.tracer {
            tracer.record(TraceEvent {
                step,
                cpu: cpu.0,
                kind: TraceKind::TrapTaken,
                arg_a: syndrome.encode() as u64,
                arg_b: far as u64,
            });
        }

        let mut regs = machine.cpu(cpu).regs.clone();
        let entry_elr = regs.read(Reg::PC);
        regs.write(Reg::R0, far);
        regs.write(Reg::R1, syndrome.encode());
        regs.write(Reg::R2, data);
        let expected = regconv::expected_pointers(cpu, owner);
        for (reg, value) in expected {
            regs.write(reg, value);
        }
        regs.far = far;
        regs.hsr = syndrome.encode();
        regs.elr = entry_elr;

        let touched = self.enter_handler(HandlerKind::ArchHandleTrap, cpu, step, &mut regs);

        let mut value = 0;
        if touched && self.check_pointers(machine, cpu, &regs, &expected) {
            // Handler crashed through a wild pointer; the emulation is
            // abandoned and the guest resumed. The damage is latent.
        } else if self.panic.is_none() {
            value = self.dispatch_trap(machine, cpu, &regs);
        }

        if self.panic.is_some() || machine.cpu(cpu).is_parked() {
            return value;
        }

        // Exception return: restore (possibly corrupted) guest-saved
        // registers and check the resume address. An untouched context
        // still holds the guest's own registers and the entry PC, so
        // both steps are no-ops.
        if touched {
            {
                let guest_regs = &mut machine.cpu_mut(cpu).regs;
                for reg in regconv::GUEST_SAVED {
                    guest_regs.write(reg, regs.read(reg));
                }
            }
            let resume = regs.read(Reg::PC);
            if resume != entry_elr {
                self.resume_at_corrupted_pc(machine, cpu, resume);
            }
        }
        value
    }

    /// The guest is resumed at a corrupted address. Inside the owning
    /// cell's code segment execution re-synchronises; anywhere else
    /// the guest immediately faults and the abort is unhandled.
    fn resume_at_corrupted_pc(&mut self, machine: &mut Machine, cpu: CpuId, resume: u32) {
        let owner = self.cpu_owner(cpu).unwrap_or(ROOT_CELL);
        let in_code_segment = self
            .cell(owner)
            .map(|cell| {
                cell.config.regions.iter().any(|r| {
                    r.flags.contains(MemFlags::EXECUTE)
                        && r.contains_addr(resume)
                        && resume - r.base < CODE_SEGMENT_SIZE
                })
            })
            .unwrap_or(false);
        if !in_code_segment {
            self.park_cpu(
                machine,
                cpu,
                ParkReason::UnhandledTrap(ExceptionClass::PrefetchAbortLower.code()),
            );
        }
    }

    fn dispatch_trap(&mut self, machine: &mut Machine, cpu: CpuId, regs: &RegisterFile) -> u32 {
        let step = machine.now();
        let syndrome = Syndrome::decode(regs.read(Reg::R1));
        match syndrome.class {
            ExceptionClass::WfiWfe => {
                machine.cpu_mut(cpu).enter_wfi();
                0
            }
            ExceptionClass::Cp15Trap => 0,
            ExceptionClass::Hvc => {
                // Only reachable through syndrome corruption: dispatch
                // whatever garbage is in the argument registers; the
                // validation layers reject it.
                let result = self.dispatch_hypercall(
                    machine,
                    cpu,
                    regs.read(Reg::R0),
                    regs.read(Reg::R1),
                    regs.read(Reg::R2),
                );
                let ret = match result {
                    Ok(v) => v,
                    Err(e) => e.code(),
                };
                self.events.push(HvEvent::Hypercall {
                    cpu,
                    code: regs.read(Reg::R0),
                    result: ret,
                    step,
                });
                0
            }
            ExceptionClass::DataAbortLower => {
                if !syndrome.isv() || syndrome.access_size().is_none() {
                    self.park_cpu(
                        machine,
                        cpu,
                        ParkReason::UnhandledTrap(ExceptionClass::DataAbortLower.code()),
                    );
                    return 0;
                }
                let addr = regs.read(Reg::R0);
                let owner = self.cpu_owner(cpu).unwrap_or(ROOT_CELL);
                let emulatable = self
                    .cell(owner)
                    .and_then(|cell| cell.config.region_for(addr))
                    .map(|r| r.flags.contains(MemFlags::IO))
                    .unwrap_or(false);
                if !emulatable {
                    self.events
                        .push(HvEvent::AccessViolation { cpu, addr, step });
                    self.evidence.record_violation(step);
                    self.park_cpu(
                        machine,
                        cpu,
                        ParkReason::UnhandledTrap(ExceptionClass::DataAbortLower.code()),
                    );
                    return 0;
                }
                if syndrome.is_write() {
                    if machine.write32(addr, regs.read(Reg::R2)).is_err() {
                        // Inside an assigned IO window but no device
                        // decodes there: unhandled.
                        self.park_cpu(
                            machine,
                            cpu,
                            ParkReason::UnhandledTrap(ExceptionClass::DataAbortLower.code()),
                        );
                    }
                    0
                } else {
                    match machine.read32(addr) {
                        Ok(v) => v,
                        Err(_) => {
                            self.park_cpu(
                                machine,
                                cpu,
                                ParkReason::UnhandledTrap(ExceptionClass::DataAbortLower.code()),
                            );
                            0
                        }
                    }
                }
            }
            other => {
                // The paper's signature outcome: an exception class the
                // hypervisor has no handler for — `cpu_park()`.
                self.park_cpu(machine, cpu, ParkReason::UnhandledTrap(other.code()));
                0
            }
        }
    }

    // ------------------------------------------------------------------
    // irqchip_handle_irq
    // ------------------------------------------------------------------

    /// The interrupt handler (`irqchip_handle_irq()` in the paper).
    ///
    /// Acknowledges the highest-priority pending interrupt and routes
    /// it. As the paper notes, the only live parameter is the vector
    /// number in `r0` — corrupting it yields a predictable IRQ error.
    pub fn handle_irq(&mut self, machine: &mut Machine, cpu: CpuId) -> IrqDelivery {
        if self.panic.is_some() {
            return IrqDelivery::Spurious;
        }
        let step = machine.now();
        self.ensure_cpu_slots(machine.num_cpus());
        let actual = machine.gic.acknowledge(cpu);
        if actual == SPURIOUS_IRQ {
            return IrqDelivery::Spurious;
        }

        let mut regs = machine.cpu(cpu).regs.clone();
        regs.write(Reg::R0, u32::from(actual.0));
        self.enter_handler(HandlerKind::IrqchipHandleIrq, cpu, step, &mut regs);
        let seen = IrqId(regs.read(Reg::R0) as u16);

        machine.gic.complete(cpu, actual);
        self.manifest_latent(cpu);

        if seen != actual {
            self.events.push(HvEvent::IrqError {
                cpu,
                seen,
                actual,
                step,
            });
            return IrqDelivery::Error;
        }
        if actual.is_sgi() && actual.0 == memmap::MGMT_SGI {
            IrqDelivery::MgmtWake
        } else if actual.0 == memmap::TIMER_IRQ {
            IrqDelivery::Tick
        } else {
            IrqDelivery::Guest(actual)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enabled_system() -> (Machine, Hypervisor) {
        let mut machine = Machine::new_banana_pi();
        machine.cpu_mut(CpuId(0)).power_on();
        machine.cpu_mut(CpuId(1)).power_on();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        let addr = memmap::ROOT_RAM_BASE + 0x0100_0000;
        hv.stage_blob(&mut machine, addr, &platform.serialize());
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0);
        assert_eq!(ret, 0);
        (machine, hv)
    }

    /// Offline CPU 1, create, load and start the FreeRTOS cell.
    fn with_rtos_cell() -> (Machine, Hypervisor, CellId) {
        let (mut machine, mut hv) = enabled_system();
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_OFF, 0, 0),
            0
        );
        let blob_addr = memmap::ROOT_RAM_BASE + 0x0200_0000;
        hv.stage_blob(
            &mut machine,
            blob_addr,
            &SystemConfig::freertos_cell().serialize(),
        );
        let id = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_CREATE, blob_addr, 0);
        assert!(id > 0, "cell_create failed: {id}");
        let id = CellId(id as u32);
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_SET_LOADABLE, id.0, 0),
            0
        );
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_START, id.0, 0),
            0
        );
        (machine, hv, id)
    }

    /// Like [`with_rtos_cell`], but also boots CPU 1 into the cell so
    /// guest accesses can be exercised.
    fn with_running_rtos_cell() -> (Machine, Hypervisor, CellId) {
        let (mut machine, mut hv, id) = with_rtos_cell();
        assert_eq!(hv.handle_irq(&mut machine, CpuId(1)), IrqDelivery::MgmtWake);
        let entry = hv.boot_pending(CpuId(1)).unwrap();
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_BOOT, entry, 0);
        assert_eq!(ret, i64::from(entry));
        assert!(machine.cpu(CpuId(1)).can_run_guest());
        (machine, hv, id)
    }

    #[test]
    fn enable_requires_valid_blob() {
        let mut machine = Machine::new_banana_pi();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        // Nothing staged: garbage at the address.
        let ret = hv.handle_hvc(
            &mut machine,
            CpuId(0),
            hc::HVC_HYPERVISOR_ENABLE,
            memmap::ROOT_RAM_BASE,
            0,
        );
        assert_eq!(ret, HvError::InvalidArguments.code());
        assert!(!hv.is_enabled());
    }

    #[test]
    fn enable_with_corrupted_address_is_einval_and_side_effect_free() {
        // The E1 mechanism: any bit flip of the blob address makes the
        // enable fail cleanly.
        let mut machine = Machine::new_banana_pi();
        let platform = SystemConfig::banana_pi_demo();
        let mut hv = Hypervisor::new(platform.clone());
        let addr = memmap::ROOT_RAM_BASE + 0x0100_0000;
        hv.stage_blob(&mut machine, addr, &platform.serialize());
        for bit in 0..32 {
            let corrupted = addr ^ (1 << bit);
            let ret = hv.handle_hvc(
                &mut machine,
                CpuId(0),
                hc::HVC_HYPERVISOR_ENABLE,
                corrupted,
                0,
            );
            assert!(ret < 0, "bit {bit}: corrupted enable succeeded");
            assert!(!hv.is_enabled());
        }
        // The pristine address still works afterwards.
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0),
            0
        );
    }

    #[test]
    fn enable_creates_running_root_cell() {
        let (_machine, hv) = enabled_system();
        let root = hv.cell(ROOT_CELL).unwrap();
        assert_eq!(root.state(), CellState::Running);
        assert_eq!(hv.cpu_owner(CpuId(0)), Some(ROOT_CELL));
        assert_eq!(hv.cpu_owner(CpuId(1)), Some(ROOT_CELL));
    }

    #[test]
    fn cell_create_requires_offline_cpu() {
        let (mut machine, mut hv) = enabled_system();
        let blob_addr = memmap::ROOT_RAM_BASE + 0x0200_0000;
        hv.stage_blob(
            &mut machine,
            blob_addr,
            &SystemConfig::freertos_cell().serialize(),
        );
        // CPU 1 still online and owned by root → busy.
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_CREATE, blob_addr, 0);
        assert_eq!(ret, HvError::Busy.code());
    }

    #[test]
    fn full_cell_lifecycle() {
        let (mut machine, mut hv, id) = with_rtos_cell();
        assert_eq!(hv.cell(id).unwrap().state(), CellState::Running);
        assert_eq!(hv.cpu_owner(CpuId(1)), Some(id));
        // The start SGI is pending on CPU 1.
        assert!(machine.gic.has_pending(CpuId(1)));
        assert_eq!(
            hv.boot_pending(CpuId(1)),
            Some(SystemConfig::freertos_cell().entry)
        );

        // Boot the CPU into the cell.
        assert_eq!(hv.handle_irq(&mut machine, CpuId(1)), IrqDelivery::MgmtWake);
        let entry = hv.boot_pending(CpuId(1)).unwrap();
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_BOOT, entry, 0);
        assert_eq!(ret, i64::from(entry));
        assert!(machine.cpu(CpuId(1)).can_run_guest());

        // Shut down: resources return to root.
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_SHUTDOWN, id.0, 0),
            0
        );
        assert_eq!(hv.cell(id).unwrap().state(), CellState::ShutDown);
        assert_eq!(hv.cpu_owner(CpuId(1)), Some(ROOT_CELL));
        assert!(machine.cpu(CpuId(1)).is_parked());

        // Destroy: the slot frees and memory is scrubbed.
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_DESTROY, id.0, 0),
            0
        );
        assert!(hv.cell(id).is_none());
    }

    #[test]
    fn corrupted_boot_entry_fails_online_but_cell_stays_running() {
        // The E2 mechanism.
        let (mut machine, mut hv, id) = with_rtos_cell();
        hv.handle_irq(&mut machine, CpuId(1));
        let entry = hv.boot_pending(CpuId(1)).unwrap();
        // Flip a high bit: the entry leaves the cell's RAM.
        let corrupted = entry ^ (1 << 29);
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_BOOT, corrupted, 0);
        assert_eq!(ret, HvError::InvalidArguments.code());
        assert_eq!(
            machine.cpu(CpuId(1)).park_reason(),
            Some(ParkReason::FailedOnline)
        );
        // Jailhouse still believes the cell is running — the
        // inconsistent state of E2.
        assert_eq!(hv.cell(id).unwrap().state(), CellState::Running);
        // And shutdown still reclaims everything.
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_SHUTDOWN, id.0, 0),
            0
        );
        assert_eq!(hv.cpu_owner(CpuId(1)), Some(ROOT_CELL));
    }

    #[test]
    fn boot_entry_within_ram_but_wrong_is_trusted() {
        // The other E2 leg: a corrupted-but-plausible entry is accepted
        // (the hypervisor cannot know better) and the guest ends up
        // non-executable.
        let (mut machine, mut hv, _id) = with_rtos_cell();
        hv.handle_irq(&mut machine, CpuId(1));
        let entry = hv.boot_pending(CpuId(1)).unwrap();
        let corrupted = entry ^ (1 << 4); // still in the exec region
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_BOOT, corrupted, 0);
        assert_eq!(ret, i64::from(corrupted));
    }

    #[test]
    fn mmio_write_to_owned_emulated_device_succeeds() {
        let (mut machine, mut hv, _id) = with_running_rtos_cell();
        // GPIO is IO-flagged for the rtos cell.
        hv.guest_mmio_write(
            &mut machine,
            CpuId(1),
            memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET,
            1 << memmap::LED_PIN,
        );
        assert!(!machine.cpu(CpuId(1)).is_parked());
        assert_eq!(machine.gpio.toggle_count(memmap::LED_PIN), 1);
    }

    #[test]
    fn mmio_to_unassigned_address_parks_cpu_with_0x24() {
        let (mut machine, mut hv, id) = with_running_rtos_cell();
        // The UART belongs to the root cell only.
        hv.guest_mmio_write(&mut machine, CpuId(1), memmap::UART_BASE, 0x41);
        assert_eq!(
            machine.cpu(CpuId(1)).park_reason(),
            Some(ParkReason::UnhandledTrap(0x24))
        );
        assert_eq!(hv.cell(id).unwrap().state(), CellState::Failed);
        // The park banner went to the serial log.
        let log: String = machine
            .uart
            .lines()
            .into_iter()
            .map(|(_, l)| l)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(log.contains("unhandled trap 0x24"), "log was: {log}");
    }

    #[test]
    fn ram_access_inside_cell_is_direct() {
        let (mut machine, mut hv, _id) = with_running_rtos_cell();
        let addr = memmap::RTOS_RAM_BASE + 0x100;
        hv.guest_ram_write(&mut machine, CpuId(1), addr, 77);
        assert_eq!(hv.guest_ram_read(&mut machine, CpuId(1), addr), 77);
        assert!(!machine.cpu(CpuId(1)).is_parked());
    }

    #[test]
    fn ram_access_across_cells_is_denied_and_parks() {
        let (mut machine, mut hv, _id) = with_running_rtos_cell();
        // The rtos cell reaching into root RAM: isolation violation.
        hv.guest_ram_write(&mut machine, CpuId(1), memmap::ROOT_RAM_BASE + 0x1000, 1);
        assert_eq!(
            machine.cpu(CpuId(1)).park_reason(),
            Some(ParkReason::UnhandledTrap(0x24))
        );
    }

    #[test]
    fn shared_ivshmem_is_accessible_from_both_cells() {
        let (mut machine, mut hv, _id) = with_running_rtos_cell();
        let addr = memmap::IVSHMEM_BASE + 8;
        hv.guest_ram_write(&mut machine, CpuId(1), addr, 0xabcd);
        assert_eq!(hv.guest_ram_read(&mut machine, CpuId(0), addr), 0xabcd);
        assert!(!machine.cpu(CpuId(0)).is_parked());
        assert!(!machine.cpu(CpuId(1)).is_parked());
    }

    #[test]
    fn console_putc_reaches_the_uart() {
        let (mut machine, mut hv, _id) = with_running_rtos_cell();
        let before = machine.uart.byte_count();
        let ret = hv.handle_hvc(
            &mut machine,
            CpuId(1),
            hc::HVC_DEBUG_CONSOLE_PUTC,
            u32::from(b'X'),
            0,
        );
        assert_eq!(ret, 0);
        assert_eq!(machine.uart.byte_count(), before + 1);
    }

    #[test]
    fn console_putc_rejects_out_of_range_char() {
        let (mut machine, mut hv) = enabled_system();
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_DEBUG_CONSOLE_PUTC, 0x1ff, 0);
        assert_eq!(ret, HvError::InvalidArguments.code());
    }

    #[test]
    fn management_calls_from_non_root_cell_are_denied() {
        let (mut machine, mut hv, id) = with_running_rtos_cell();
        // The rtos cell tries to destroy itself / the root.
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CELL_DESTROY, id.0, 0);
        assert_eq!(ret, HvError::NotPermitted.code());
        let ret = hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CELL_SHUTDOWN, 0, 0);
        assert_eq!(ret, HvError::NotPermitted.code());
    }

    #[test]
    fn unknown_hypercall_is_rejected() {
        let (mut machine, mut hv) = enabled_system();
        let ret = hv.handle_hvc(&mut machine, CpuId(0), 77, 0, 0);
        assert_eq!(ret, HvError::UnknownHypercall.code());
    }

    #[test]
    fn get_info_works_before_enable() {
        let mut machine = Machine::new_banana_pi();
        let mut hv = Hypervisor::new(SystemConfig::banana_pi_demo());
        assert_eq!(
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0),
            0
        );
    }

    #[test]
    fn corrupted_pointer_register_causes_wild_store_and_einval() {
        // Install a hook that corrupts the cell-structure pointer r5 at
        // hvc entry — the medium-intensity panic-park path.
        #[derive(Debug)]
        struct FlipR5;
        impl InjectionHook for FlipR5 {
            fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
                if ctx.handler == HandlerKind::ArchHandleHvc {
                    ctx.regs.flip_bit(Reg::R5, 3);
                    ctx.mark_touched();
                }
            }
        }
        let (mut machine, mut hv) = enabled_system();
        hv.set_hook(Box::new(FlipR5));
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
        assert_eq!(ret, HvError::InvalidArguments.code());
        let wild_stores = hv
            .events()
            .iter()
            .filter(|e| matches!(e, HvEvent::WildStore { .. }))
            .count();
        assert_eq!(wild_stores, 1);
        // The flipped low bit keeps the pointer inside hypervisor
        // memory → latent corruption → root notice at the next root
        // hypervisor entry.
        hv.take_hook();
        hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
        assert_eq!(hv.take_corruption_notices(), vec![ROOT_CELL]);
    }

    #[test]
    fn wild_store_to_device_space_panics_the_hypervisor() {
        #[derive(Debug)]
        struct ZeroR13;
        impl InjectionHook for ZeroR13 {
            fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
                // Stack pointer replaced with an address in an
                // unmapped hole of the physical map.
                ctx.regs.write(Reg::R13, 0x0900_0000);
                ctx.mark_touched();
            }
        }
        let (mut machine, mut hv) = enabled_system();
        hv.set_hook(Box::new(ZeroR13));
        hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
        assert!(hv.panicked().is_some());
        assert!(machine.cpu(CpuId(0)).is_parked());
        assert!(machine.cpu(CpuId(1)).is_parked());
    }

    #[test]
    fn corrupted_syndrome_class_parks_with_the_corrupted_code() {
        #[derive(Debug)]
        struct FlipEcBit;
        impl InjectionHook for FlipEcBit {
            fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
                if ctx.handler == HandlerKind::ArchHandleTrap {
                    // Flip an EC bit of the syndrome in r1: 0x24 -> 0x25.
                    ctx.regs.flip_bit(Reg::R1, 26);
                    ctx.mark_touched();
                }
            }
        }
        let (mut machine, mut hv, _id) = with_rtos_cell();
        hv.set_hook(Box::new(FlipEcBit));
        hv.guest_mmio_write(
            &mut machine,
            CpuId(1),
            memmap::GPIO_BASE + memmap::GPIO_DATA_OFFSET,
            1,
        );
        assert_eq!(
            machine.cpu(CpuId(1)).park_reason(),
            Some(ParkReason::UnhandledTrap(0x25))
        );
    }

    #[test]
    fn irq_vector_corruption_yields_predictable_irq_error() {
        #[derive(Debug)]
        struct FlipR0;
        impl InjectionHook for FlipR0 {
            fn on_handler_entry(&mut self, ctx: &mut HookCtx<'_>) {
                if ctx.handler == HandlerKind::IrqchipHandleIrq {
                    ctx.regs.flip_bit(Reg::R0, 2);
                    ctx.mark_touched();
                }
            }
        }
        let (mut machine, mut hv) = enabled_system();
        machine.timer_mut(CpuId(0)).start();
        for _ in 0..certify_board::machine::DEFAULT_TIMER_PERIOD {
            machine.advance();
        }
        hv.set_hook(Box::new(FlipR0));
        let delivery = hv.handle_irq(&mut machine, CpuId(0));
        assert_eq!(delivery, IrqDelivery::Error);
        assert!(hv
            .events()
            .iter()
            .any(|e| matches!(e, HvEvent::IrqError { .. })));
        // Nothing else went wrong — the predictable behaviour the
        // paper used to justify excluding this handler.
        assert!(!machine.cpu(CpuId(0)).is_parked());
        assert!(hv.panicked().is_none());
    }

    #[test]
    fn profiling_counts_handler_calls() {
        let (mut machine, mut hv) = enabled_system();
        for _ in 0..5 {
            hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
        }
        // 5 get_info calls plus the enable call itself.
        assert_eq!(hv.call_count(HandlerKind::ArchHandleHvc, CpuId(0)), 6);
        assert_eq!(hv.call_count(HandlerKind::ArchHandleHvc, CpuId(1)), 0);
        assert_eq!(hv.call_count(HandlerKind::ArchHandleTrap, CpuId(0)), 0);
    }

    #[test]
    fn destroy_scrubs_private_memory() {
        let (mut machine, mut hv, id) = with_rtos_cell();
        let addr = memmap::RTOS_RAM_BASE + 0x40;
        hv.guest_ram_write(&mut machine, CpuId(1), addr, 0x5ec2_e701);
        hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_DESTROY, id.0, 0);
        assert_eq!(machine.ram().read32(addr).unwrap(), 0);
    }
}

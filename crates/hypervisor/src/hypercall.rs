//! Hypercall codes.
//!
//! Codes 0–8 follow Jailhouse's numbering. Codes ≥ 100 are extensions
//! the model needs because operations that are *not* hypercalls in
//! real Jailhouse (loading the firmware via the kernel driver, PSCI
//! CPU power control) still flow through `arch_handle_hvc()` in the
//! simulator so that the fault campaigns can target them — see
//! DESIGN.md §2 for the substitution note.

/// Disable the hypervisor and return the machine to the root guest.
pub const HVC_HYPERVISOR_DISABLE: u32 = 0;
/// Create a cell from a configuration blob staged in root RAM.
pub const HVC_CELL_CREATE: u32 = 1;
/// Start a created (and loaded) cell.
pub const HVC_CELL_START: u32 = 2;
/// Mark a cell loadable and (abstractly) load its image.
pub const HVC_CELL_SET_LOADABLE: u32 = 3;
/// Destroy a cell, returning all resources to the root cell.
pub const HVC_CELL_DESTROY: u32 = 4;
/// Query hypervisor information (returns the number of cells).
pub const HVC_HYPERVISOR_GET_INFO: u32 = 5;
/// Query a cell's lifecycle state.
pub const HVC_CELL_GET_STATE: u32 = 6;
/// Query a CPU's park state.
pub const HVC_CPU_GET_INFO: u32 = 7;
/// Emit one character on the hypervisor debug console (the shared
/// UART) — the non-root cell's only way to print.
pub const HVC_DEBUG_CONSOLE_PUTC: u32 = 8;

/// Install the hypervisor from a system-configuration blob
/// (models `jailhouse enable`; extension code).
pub const HVC_HYPERVISOR_ENABLE: u32 = 100;
/// Offline the calling CPU (models the PSCI `CPU_OFF` leg of the CPU
/// hot-plug handover; extension code).
pub const HVC_CPU_OFF: u32 = 101;
/// Boot the calling (woken) CPU into its cell at the given entry point
/// (models the PSCI `CPU_ON` leg; extension code).
pub const HVC_CPU_BOOT: u32 = 102;
/// Shut a cell down, returning CPU and peripherals to the root cell
/// while keeping the cell allocated (models `jailhouse cell shutdown`;
/// extension code).
pub const HVC_CELL_SHUTDOWN: u32 = 103;

/// Whether `code` is a known hypercall.
pub fn is_known(code: u32) -> bool {
    matches!(code, 0..=8 | 100..=103)
}

/// Human-readable hypercall name for logs.
pub fn name(code: u32) -> &'static str {
    match code {
        HVC_HYPERVISOR_DISABLE => "hypervisor_disable",
        HVC_CELL_CREATE => "cell_create",
        HVC_CELL_START => "cell_start",
        HVC_CELL_SET_LOADABLE => "cell_set_loadable",
        HVC_CELL_DESTROY => "cell_destroy",
        HVC_HYPERVISOR_GET_INFO => "hypervisor_get_info",
        HVC_CELL_GET_STATE => "cell_get_state",
        HVC_CPU_GET_INFO => "cpu_get_info",
        HVC_DEBUG_CONSOLE_PUTC => "debug_console_putc",
        HVC_HYPERVISOR_ENABLE => "hypervisor_enable",
        HVC_CPU_OFF => "cpu_off",
        HVC_CPU_BOOT => "cpu_boot",
        HVC_CELL_SHUTDOWN => "cell_shutdown",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_codes_have_names() {
        for code in (0..=8).chain(100..=103) {
            assert!(is_known(code));
            assert_ne!(name(code), "unknown");
        }
    }

    #[test]
    fn unknown_codes_are_rejected() {
        for code in [9, 42, 99, 104, u32::MAX] {
            assert!(!is_known(code));
            assert_eq!(name(code), "unknown");
        }
    }
}

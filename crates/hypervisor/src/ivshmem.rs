//! Inter-cell shared-memory channel (ivshmem device model).
//!
//! Jailhouse's only inter-cell communication primitive is a shared
//! memory region with a doorbell interrupt. The model implements a
//! simple single-writer message mailbox in the shared page:
//!
//! ```text
//! +0  sequence number (incremented per message)
//! +4  payload length in words (≤ MAX_PAYLOAD_WORDS)
//! +8  payload words
//! ```
//!
//! Both ends access the mailbox through their [`GuestCtx`]'s stage-2
//! checked RAM accessors, so an ivshmem access from a cell that lost
//! the region (e.g. after shutdown) faults exactly like any other
//! isolation violation.

use crate::guest::GuestCtx;
use certify_board::memmap;
use serde::{Deserialize, Serialize};

/// Maximum message payload, in 32-bit words.
pub const MAX_PAYLOAD_WORDS: usize = 16;

/// One end of the shared-memory mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvshmemChannel {
    base: u32,
    last_seen_seq: u32,
}

impl IvshmemChannel {
    /// A channel over the board's dedicated ivshmem region.
    pub fn new() -> IvshmemChannel {
        IvshmemChannel::at(memmap::IVSHMEM_BASE)
    }

    /// A channel over a custom shared region (tests).
    pub fn at(base: u32) -> IvshmemChannel {
        IvshmemChannel {
            base,
            last_seen_seq: 0,
        }
    }

    /// Posts a message, bumping the sequence number. Payloads longer
    /// than [`MAX_PAYLOAD_WORDS`] are truncated.
    pub fn post(&mut self, ctx: &mut GuestCtx<'_>, payload: &[u32]) {
        let len = payload.len().min(MAX_PAYLOAD_WORDS);
        for (i, word) in payload.iter().take(len).enumerate() {
            ctx.ram_write32(self.base + 8 + 4 * i as u32, *word);
        }
        ctx.ram_write32(self.base + 4, len as u32);
        let seq = ctx.ram_read32(self.base).wrapping_add(1);
        ctx.ram_write32(self.base, seq);
    }

    /// Polls for a message newer than the last one seen by this end.
    /// Returns the payload if one is available.
    pub fn poll(&mut self, ctx: &mut GuestCtx<'_>) -> Option<Vec<u32>> {
        let seq = ctx.ram_read32(self.base);
        if seq == self.last_seen_seq {
            return None;
        }
        self.last_seen_seq = seq;
        let len = (ctx.ram_read32(self.base + 4) as usize).min(MAX_PAYLOAD_WORDS);
        let mut payload = Vec::with_capacity(len);
        for i in 0..len {
            payload.push(ctx.ram_read32(self.base + 8 + 4 * i as u32));
        }
        Some(payload)
    }

    /// The sequence number this end last consumed.
    pub fn last_seen(&self) -> u32 {
        self.last_seen_seq
    }
}

impl Default for IvshmemChannel {
    fn default() -> Self {
        IvshmemChannel::new()
    }
}

//! A Jailhouse-like static partitioning hypervisor model.
//!
//! This crate is the *system under test* of the reproduction: an
//! open-source-style partitioning hypervisor whose isolation and
//! integrity guarantees the fault-injection campaigns of the paper
//! probe. It follows Jailhouse's architecture:
//!
//! * hardware is divided into statically configured **cells**
//!   ([`config`], [`cell`]); the **root cell** owns everything not
//!   explicitly given away;
//! * the hypervisor is installed from the root cell at runtime
//!   (`HYPERVISOR_ENABLE`), creating the root cell, and further cells
//!   are managed through **hypercalls** ([`hypercall`]);
//! * guest exceptions funnel through three handlers —
//!   `irqchip_handle_irq()`, `arch_handle_trap()` and
//!   `arch_handle_hvc()` — exactly the three injection points the
//!   paper's golden-run profiling identified ([`Hypervisor`]);
//! * a CPU whose trap cannot be handled is **parked**
//!   (`cpu_park()`), the paper's `0x24` outcome;
//! * cells communicate only through a shared-memory region
//!   ([`ivshmem`]).
//!
//! # Handler-entry register convention
//!
//! The paper injects bit flips into "a random architecture register" at
//! handler entry. What turns a flipped bit into a system-level outcome
//! is *which role* the register plays in the compiled handler. The
//! model fixes a realistic convention (see [`regconv`]) — argument
//! registers carry the fault address / syndrome / data, several callee
//! registers hold live hypervisor pointers (per-CPU state, cell
//! structure, region table, frame and stack pointers), and the rest is
//! saved guest context. Corrupting a live pointer makes the handler
//! store through a wild address with hypervisor privileges: the fault
//! *propagation* path behind the paper's ~30 % *panic park* share.
//!
//! # Example
//!
//! ```
//! use certify_board::Machine;
//! use certify_hypervisor::{Hypervisor, SystemConfig};
//!
//! let mut machine = Machine::new_banana_pi();
//! let config = SystemConfig::banana_pi_demo();
//! let mut hv = Hypervisor::new(config.clone());
//! // Stage the serialized system config in root RAM and enable.
//! let addr = 0x4100_0000;
//! hv.stage_blob(&mut machine, addr, &config.serialize());
//! let ret = hv.handle_hvc(&mut machine, certify_arch::CpuId(0),
//!                         certify_hypervisor::hypercall::HVC_HYPERVISOR_ENABLE,
//!                         addr, 0);
//! assert_eq!(ret, 0);
//! assert!(hv.is_enabled());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cell;
pub mod commregion;
pub mod config;
pub mod error;
pub mod event;
pub mod guest;
pub mod hooks;
pub mod hv;
pub mod hypercall;
pub mod ivshmem;
pub mod regconv;

pub use cell::{Cell, CellId, CellState};
pub use commregion::CommRegion;
pub use config::{CellConfig, MemFlags, MemRegion, SystemConfig};
pub use error::HvError;
pub use event::{CpuParkTally, Evidence, HvEvent};
pub use guest::{Guest, GuestCtx, GuestHealth};
pub use hooks::{HandlerKind, HookCtx, InjectionHook};
pub use hv::Hypervisor;
pub use ivshmem::IvshmemChannel;

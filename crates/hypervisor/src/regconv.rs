//! Handler-entry register conventions.
//!
//! The fault model of the paper is a bit flip in "a random architecture
//! register" at the entry of a profiled hypervisor handler. Whether
//! such a flip is harmless, isolated, or catastrophic depends entirely
//! on the *role* the register plays in the compiled handler at that
//! moment. This module pins down a realistic convention, modelled on
//! how a compiler allocates registers in Jailhouse's ARM handlers:
//!
//! | register | role at `arch_handle_trap` entry | corruption effect |
//! |----------|----------------------------------|-------------------|
//! | `r0`   | fault IPA (copy of `HDFAR`)        | wrong MMIO decode → mostly unhandled abort → **CPU park** |
//! | `r1`   | syndrome (copy of `HSR`)           | EC/ISV flips → unhandled class → **CPU park**; ISS flips → wrong emulation → degraded but alive |
//! | `r2`   | store data of the trapped access   | wrong device value → alive |
//! | `r3`   | per-CPU state pointer              | wild hypervisor store → **fault propagation** |
//! | `r5`   | cell structure pointer             | wild hypervisor store → **fault propagation** |
//! | `r7`   | memory-region table cursor         | wild hypervisor store → **fault propagation** |
//! | `r11`  | frame pointer (hyp stack)          | wild hypervisor store → **fault propagation** |
//! | `r13`  | hyp stack pointer                  | wild hypervisor store → **fault propagation** |
//! | `r4,r6,r8,r9,r10,r12,r14` | saved guest context | guest data corruption → cell degraded but available |
//! | `r15`  | guest return address               | wild guest resume → crash or recovery |
//!
//! At `arch_handle_hvc` entry, `r0`–`r2` are the hypercall code and
//! arguments (AAPCS), and the same five registers hold live hypervisor
//! pointers. At `irqchip_handle_irq` entry only `r0` (the vector
//! number) is live — which is exactly why the paper excluded that
//! handler: "manumitting it means calling a different IRQ function,
//! defaulting to an IRQ error, which is completely predictable".
//!
//! The five *pointer-live* registers out of sixteen are what produce
//! the ≈30 % fault-propagation (panic park) share of Figure 3 under a
//! uniformly chosen register.

use crate::cell::CellId;
use certify_arch::{CpuId, Reg};
use certify_board::memmap;

/// Registers holding live hypervisor pointers at `arch_handle_trap`
/// and `arch_handle_hvc` entry.
pub const POINTER_LIVE: [Reg; 5] = [Reg::R3, Reg::R5, Reg::R7, Reg::R11, Reg::R13];

/// Registers holding saved guest context, restored verbatim on
/// exception return.
pub const GUEST_SAVED: [Reg; 7] = [
    Reg::R4,
    Reg::R6,
    Reg::R8,
    Reg::R9,
    Reg::R10,
    Reg::R12,
    Reg::R14,
];

/// The per-CPU hypervisor state block for `cpu`.
pub fn percpu_ptr(cpu: CpuId) -> u32 {
    memmap::HV_RAM_BASE + 0x1000 * cpu.0
}

/// The hypervisor's cell structure for `cell`.
pub fn cell_ptr(cell: CellId) -> u32 {
    memmap::HV_RAM_BASE + 0x0010_0000 + 0x400 * cell.0
}

/// The memory-region table of `cell`.
pub fn region_table_ptr(cell: CellId) -> u32 {
    memmap::HV_RAM_BASE + 0x0020_0000 + 0x1000 * cell.0
}

/// The handler frame pointer on `cpu`'s hyp stack.
pub fn frame_ptr(cpu: CpuId) -> u32 {
    memmap::HV_RAM_BASE + 0x0030_0000 + 0x4000 * cpu.0 + 0x3f80
}

/// The hyp stack pointer of `cpu` at handler entry.
pub fn stack_ptr(cpu: CpuId) -> u32 {
    memmap::HV_RAM_BASE + 0x0030_0000 + 0x4000 * cpu.0 + 0x3f40
}

/// The expected values of the five pointer-live registers for a
/// handler running on `cpu` on behalf of `cell`.
pub fn expected_pointers(cpu: CpuId, cell: CellId) -> [(Reg, u32); 5] {
    [
        (Reg::R3, percpu_ptr(cpu)),
        (Reg::R5, cell_ptr(cell)),
        (Reg::R7, region_table_ptr(cell)),
        (Reg::R11, frame_ptr(cpu)),
        (Reg::R13, stack_ptr(cpu)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pointer_and_guest_sets_are_disjoint_and_cover_non_argument_regs() {
        // The handler argument registers are r0..r2 (code/address,
        // syndrome/arg1, data/arg2).
        let handler_args = [Reg::R0, Reg::R1, Reg::R2];
        for reg in POINTER_LIVE {
            assert!(!GUEST_SAVED.contains(&reg));
            assert!(!handler_args.contains(&reg));
        }
        // r0..r2 arguments + 5 pointers + 7 guest-saved + r15 = 16.
        assert_eq!(3 + POINTER_LIVE.len() + GUEST_SAVED.len() + 1, 16);
    }

    #[test]
    fn expected_pointers_live_in_hypervisor_memory() {
        for cpu in [CpuId(0), CpuId(1)] {
            for cell in [CellId(0), CellId(1), CellId(7)] {
                for (_, addr) in expected_pointers(cpu, cell) {
                    assert!(
                        memmap::in_region(addr, memmap::HV_RAM_BASE, memmap::HV_RAM_SIZE),
                        "0x{addr:08x} outside hypervisor carve-out"
                    );
                }
            }
        }
    }

    #[test]
    fn pointer_blocks_do_not_collide_across_cpus_and_cells() {
        assert_ne!(percpu_ptr(CpuId(0)), percpu_ptr(CpuId(1)));
        assert_ne!(cell_ptr(CellId(0)), cell_ptr(CellId(1)));
        assert_ne!(stack_ptr(CpuId(0)), stack_ptr(CpuId(1)));
        assert_ne!(frame_ptr(CpuId(0)), stack_ptr(CpuId(0)));
    }
}

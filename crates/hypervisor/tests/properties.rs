//! Property-based tests for the hypervisor.

use certify_arch::CpuId;
use certify_board::{memmap, Machine};
use certify_hypervisor::hypercall as hc;
use certify_hypervisor::{
    CellConfig, CellId, CellState, HvError, Hypervisor, MemFlags, MemRegion, SystemConfig,
};
use proptest::prelude::*;

fn enabled_system() -> (Machine, Hypervisor) {
    let mut machine = Machine::new_banana_pi();
    machine.cpu_mut(CpuId(0)).power_on();
    machine.cpu_mut(CpuId(1)).power_on();
    let platform = SystemConfig::banana_pi_demo();
    let mut hv = Hypervisor::new(platform.clone());
    let addr = memmap::ROOT_RAM_BASE + 0x0100_0000;
    hv.stage_blob(&mut machine, addr, &platform.serialize());
    assert_eq!(
        hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_ENABLE, addr, 0),
        0
    );
    (machine, hv)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Configuration blobs survive arbitrary-field round trips, and
    /// any single bit flip anywhere in the blob is rejected.
    #[test]
    fn config_serialization_round_trips_and_rejects_corruption(
        name_len in 1usize..16,
        entry_page in 0u32..1000,
        num_regions in 1usize..5,
        flip_byte_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
    ) {
        let mut regions = Vec::new();
        for i in 0..num_regions {
            regions.push(MemRegion::new(
                memmap::RTOS_RAM_BASE + (i as u32) * 0x10_0000,
                0x1000,
                MemFlags::rwx(),
            ));
        }
        let config = CellConfig {
            name: "x".repeat(name_len),
            cpus: vec![CpuId(1)],
            regions,
            irqs: vec![],
            entry: memmap::RTOS_RAM_BASE + entry_page * 4,
        };
        prop_assume!(config.validate().is_ok());

        let blob = config.serialize();
        prop_assert_eq!(CellConfig::deserialize(&blob).unwrap(), config);

        let byte = ((blob.len() - 1) as f64 * flip_byte_frac) as usize;
        let mut corrupted = blob.clone();
        corrupted[byte] ^= 1 << flip_bit;
        prop_assert!(CellConfig::deserialize(&corrupted).is_err());
    }

    /// The stage-2 check never grants a non-root cell access outside
    /// its configured regions.
    #[test]
    fn stage2_never_leaks_foreign_memory(addr in any::<u32>()) {
        let (mut machine, mut hv) = enabled_system();
        // Bring up the rtos cell.
        hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_OFF, 0, 0);
        let blob = memmap::ROOT_RAM_BASE + 0x0200_0000;
        hv.stage_blob(&mut machine, blob, &SystemConfig::freertos_cell().serialize());
        let id = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_CREATE, blob, 0);
        prop_assert!(id > 0);

        let config = SystemConfig::freertos_cell();
        let allowed = hv.stage2_allows(CpuId(1), addr, true);
        let in_config = config
            .regions
            .iter()
            .any(|r| r.contains_addr(addr) && !r.flags.contains(MemFlags::IO));
        prop_assert_eq!(allowed, in_config, "addr {:#010x}", addr);
    }

    /// Unknown hypercall codes are always cleanly rejected, whatever
    /// the arguments, with no state change.
    #[test]
    fn unknown_hypercalls_never_have_side_effects(
        code in 9u32..100,
        a1 in any::<u32>(),
        a2 in any::<u32>(),
    ) {
        prop_assume!(!certify_hypervisor::hypercall::is_known(code));
        let (mut machine, mut hv) = enabled_system();
        let cells_before: Vec<CellId> = hv.cells().map(|c| c.id).collect();
        let ret = hv.handle_hvc(&mut machine, CpuId(0), code, a1, a2);
        prop_assert_eq!(ret, HvError::UnknownHypercall.code());
        let cells_after: Vec<CellId> = hv.cells().map(|c| c.id).collect();
        prop_assert_eq!(cells_before, cells_after);
        prop_assert!(hv.is_enabled());
        prop_assert!(hv.panicked().is_none());
    }

    /// Cell lifecycle safety: random management-call sequences never
    /// panic the hypervisor, never destroy the root cell, and keep
    /// the CPU-ownership map consistent with the live cells.
    #[test]
    fn random_management_sequences_preserve_invariants(
        ops in proptest::collection::vec(0u8..6, 1..25),
    ) {
        let (mut machine, mut hv) = enabled_system();
        hv.handle_hvc(&mut machine, CpuId(1), hc::HVC_CPU_OFF, 0, 0);
        let blob = memmap::ROOT_RAM_BASE + 0x0200_0000;
        hv.stage_blob(&mut machine, blob, &SystemConfig::freertos_cell().serialize());

        for op in ops {
            match op {
                0 => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_CREATE, blob, 0);
                }
                1 => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_SET_LOADABLE, 1, 0);
                }
                2 => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_START, 1, 0);
                }
                3 => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_SHUTDOWN, 1, 0);
                }
                4 => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_CELL_DESTROY, 1, 0);
                }
                _ => {
                    let _ = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_HYPERVISOR_GET_INFO, 0, 0);
                }
            }
            // Invariants after every step:
            prop_assert!(hv.panicked().is_none());
            prop_assert!(hv.cell(CellId(0)).is_some(), "root cell vanished");
            prop_assert_eq!(hv.cell(CellId(0)).unwrap().state(), CellState::Running);
            for cpu in [CpuId(0), CpuId(1)] {
                if let Some(owner) = hv.cpu_owner(cpu) {
                    prop_assert!(
                        hv.cell(owner).is_some(),
                        "{} owned by dead {}", cpu, owner
                    );
                }
            }
            prop_assert_eq!(hv.cpu_owner(CpuId(0)), Some(CellId(0)));
        }
    }

    /// The debug console accepts every byte value and transmits it
    /// verbatim.
    #[test]
    fn console_putc_transmits_all_bytes(byte in 0u32..256) {
        let (mut machine, mut hv) = enabled_system();
        let before = machine.uart.byte_count();
        let ret = hv.handle_hvc(&mut machine, CpuId(0), hc::HVC_DEBUG_CONSOLE_PUTC, byte, 0);
        prop_assert_eq!(ret, 0);
        prop_assert_eq!(machine.uart.byte_count(), before + 1);
        prop_assert_eq!(machine.uart.captured().last().unwrap().byte, byte as u8);
    }
}

//! Pass 3 — the determinism source audit.
//!
//! The framework's whole claim rests on seeded determinism: the same
//! scenario and seed must produce byte-identical trial results on any
//! machine, in any process, at any time. That property dies quietly —
//! someone reaches for a `HashMap` (seeded iteration order), a wall
//! clock, OS entropy, or an ambient environment read, and trials stop
//! replaying. This pass is a plain text scan over the trial-hot-path
//! crates that refuses known nondeterminism sources outright, with a
//! committed allowlist (`determinism-allow.txt`) for the audited
//! exceptions. It runs in CI beside `fmt` and `clippy`.
//!
//! Deliberately dumb: no parsing, no type resolution — just token
//! matching on comment-stripped source lines, stopping at each file's
//! `#[cfg(test)]` module (test code may use clocks and maps freely).
//! Dumb scanners are predictable: a contributor can always see *why*
//! a line fired and either fix it or allowlist it with a comment.

use crate::diagnostic::{Code, Diagnostic};
use std::fs;
use std::path::{Path, PathBuf};

/// The forbidden tokens and why each breaks replay determinism.
pub const FORBIDDEN_TOKENS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomly seeded per process"),
    ("HashSet", "iteration order is randomly seeded per process"),
    ("SystemTime", "wall-clock reads differ per run"),
    ("Instant::now", "monotonic-clock reads differ per run"),
    ("thread_rng", "OS-entropy RNG breaks seeded replay"),
    ("rand::random", "OS-entropy RNG breaks seeded replay"),
    ("OsRng", "OS-entropy RNG breaks seeded replay"),
    ("std::env::", "ambient environment reads differ per host"),
    (
        "thread::sleep",
        "real-time delays stall replay and differ per run",
    ),
];

/// Crate directories excluded from the scan: `bench` legitimately
/// reads clocks and CLI args; `lint` is the auditor itself (its token
/// table would trip the scan).
const EXCLUDED_CRATES: &[&str] = &["bench", "lint"];

/// Repository-root-relative directories the repo-wide audit scans in
/// addition to the crate sources: the examples, the bench binaries
/// (`bench/src` stays excluded, but its benches are real programs
/// whose clock reads must be deliberate), and the facade crate.
const EXTRA_SCAN_DIRS: &[&str] = &["examples", "src", "crates/bench/benches"];

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
struct AllowEntry {
    /// Path suffix the entry applies to (e.g. `board/src/ram.rs`).
    path_suffix: String,
    /// The forbidden token being allowed there.
    token: String,
    /// Whether any scanned line consumed this entry.
    used: bool,
    /// Line number in the allowlist file (for diagnostics).
    line: usize,
}

/// The committed allowlist this build is audited with.
pub const DEFAULT_ALLOWLIST: &str = include_str!("../determinism-allow.txt");

/// Parses an allowlist: one `path-suffix token` pair per line, `#`
/// comments (inline or whole-line) and blank lines ignored.
fn parse_allowlist(text: &str, out: &mut Vec<Diagnostic>) -> Vec<AllowEntry> {
    let mut entries = Vec::new();
    for (line_no, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        match (parts.next(), parts.next(), parts.next()) {
            (Some(path_suffix), Some(token), None) => entries.push(AllowEntry {
                path_suffix: path_suffix.to_string(),
                token: token.to_string(),
                used: false,
                line: line_no + 1,
            }),
            _ => out.push(Diagnostic::new(
                Code::AuditMalformedAllow,
                format!("determinism-allow.txt:{}", line_no + 1),
                format!("cannot parse `{line}` as `<path-suffix> <token>`"),
            )),
        }
    }
    entries
}

/// Scans one file's source text, pushing a diagnostic per forbidden
/// token occurrence not covered by the allowlist. `display_path` is
/// the path shown in spans and matched against allowlist suffixes
/// (always `/`-separated).
fn scan_source(
    display_path: &str,
    source: &str,
    allow: &mut [AllowEntry],
    out: &mut Vec<Diagnostic>,
) {
    for (line_no, raw) in source.lines().enumerate() {
        // Test modules sit at the end of each file (repo convention);
        // everything from `#[cfg(test)]` on is test-only code.
        if raw.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        // Strip line comments (this also drops doc comments, which may
        // legitimately *mention* HashMap).
        let code = raw.split("//").next().unwrap_or("");
        for &(token, why) in FORBIDDEN_TOKENS {
            if !code.contains(token) {
                continue;
            }
            let allowed = allow
                .iter_mut()
                .find(|entry| entry.token == token && display_path.ends_with(&entry.path_suffix));
            if let Some(entry) = allowed {
                entry.used = true;
            } else {
                out.push(Diagnostic::new(
                    Code::AuditForbiddenToken,
                    format!("{display_path}:{}", line_no + 1),
                    format!("`{token}`: {why}"),
                ));
            }
        }
    }
}

/// Collects the `.rs` files under `dir` (recursively), sorted for
/// stable diagnostic order.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut names: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    names.sort();
    for path in names {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scans every non-excluded crate's `src/` under `crates_root`,
/// displaying paths relative to `crates_root`.
fn scan_crates(crates_root: &Path, allow: &mut [AllowEntry], out: &mut Vec<Diagnostic>) {
    let crate_dirs = match fs::read_dir(crates_root) {
        Ok(iter) => {
            let mut dirs: Vec<PathBuf> = iter
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .filter(|p| {
                    let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
                    !EXCLUDED_CRATES.contains(&name)
                })
                .collect();
            dirs.sort();
            dirs
        }
        Err(err) => {
            out.push(Diagnostic::new(
                Code::AuditIo,
                crates_root.display().to_string(),
                format!("cannot read the crates directory: {err}"),
            ));
            return;
        }
    };

    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        if let Err(err) = rust_files(&src, &mut files) {
            out.push(Diagnostic::new(
                Code::AuditIo,
                src.display().to_string(),
                format!("cannot walk the source tree: {err}"),
            ));
            continue;
        }
        for file in files {
            let display: String = file
                .strip_prefix(crates_root)
                .unwrap_or(&file)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            match fs::read_to_string(&file) {
                Ok(source) => scan_source(&display, &source, allow, out),
                Err(err) => out.push(Diagnostic::new(
                    Code::AuditIo,
                    display,
                    format!("cannot read source file: {err}"),
                )),
            }
        }
    }
}

/// Scans one repo-root-relative directory (if it exists), displaying
/// paths relative to `repo_root` (e.g. `examples/quickstart.rs`).
fn scan_dir(repo_root: &Path, rel: &str, allow: &mut [AllowEntry], out: &mut Vec<Diagnostic>) {
    let dir = repo_root.join(rel);
    if !dir.is_dir() {
        return;
    }
    let mut files = Vec::new();
    if let Err(err) = rust_files(&dir, &mut files) {
        out.push(Diagnostic::new(
            Code::AuditIo,
            dir.display().to_string(),
            format!("cannot walk the source tree: {err}"),
        ));
        return;
    }
    for file in files {
        let display: String = file
            .strip_prefix(repo_root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        match fs::read_to_string(&file) {
            Ok(source) => scan_source(&display, &source, allow, out),
            Err(err) => out.push(Diagnostic::new(
                Code::AuditIo,
                display,
                format!("cannot read source file: {err}"),
            )),
        }
    }
}

/// Flags every allowlist entry no scanned line consumed.
fn report_unused(allow: &[AllowEntry], out: &mut Vec<Diagnostic>) {
    for entry in allow {
        if !entry.used {
            out.push(Diagnostic::new(
                Code::AuditUnusedAllow,
                format!("determinism-allow.txt:{}", entry.line),
                format!(
                    "allowlist entry `{} {}` matched nothing and should be removed",
                    entry.path_suffix, entry.token
                ),
            ));
        }
    }
}

/// Audits every non-excluded crate under `crates_root` (a `crates/`
/// directory) with the given allowlist text. Crates-only: the
/// repo-wide entry point is [`audit_repo`].
pub fn audit_tree_with_allowlist(crates_root: &Path, allowlist: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut allow = parse_allowlist(allowlist, &mut out);
    scan_crates(crates_root, &mut allow, &mut out);
    report_unused(&allow, &mut out);
    out
}

/// Audits `crates_root` with the committed allowlist.
pub fn audit_tree(crates_root: &Path) -> Vec<Diagnostic> {
    audit_tree_with_allowlist(crates_root, DEFAULT_ALLOWLIST)
}

/// Audits the whole repository — crate sources plus the examples,
/// bench binaries and facade crate — with the given allowlist text.
pub fn audit_repo_with_allowlist(repo_root: &Path, allowlist: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut allow = parse_allowlist(allowlist, &mut out);
    scan_crates(&repo_root.join("crates"), &mut allow, &mut out);
    for rel in EXTRA_SCAN_DIRS {
        scan_dir(repo_root, rel, &mut allow, &mut out);
    }
    report_unused(&allow, &mut out);
    out
}

/// Audits the whole repository with the committed allowlist — the CI
/// entry point.
pub fn audit_repo(repo_root: &Path) -> Vec<Diagnostic> {
    audit_repo_with_allowlist(repo_root, DEFAULT_ALLOWLIST)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn the_repo_tree_audits_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .unwrap();
        let diags = audit_repo(root);
        assert!(
            diags.is_empty(),
            "determinism audit failed:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn forbidden_tokens_fire_outside_tests_only() {
        let mut out = Vec::new();
        let source = "use std::collections::HashMap;\n\
                      let t = SystemTime::now(); // bad\n\
                      // a comment mentioning thread_rng is fine\n\
                      #[cfg(test)]\n\
                      mod tests { use std::collections::HashSet; }\n";
        scan_source("core/src/x.rs", source, &mut [], &mut out);
        assert_eq!(
            codes(&out),
            vec![Code::AuditForbiddenToken, Code::AuditForbiddenToken]
        );
        assert!(out[0].message.contains("HashMap"));
        assert_eq!(out[1].span, "core/src/x.rs:2");
        assert!(has_errors(&out));
    }

    #[test]
    fn sleep_and_os_entropy_tokens_fire() {
        let mut out = Vec::new();
        let source = "std::thread::sleep(d);\nlet mut rng = OsRng;\n";
        scan_source("core/src/x.rs", source, &mut [], &mut out);
        assert_eq!(
            codes(&out),
            vec![Code::AuditForbiddenToken, Code::AuditForbiddenToken]
        );
        assert!(out.iter().any(|d| d.message.contains("thread::sleep")));
        assert!(out.iter().any(|d| d.message.contains("OsRng")));
    }

    #[test]
    fn allowlist_suppresses_and_tracks_use() {
        let mut out = Vec::new();
        let mut allow = parse_allowlist(
            "core/src/x.rs HashMap # audited: deterministic hasher\n\
             core/src/y.rs SystemTime\n",
            &mut out,
        );
        assert!(out.is_empty());
        scan_source(
            "core/src/x.rs",
            "use std::collections::HashMap;\n",
            &mut allow,
            &mut out,
        );
        assert!(out.is_empty(), "allowlisted token still fired: {out:?}");
        assert!(allow[0].used);
        assert!(!allow[1].used);
    }

    #[test]
    fn malformed_allowlist_lines_are_errors() {
        let mut out = Vec::new();
        let entries = parse_allowlist("one-field-only\na b c\n# fine\n", &mut out);
        assert!(entries.is_empty());
        assert_eq!(
            codes(&out),
            vec![Code::AuditMalformedAllow, Code::AuditMalformedAllow]
        );
        assert_eq!(out[0].span, "determinism-allow.txt:1");
    }

    #[test]
    fn unused_allow_entries_and_unreadable_roots_are_reported() {
        let missing = Path::new("/nonexistent/certify-lint-audit");
        let diags = audit_tree_with_allowlist(missing, "ghost/src/z.rs HashMap\n");
        // An unreadable root is an I/O error, and the entry it never
        // scanned against still reports as unused.
        assert_eq!(codes(&diags), vec![Code::AuditIo, Code::AuditUnusedAllow]);

        let real = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
        let diags = audit_tree_with_allowlist(real, "ghost/src/z.rs HashMap\n");
        assert!(diags
            .iter()
            .any(|d| d.code == Code::AuditUnusedAllow && d.span == "determinism-allow.txt:1"));
    }
}

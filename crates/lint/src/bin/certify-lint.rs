//! `certify-lint` — run the static-analysis passes from the command
//! line (and from CI).
//!
//! ```text
//! certify-lint [all|specs|certify|schema|audit] [--json] [--root DIR]
//! certify-lint --write-schema
//! ```
//!
//! * `specs` lints every built-in scenario;
//! * `certify` abstractly interprets every built-in scenario and
//!   derives its pre-flight certificate (in text mode the certificate
//!   summaries are printed too);
//! * `schema` audits the wire-codec fingerprints against the golden
//!   table;
//! * `audit` runs the determinism source scan over the repository:
//!   `<root>/crates`, plus the examples, bench binaries and the
//!   facade crate;
//! * `all` (the default) runs all four;
//! * `--json` emits one JSON report object instead of text lines;
//! * `--root DIR` sets the repository root for the audit pass
//!   (default: the ambient working directory);
//! * `--write-schema` regenerates `crates/lint/schema.golden` under
//!   the root — a deliberate act after a wire-protocol version bump.
//!
//! Exit codes: `0` clean or warnings only, `1` at least one
//! error-severity diagnostic, `2` usage or I/O failure.

use certify_lint::{
    builtin_scenarios, certify_scenario, check_schema, current_schema, has_errors, lint_scenario,
    report_to_json, schema::render_schema, PassReport,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    pass: Pass,
    json: bool,
    root: PathBuf,
    write_schema: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    All,
    Specs,
    Certify,
    Schema,
    Audit,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: certify-lint [all|specs|certify|schema|audit] [--json] [--root DIR] \
         [--write-schema]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut options = Options {
        pass: Pass::All,
        json: false,
        root: PathBuf::from("."),
        write_schema: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => options.pass = Pass::All,
            "specs" => options.pass = Pass::Specs,
            "certify" => options.pass = Pass::Certify,
            "schema" => options.pass = Pass::Schema,
            "audit" => options.pass = Pass::Audit,
            "--json" => options.json = true,
            "--write-schema" => options.write_schema = true,
            "--root" => match args.next() {
                Some(dir) => options.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    Ok(options)
}

fn run_specs() -> PassReport {
    let mut diagnostics = Vec::new();
    for scenario in builtin_scenarios() {
        for mut diagnostic in lint_scenario(&scenario) {
            diagnostic.span = format!("{}: {}", scenario.name, diagnostic.span);
            diagnostics.push(diagnostic);
        }
    }
    PassReport {
        pass: "specs",
        diagnostics,
    }
}

fn run_certify(print_certificates: bool) -> PassReport {
    let mut diagnostics = Vec::new();
    for scenario in builtin_scenarios() {
        let (certificate, found) = certify_scenario(&scenario);
        if print_certificates {
            println!("certify: {certificate}");
        }
        for mut diagnostic in found {
            diagnostic.span = format!("{}: {}", scenario.name, diagnostic.span);
            diagnostics.push(diagnostic);
        }
    }
    PassReport {
        pass: "certify",
        diagnostics,
    }
}

fn run_schema() -> PassReport {
    PassReport {
        pass: "schema",
        diagnostics: check_schema(),
    }
}

fn run_audit(root: &std::path::Path) -> PassReport {
    PassReport {
        pass: "audit",
        diagnostics: certify_lint::audit_repo(root),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(code) => return code,
    };

    if options.write_schema {
        let path = options.root.join("crates/lint/schema.golden");
        let rendered = render_schema(&current_schema());
        return match std::fs::write(&path, rendered) {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("certify-lint: cannot write {}: {err}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let mut reports = Vec::new();
    if matches!(options.pass, Pass::All | Pass::Specs) {
        reports.push(run_specs());
    }
    if matches!(options.pass, Pass::All | Pass::Certify) {
        reports.push(run_certify(options.pass == Pass::Certify && !options.json));
    }
    if matches!(options.pass, Pass::All | Pass::Schema) {
        reports.push(run_schema());
    }
    if matches!(options.pass, Pass::All | Pass::Audit) {
        reports.push(run_audit(&options.root));
    }

    let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    let failed = reports.iter().any(|r| has_errors(&r.diagnostics));

    if options.json {
        println!("{}", report_to_json(&reports).render());
    } else {
        for report in &reports {
            for diagnostic in &report.diagnostics {
                println!("{}: {diagnostic}", report.pass);
            }
        }
        eprintln!(
            "certify-lint: {} pass(es), {total} finding(s), {}",
            reports.len(),
            if failed { "FAILED" } else { "ok" }
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

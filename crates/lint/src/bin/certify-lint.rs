//! `certify-lint` — run the static-analysis passes from the command
//! line (and from CI).
//!
//! ```text
//! certify-lint [all|specs|schema|audit] [--json] [--root DIR]
//! certify-lint --write-schema
//! ```
//!
//! * `specs` lints every built-in scenario;
//! * `schema` audits the wire-codec fingerprints against the golden
//!   table;
//! * `audit` runs the determinism source scan over `<root>/crates`;
//! * `all` (the default) runs all three;
//! * `--json` emits one JSON report object instead of text lines;
//! * `--root DIR` sets the repository root for the audit pass
//!   (default: the ambient working directory);
//! * `--write-schema` regenerates `crates/lint/schema.golden` under
//!   the root — a deliberate act after a wire-protocol version bump.
//!
//! Exit codes: `0` clean or warnings only, `1` at least one
//! error-severity diagnostic, `2` usage or I/O failure.

use certify_core::json::Json;
use certify_lint::{
    builtin_scenarios, check_schema, current_schema, diagnostics_to_json, has_errors,
    lint_scenario, schema::render_schema, Diagnostic,
};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    pass: Pass,
    json: bool,
    root: PathBuf,
    write_schema: bool,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Pass {
    All,
    Specs,
    Schema,
    Audit,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: certify-lint [all|specs|schema|audit] [--json] [--root DIR] [--write-schema]"
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut options = Options {
        pass: Pass::All,
        json: false,
        root: PathBuf::from("."),
        write_schema: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "all" => options.pass = Pass::All,
            "specs" => options.pass = Pass::Specs,
            "schema" => options.pass = Pass::Schema,
            "audit" => options.pass = Pass::Audit,
            "--json" => options.json = true,
            "--write-schema" => options.write_schema = true,
            "--root" => match args.next() {
                Some(dir) => options.root = PathBuf::from(dir),
                None => return Err(usage()),
            },
            _ => return Err(usage()),
        }
    }
    Ok(options)
}

/// One pass's findings, tagged for the report.
struct PassReport {
    pass: &'static str,
    diagnostics: Vec<Diagnostic>,
}

fn run_specs() -> PassReport {
    let mut diagnostics = Vec::new();
    for scenario in builtin_scenarios() {
        for mut diagnostic in lint_scenario(&scenario) {
            diagnostic.span = format!("{}: {}", scenario.name, diagnostic.span);
            diagnostics.push(diagnostic);
        }
    }
    PassReport {
        pass: "specs",
        diagnostics,
    }
}

fn run_schema() -> PassReport {
    PassReport {
        pass: "schema",
        diagnostics: check_schema(),
    }
}

fn run_audit(root: &std::path::Path) -> PassReport {
    PassReport {
        pass: "audit",
        diagnostics: certify_lint::audit_tree(&root.join("crates")),
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(code) => return code,
    };

    if options.write_schema {
        let path = options.root.join("crates/lint/schema.golden");
        let rendered = render_schema(&current_schema());
        return match std::fs::write(&path, rendered) {
            Ok(()) => {
                eprintln!("wrote {}", path.display());
                ExitCode::SUCCESS
            }
            Err(err) => {
                eprintln!("certify-lint: cannot write {}: {err}", path.display());
                ExitCode::from(2)
            }
        };
    }

    let mut reports = Vec::new();
    if matches!(options.pass, Pass::All | Pass::Specs) {
        reports.push(run_specs());
    }
    if matches!(options.pass, Pass::All | Pass::Schema) {
        reports.push(run_schema());
    }
    if matches!(options.pass, Pass::All | Pass::Audit) {
        reports.push(run_audit(&options.root));
    }

    let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    let failed = reports.iter().any(|r| has_errors(&r.diagnostics));

    if options.json {
        let report = Json::obj([
            (
                "passes",
                Json::Arr(
                    reports
                        .iter()
                        .map(|r| {
                            Json::obj([
                                ("pass", Json::str(r.pass)),
                                ("diagnostics", diagnostics_to_json(&r.diagnostics)),
                                ("errors", Json::Bool(has_errors(&r.diagnostics))),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("total", Json::U64(total as u64)),
            ("failed", Json::Bool(failed)),
        ]);
        println!("{}", report.render());
    } else {
        for report in &reports {
            for diagnostic in &report.diagnostics {
                println!("{}: {diagnostic}", report.pass);
            }
        }
        eprintln!(
            "certify-lint: {} pass(es), {total} finding(s), {}",
            reports.len(),
            if failed { "FAILED" } else { "ok" }
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! The certificate builder — pass four of `certify-lint`.
//!
//! [`certify_scenario`] runs the script abstract interpreter
//! ([`crate::interp`]) and derives a
//! [`certify_core::ScenarioCertificate`]: the derived cell/memory
//! topology, a sound over-approximation of the reachable
//! [`Outcome`] set, global and per-phase injection budgets, and the
//! fault-target footprint — plus whole-scenario `cert-*` diagnostics
//! the interpreter alone cannot see (monitor without a heartbeat,
//! cell-backed regions with no cell, windows the script never
//! survives to, provably-zero budgets).
//!
//! # The soundness contract
//!
//! For a scenario whose certificate carries **no diagnostics**, every
//! trial of every seed satisfies:
//!
//! * the observed outcome is a member of the predicted set;
//! * the register-injection count is at most the register budget;
//! * the memory-injection count is at most the memory budget;
//! * every applied memory fault lands in a tracked region.
//!
//! Predictions are over-approximations: the certificate may predict
//! outcomes no seed produces, and budgets are upper bounds derived
//! from the cadence arithmetic of the concrete injectors (a fire needs
//! `rate` filtered calls; a step produces at most
//! [`MAX_HANDLER_CALLS_PER_STEP`] calls per eligible CPU; phase jitter
//! shifts, never shrinks, the cadence). The runtime side —
//! [`certify_core::ConformanceMonitor`] and the sharded worker —
//! enforces the contract trial by trial.

use crate::diagnostic::{Code, Diagnostic};
use crate::interp::interpret_script;
use crate::spec::MAX_HANDLER_CALLS_PER_STEP;
use certify_board::Machine;
use certify_core::campaign::Scenario;
use certify_core::certificate::{PhaseBound, ScenarioCertificate};
use certify_core::classify::Outcome;
use certify_core::memfault::{MemFaultModel, MemRegionKind};
use certify_core::spec::InjectionWindow;
use std::collections::BTreeSet;

/// Upper bound on injections a cadence can fire given at most `calls`
/// filtered handler calls. Without jitter the counter starts at zero
/// and fires on every multiple of `rate`; with jitter it starts at a
/// phase in `[0, rate)`, which can only pull the first fire earlier —
/// `ceil` absorbs that.
fn fires_bound(calls: u64, rate: u64, jitter: bool) -> u64 {
    if rate == 0 {
        return 0; // spec-zero-rate is already an error; the engine rejects it
    }
    if jitter {
        calls.div_ceil(rate)
    } else {
        calls / rate
    }
}

/// The live (partially in-horizon) windows, end-clamped to the trial
/// horizon.
fn live_windows(windows: &[InjectionWindow], steps: u64) -> Vec<(u64, u64)> {
    windows
        .iter()
        .filter(|w| w.start < steps && w.start < w.end)
        .map(|w| (w.start, w.end.min(steps)))
        .collect()
}

/// Budget and per-phase bounds for one injector domain (register or
/// memory — the cadence arithmetic is shared).
struct DomainBounds {
    budget: u64,
    /// The budget before `max_injections` caps it. A zero here means
    /// the *cadence itself* can never fire — an error — whereas an
    /// explicit zero cap is the existing warning-level
    /// `spec-zero-injection-cap` finding.
    uncapped: u64,
    phases: Vec<PhaseBound>,
}

#[allow(clippy::too_many_arguments)]
fn cadence_bounds(
    steps: u64,
    per_step_calls: u64,
    rate: u64,
    jitter: bool,
    time_trigger: Option<u64>,
    max_injections: Option<u64>,
    windows: &[InjectionWindow],
) -> DomainBounds {
    let capacity = steps.saturating_mul(per_step_calls);
    let horizon_bound = match time_trigger {
        // A fire re-arms the deadline `period` steps out, so fires are
        // at least `period` steps apart; each also consumes a call.
        Some(period) if period > 0 => {
            let by_period = if steps == 0 {
                0
            } else {
                (steps - 1) / period + 1
            };
            by_period.min(capacity)
        }
        Some(_) => capacity, // period 0 is an error elsewhere
        None => fires_bound(capacity, rate, jitter),
    };

    let live = live_windows(windows, steps);
    let window_fires = |start: u64, end: u64| -> u64 {
        match time_trigger {
            Some(period) if period > 0 => (end - start - 1) / period + 1,
            Some(_) => (end - start).saturating_mul(per_step_calls),
            // Fires inside the window are numbered at most by the
            // total calls accumulated by its end.
            None => fires_bound(end.saturating_mul(per_step_calls), rate, jitter),
        }
    };

    let mut uncapped = horizon_bound;
    if !windows.is_empty() {
        uncapped = uncapped.min(live.iter().map(|&(s, e)| window_fires(s, e)).sum());
    }
    let mut budget = uncapped;
    if let Some(cap) = max_injections {
        budget = budget.min(cap);
    }

    let phases = if windows.is_empty() {
        if steps == 0 {
            Vec::new()
        } else {
            vec![PhaseBound {
                start: 0,
                end: steps,
                max_handler_calls: capacity,
                max_injections: budget,
            }]
        }
    } else {
        live.iter()
            .map(|&(start, end)| PhaseBound {
                start,
                end,
                max_handler_calls: (end - start).saturating_mul(per_step_calls),
                max_injections: window_fires(start, end).min(budget),
            })
            .collect()
    };

    DomainBounds {
        budget,
        uncapped,
        phases,
    }
}

/// Whether a region is backed by the non-root cell in the derived
/// topology: faults there are physically applicable, but with no cell
/// in the scenario nothing ever reads the corrupted memory.
fn region_is_cell_backed(region: MemRegionKind) -> bool {
    matches!(
        region,
        MemRegionKind::NonRootRam
            | MemRegionKind::CommRegion
            | MemRegionKind::Stage2Tables
            | MemRegionKind::Ivshmem
    )
}

/// Abstractly interpret `scenario` and derive its pre-flight
/// certificate plus any `cert-*` diagnostics.
///
/// The certificate is always produced — for a scenario with
/// error-severity diagnostics it is still well-formed, but the
/// soundness contract (see the module docs) is only promised when the
/// diagnostic list is clean.
pub fn certify_scenario(scenario: &Scenario) -> (ScenarioCertificate, Vec<Diagnostic>) {
    let (facts, mut diagnostics) = interpret_script(&scenario.script);
    let cpus = Machine::new_banana_pi().num_cpus() as u64;

    if facts.monitor_reachable && !scenario.rtos_heartbeat {
        diagnostics.push(Diagnostic::new(
            Code::CertMonitorWithoutHeartbeat,
            "script",
            "the script runs the heartbeat monitor but rtos_heartbeat is off: every \
             monitored window is a guaranteed alarm",
        ));
    }

    let mut outcomes = BTreeSet::new();
    outcomes.insert(Outcome::Correct);
    // The classifier's invalid-arguments branch needs a failed
    // enable/create in the management record.
    let mgmt_refusal_possible = facts.enable_reachable || facts.cell_reachable;

    let mut reg_budget = None;
    let mut reg_phases = Vec::new();
    if let Some(spec) = &scenario.spec {
        let per_step =
            if spec.cpu_filter.is_some() { 1 } else { cpus } * MAX_HANDLER_CALLS_PER_STEP;
        let bounds = cadence_bounds(
            scenario.steps,
            per_step,
            spec.rate,
            spec.phase_jitter,
            spec.time_trigger,
            spec.max_injections,
            &spec.windows,
        );
        if bounds.uncapped == 0 {
            diagnostics.push(Diagnostic::new(
                Code::CertZeroBudget,
                "spec",
                "the certified register-injection budget is zero: no cadence fire \
                 fits the horizon, windows and cap",
            ));
        }
        check_script_outlives_windows(scenario, &facts, &spec.windows, "spec", &mut diagnostics);
        reg_budget = Some(bounds.budget);
        reg_phases = bounds.phases;
        outcomes.extend([
            Outcome::PanicPark,
            Outcome::InconsistentState,
            Outcome::CpuPark,
        ]);
        if mgmt_refusal_possible {
            outcomes.insert(Outcome::InvalidArguments);
        }
    }

    let mut mem_budget = None;
    let mut mem_phases = Vec::new();
    let mut tracked_regions = BTreeSet::new();
    if let Some(mem) = &scenario.mem_spec {
        let per_step = if mem.cpu_filter.is_some() { 1 } else { cpus } * MAX_HANDLER_CALLS_PER_STEP;
        let bounds = cadence_bounds(
            scenario.steps,
            per_step,
            mem.rate,
            mem.phase_jitter,
            None,
            mem.max_injections,
            &mem.windows,
        );
        if bounds.uncapped == 0 {
            diagnostics.push(Diagnostic::new(
                Code::CertZeroBudget,
                "mem_spec",
                "the certified memory-injection budget is zero: no cadence fire fits \
                 the horizon, windows and cap",
            ));
        }
        check_script_outlives_windows(scenario, &facts, &mem.windows, "mem_spec", &mut diagnostics);
        mem_budget = Some(bounds.budget);
        mem_phases = bounds.phases;

        for (index, &region) in mem.target.regions().iter().enumerate() {
            tracked_regions.insert(region);
            if region_is_cell_backed(region) && !facts.cell_reachable {
                diagnostics.push(Diagnostic::new(
                    Code::CertRegionUnmapped,
                    format!("mem_spec.target.regions[{index}]"),
                    format!(
                        "{region:?} is cell-backed in the derived topology but the \
                         script never creates the cell: corruption there is \
                         unobservable"
                    ),
                ));
            }
        }
        if matches!(mem.model, MemFaultModel::CommStateCorrupt) {
            // The comm-state model always lands in the comm region,
            // whatever the sampler says.
            tracked_regions.insert(MemRegionKind::CommRegion);
        }

        outcomes.extend([
            Outcome::PanicPark,
            Outcome::InconsistentState,
            Outcome::CpuPark,
            Outcome::SilentDataCorruption,
        ]);
        if mgmt_refusal_possible {
            outcomes.insert(Outcome::InvalidArguments);
        }
        let descriptor_path = matches!(mem.model, MemFaultModel::DescriptorInvalidate)
            || mem.target.regions().contains(&MemRegionKind::Stage2Tables);
        if descriptor_path {
            outcomes.insert(Outcome::TranslationFaultStorm);
        }
    }

    let certificate = ScenarioCertificate {
        scenario_name: scenario.name.clone(),
        cell_reachable: facts.cell_reachable,
        script_steps: if facts.loops {
            None
        } else {
            Some(facts.steps_consumed)
        },
        outcomes,
        reg_budget,
        mem_budget,
        tracked_regions,
        reg_phases,
        mem_phases,
    };
    (certificate, diagnostics)
}

/// Warn when a non-looping script goes quiet before the earliest live
/// window even opens: only idle background traffic can drive the
/// cadence inside the window.
fn check_script_outlives_windows(
    scenario: &Scenario,
    facts: &crate::interp::AbstractScript,
    windows: &[InjectionWindow],
    span: &str,
    diagnostics: &mut Vec<Diagnostic>,
) {
    if facts.loops || windows.is_empty() {
        return;
    }
    let Some(earliest) = live_windows(windows, scenario.steps)
        .iter()
        .map(|&(start, _)| start)
        .min()
    else {
        return;
    };
    if facts.steps_consumed < earliest {
        diagnostics.push(Diagnostic::new(
            Code::CertScriptEndsBeforeWindow,
            format!("{span}.windows"),
            format!(
                "the script goes quiet around step {} but the earliest live window \
                 opens at {}",
                facts.steps_consumed, earliest
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin_scenarios;
    use certify_core::memfault::MemTarget;

    fn codes(diagnostics: &[Diagnostic]) -> Vec<Code> {
        diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn every_builtin_scenario_certifies_clean() {
        for scenario in builtin_scenarios() {
            let (certificate, diagnostics) = certify_scenario(&scenario);
            assert!(
                diagnostics.is_empty(),
                "{}: {:?}",
                scenario.name,
                codes(&diagnostics)
            );
            assert!(certificate.outcomes.contains(&Outcome::Correct));
            assert_eq!(certificate.scenario_name, scenario.name);
        }
    }

    #[test]
    fn golden_certificate_predicts_only_correct() {
        let (certificate, _) = certify_scenario(&Scenario::golden(1500));
        assert_eq!(
            certificate.outcomes.iter().copied().collect::<Vec<_>>(),
            vec![Outcome::Correct]
        );
        assert_eq!(certificate.reg_budget, None);
        assert_eq!(certificate.mem_budget, None);
        assert!(certificate.tracked_regions.is_empty());
        assert!(certificate.cell_reachable);
    }

    #[test]
    fn register_budget_follows_the_cadence_arithmetic() {
        // e3: CPU-filtered (1 CPU), rate 100, no windows or cap.
        let scenario = Scenario::e3_fig3();
        let (certificate, _) = certify_scenario(&scenario);
        let capacity = scenario.steps * MAX_HANDLER_CALLS_PER_STEP;
        assert_eq!(certificate.reg_budget, Some(capacity / 100));
        assert_eq!(certificate.reg_phases.len(), 1);
        assert_eq!(certificate.reg_phases[0].max_handler_calls, capacity);
    }

    #[test]
    fn max_injections_caps_the_budget() {
        let (certificate, _) = certify_scenario(&Scenario::e2_boot_window());
        assert_eq!(certificate.reg_budget, Some(1));
    }

    #[test]
    fn windows_shrink_budget_and_phases() {
        let mut scenario = Scenario::e3_fig3();
        let spec = scenario.spec.as_mut().unwrap();
        spec.windows = vec![
            InjectionWindow::new(0, 1000),
            InjectionWindow::new(2000, u64::MAX),
        ];
        let (certificate, diagnostics) = certify_scenario(&scenario);
        assert!(diagnostics.is_empty(), "{:?}", codes(&diagnostics));
        let phases = &certificate.reg_phases;
        assert_eq!(phases.len(), 2);
        assert_eq!((phases[0].start, phases[0].end), (0, 1000));
        assert_eq!((phases[1].start, phases[1].end), (2000, scenario.steps));
        // Window fires are bounded by calls accumulated by window end.
        assert_eq!(phases[0].max_injections, 1000 * 8 / 100);
        assert!(certificate.reg_budget.unwrap() <= 4500 * 8 / 100);
    }

    #[test]
    fn a_window_too_short_to_fire_is_a_zero_budget_error() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(0, 2)];
        let (certificate, diagnostics) = certify_scenario(&scenario);
        assert_eq!(certificate.reg_budget, Some(0));
        assert!(codes(&diagnostics).contains(&Code::CertZeroBudget));
    }

    #[test]
    fn time_trigger_budget_is_period_based() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().time_trigger = Some(500);
        let (certificate, _) = certify_scenario(&scenario);
        assert_eq!(certificate.reg_budget, Some((scenario.steps - 1) / 500 + 1));
    }

    #[test]
    fn memory_certificates_track_regions_and_predict_storms() {
        let scenario = Scenario::e6_memory(
            MemFaultModel::DescriptorInvalidate,
            MemTarget::only(MemRegionKind::RootRam),
        );
        let (certificate, diagnostics) = certify_scenario(&scenario);
        assert!(diagnostics.is_empty(), "{:?}", codes(&diagnostics));
        assert!(certificate
            .outcomes
            .contains(&Outcome::TranslationFaultStorm));
        assert!(certificate
            .outcomes
            .contains(&Outcome::SilentDataCorruption));
        assert!(certificate
            .tracked_regions
            .contains(&MemRegionKind::RootRam));

        // A plain word model away from the stage-2 tables cannot storm.
        let scenario = Scenario::e6_memory(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::RootRam),
        );
        let (certificate, _) = certify_scenario(&scenario);
        assert!(!certificate
            .outcomes
            .contains(&Outcome::TranslationFaultStorm));
    }

    #[test]
    fn comm_state_corrupt_always_tracks_the_comm_region() {
        let scenario = Scenario::e6_memory(
            MemFaultModel::CommStateCorrupt,
            MemTarget::only(MemRegionKind::RootRam),
        );
        let (certificate, _) = certify_scenario(&scenario);
        assert!(certificate
            .tracked_regions
            .contains(&MemRegionKind::CommRegion));
        assert!(certificate
            .tracked_regions
            .contains(&MemRegionKind::RootRam));
    }

    #[test]
    fn cell_backed_regions_without_a_cell_warn() {
        let mut scenario = Scenario::e6_memory(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(MemRegionKind::CommRegion),
        );
        scenario.script = certify_guest_linux::MgmtScript::enable_attempt(10);
        let (certificate, diagnostics) = certify_scenario(&scenario);
        assert!(!certificate.cell_reachable);
        assert!(codes(&diagnostics).contains(&Code::CertRegionUnmapped));
    }

    #[test]
    fn monitor_without_heartbeat_warns() {
        let mut scenario = Scenario::e5b_monitor();
        scenario.rtos_heartbeat = false;
        let (_, diagnostics) = certify_scenario(&scenario);
        assert!(codes(&diagnostics).contains(&Code::CertMonitorWithoutHeartbeat));
    }

    #[test]
    fn scripts_quieter_than_their_windows_warn() {
        let mut scenario = Scenario::e3_fig3();
        scenario.script = certify_guest_linux::MgmtScript::bring_up_and_run(100);
        scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(3000, 4000)];
        let (_, diagnostics) = certify_scenario(&scenario);
        assert!(codes(&diagnostics).contains(&Code::CertScriptEndsBeforeWindow));
    }

    #[test]
    fn looping_scripts_have_no_step_bound() {
        let (certificate, diagnostics) = certify_scenario(&Scenario::e2_nonroot_high());
        assert!(diagnostics.is_empty(), "{:?}", codes(&diagnostics));
        assert_eq!(certificate.script_steps, None);
    }

    #[test]
    fn unfiltered_specs_use_every_cpu_for_capacity() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().cpu_filter = None;
        let (certificate, _) = certify_scenario(&scenario);
        let cpus = Machine::new_banana_pi().num_cpus() as u64;
        assert_eq!(
            certificate.reg_budget,
            Some(scenario.steps * cpus * MAX_HANDLER_CALLS_PER_STEP / 100)
        );
    }

    #[test]
    fn fires_bound_is_monotone_and_jitter_rounds_up() {
        assert_eq!(fires_bound(0, 100, false), 0);
        assert_eq!(fires_bound(99, 100, false), 0);
        assert_eq!(fires_bound(99, 100, true), 1);
        assert_eq!(fires_bound(200, 100, false), 2);
        assert_eq!(fires_bound(200, 100, true), 2);
        assert_eq!(fires_bound(100, 0, true), 0);
    }
}

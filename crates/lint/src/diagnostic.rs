//! The structured diagnostic every lint pass emits.
//!
//! A [`Diagnostic`] names *what* rule fired ([`Code`], a stable
//! machine-readable identifier), *how bad* it is ([`Severity`]) and
//! *where* (a span string — a scenario field path like
//! `mem_spec.target.regions[1]` for spec lints, a `file:line` location
//! for source audits). Severity is canonical per code: callers gate on
//! [`Severity::Error`] (the coordinator refuses the handshake, CI
//! fails the build) and surface [`Severity::Warning`] as advice.

use certify_core::json::Json;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable: the campaign executes, though parts of
    /// the spec are dead weight or guarantee skipped injections.
    Warning,
    /// The spec (or schema, or source tree) is broken: a campaign run
    /// from it would be silently meaningless or the build is unsound.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

macro_rules! codes {
    ($( $variant:ident = ($str:literal, $severity:ident, $doc:literal) ),* $(,)?) => {
        /// Stable identifiers for every rule a lint pass can fire.
        ///
        /// The string form ([`Code::as_str`]) is part of the tool's
        /// output contract (JSON reports, CI logs, the README table);
        /// renaming one is a breaking change.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub enum Code {
            $(#[doc = $doc] $variant,)*
        }

        impl Code {
            /// Every code, in declaration order.
            pub const ALL: &'static [Code] = &[$(Code::$variant,)*];

            /// The stable string identifier.
            pub fn as_str(self) -> &'static str {
                match self { $(Code::$variant => $str,)* }
            }

            /// The canonical severity of this rule.
            pub fn severity(self) -> Severity {
                match self { $(Code::$variant => Severity::$severity,)* }
            }

            /// What the rule checks (the README table's description).
            pub fn describe(self) -> &'static str {
                match self { $(Code::$variant => $doc,)* }
            }
        }
    };
}

codes! {
    // -- scenario / spec analyzer -----------------------------------
    SpecZeroSteps = ("spec-zero-steps", Error,
        "The scenario's trial horizon is zero steps: no trial can observe anything."),
    SpecEmptyTargets = ("spec-empty-targets", Error,
        "An injection spec targets no handlers: its cadence can never advance."),
    SpecZeroRate = ("spec-zero-rate", Error,
        "An injection rate of zero can never fire (the engine builders reject it too)."),
    SpecUnsatisfiableRate = ("spec-unsatisfiable-rate", Error,
        "The rate exceeds every plausible filtered-call count for the trial horizon: \
         no injection can ever fire."),
    SpecZeroTimeTrigger = ("spec-zero-time-trigger", Error,
        "A time-trigger period of zero is rejected by the engine."),
    SpecLateTimeTrigger = ("spec-late-time-trigger", Error,
        "The time-trigger period is at least the trial horizon: the trigger never fires."),
    SpecCpuOutOfRange = ("spec-cpu-out-of-range", Error,
        "The CPU filter names a CPU the platform does not have: no call ever matches."),
    SpecZeroInjectionCap = ("spec-zero-injection-cap", Warning,
        "max_injections is zero: the spec is armed but can never inject."),
    WindowInverted = ("window-inverted", Error,
        "An injection window's start is not before its end (the builders reject this too)."),
    WindowDead = ("window-dead", Warning,
        "An injection window opens at or after the trial horizon: it never arms."),
    WindowAllDead = ("window-all-dead", Error,
        "Every window of a non-empty window list is dead or inverted: the spec never arms."),
    WindowOverlap = ("window-overlap", Warning,
        "Two injection windows overlap: legal, but the overlap is redundant."),
    MemEmptyRegions = ("mem-empty-regions", Error,
        "A memory target samples from no regions."),
    MemRegionTooSmall = ("mem-region-too-small", Error,
        "A target region spans fewer than four bytes: no 32-bit word fits."),
    MemRegionWraps = ("mem-region-wraps", Error,
        "A target region wraps the 32-bit address space."),
    MemRegionOutsideRam = ("mem-region-outside-ram", Warning,
        "A RAM-word target region lies entirely outside DRAM: every sample there is a \
         guaranteed skipped injection."),
    MemRegionStraddlesRam = ("mem-region-straddles-ram", Warning,
        "A RAM-word target region partly leaves DRAM: samples there may skip."),
    MemNoVictimCell = ("mem-no-victim-cell", Warning,
        "The model needs a non-root victim cell but the script never creates one: every \
         descriptor attack is a guaranteed skipped injection."),
    ScriptEmpty = ("script-empty", Warning,
        "The management script has no operations: the root workload does nothing."),
    ScriptRestartOutOfBounds = ("script-restart-out-of-bounds", Warning,
        "A restart op jumps past the end of the script, which silently ends it."),
    MixedPhaseLock = ("mixed-phase-lock", Warning,
        "Register and memory specs share targets, CPU filter and rate with no phase \
         jitter: both injectors fire on exactly the same calls."),
    // -- shard partitions -------------------------------------------
    PartitionEmptyRange = ("partition-empty-range", Warning,
        "A shard range covers zero trials: the worker is spawned for nothing."),
    PartitionOverlap = ("partition-overlap", Error,
        "A shard range re-covers trials of an earlier range: rows would collide."),
    PartitionGap = ("partition-gap", Error,
        "The shard ranges leave trials of the campaign uncovered."),
    PartitionOutOfBounds = ("partition-out-of-bounds", Error,
        "A shard range extends past the campaign's trial space."),
    // -- codec schema auditor ---------------------------------------
    SchemaMismatch = ("schema-mismatch", Error,
        "A wire type's canonical encoding no longer matches its golden fingerprint: tag \
         layout, field order or width changed — a cross-version protocol break."),
    SchemaMissingGolden = ("schema-missing-golden", Error,
        "A wire type has no golden fingerprint: regenerate the schema table."),
    SchemaUnknownGolden = ("schema-unknown-golden", Error,
        "The golden table pins a witness the current code no longer produces."),
    SchemaMalformedGolden = ("schema-malformed-golden", Error,
        "A golden-table line is unparseable."),
    // -- determinism source audit -----------------------------------
    AuditForbiddenToken = ("audit-forbidden-token", Error,
        "A trial-hot-path source file uses a known nondeterminism source (seeded-hash \
         containers, wall clocks, OS entropy, ambient environment reads)."),
    AuditUnusedAllow = ("audit-unused-allow", Warning,
        "An allowlist entry matched nothing: it is stale and should be removed."),
    AuditMalformedAllow = ("audit-malformed-allow", Error,
        "An allowlist line is unparseable."),
    AuditIo = ("audit-io", Error,
        "The source tree could not be read."),
    // -- certificate interpreter ------------------------------------
    CertCellOpWithoutEnable = ("cert-cell-op-without-enable", Error,
        "The script reaches a cell create before any enable: the hypervisor cannot \
         service the operation."),
    CertCellOpWithoutCreate = ("cert-cell-op-without-create", Error,
        "The script reaches a cell load/start/shutdown/destroy while no created cell \
         exists on any path to it."),
    CertDoubleCreate = ("cert-double-create", Warning,
        "The script reaches a second cell create while the first cell still exists."),
    CertStartWithoutLoad = ("cert-start-without-load", Warning,
        "The script starts the cell without loading an image since its creation: the \
         guest enters at whatever the cell RAM happens to contain."),
    CertWaitWithoutOffline = ("cert-wait-without-offline", Warning,
        "The script waits for a CPU to park without having requested it offline: the \
         wait polls forever against a CPU that never parks."),
    CertUnreachableOp = ("cert-unreachable-op", Warning,
        "A script operation can never execute: the symbolic walk never reaches it."),
    CertMonitorWithoutHeartbeat = ("cert-monitor-without-heartbeat", Warning,
        "The script runs the heartbeat safety monitor but the RTOS workload publishes \
         no heartbeat: every monitored window is a guaranteed alarm."),
    CertRegionUnmapped = ("cert-region-unmapped", Warning,
        "A memory target region is cell-backed in the derived topology but the script \
         never creates the cell: corruption there is unobservable by any guest."),
    CertScriptEndsBeforeWindow = ("cert-script-ends-before-window", Warning,
        "The script goes quiet before the earliest injection window opens: only idle \
         background traffic can drive the cadence inside it."),
    CertZeroBudget = ("cert-zero-budget", Error,
        "The certified injection budget is zero: the abstract interpreter proves no \
         injection can ever fire."),
}

/// One finding of a lint pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Canonical severity of [`Diagnostic::code`].
    pub severity: Severity,
    /// Which rule fired.
    pub code: Code,
    /// Where: a scenario field path (`spec.windows[1]`), a partition
    /// index (`partition[2]`), a witness name, or `file:line`.
    pub span: String,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// A diagnostic for `code` at `span`, with the code's canonical
    /// severity.
    pub fn new(code: Code, span: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: code.severity(),
            code,
            span: span.into(),
            message: message.into(),
        }
    }

    /// This diagnostic as a JSON object (for `certify-lint --json`).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("severity", Json::str(self.severity.to_string())),
            ("code", Json::str(self.code.as_str())),
            ("span", Json::str(self.span.clone())),
            ("message", Json::str(self.message.clone())),
        ])
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity,
            self.code.as_str(),
            self.span,
            self.message
        )
    }
}

/// Whether any diagnostic is [`Severity::Error`] — the gate the
/// coordinator, the worker handshake and CI all use.
pub fn has_errors(diagnostics: &[Diagnostic]) -> bool {
    diagnostics.iter().any(|d| d.severity == Severity::Error)
}

/// A diagnostic list as a JSON array.
pub fn diagnostics_to_json(diagnostics: &[Diagnostic]) -> Json {
    Json::Arr(diagnostics.iter().map(Diagnostic::to_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_strings_are_unique_and_kebab() {
        let mut seen = std::collections::BTreeSet::new();
        for &code in Code::ALL {
            let s = code.as_str();
            assert!(seen.insert(s), "duplicate code string {s}");
            assert!(
                s.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{s} is not kebab-case"
            );
            assert!(!code.describe().is_empty());
        }
    }

    #[test]
    fn display_and_json_carry_the_code() {
        let d = Diagnostic::new(Code::SpecZeroRate, "spec.rate", "rate is zero");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(
            d.to_string(),
            "error[spec-zero-rate] spec.rate: rate is zero"
        );
        assert_eq!(
            d.to_json().render(),
            "{\"severity\":\"error\",\"code\":\"spec-zero-rate\",\
             \"span\":\"spec.rate\",\"message\":\"rate is zero\"}"
        );
    }

    #[test]
    fn error_gate_ignores_warnings() {
        let warn = Diagnostic::new(Code::WindowDead, "spec.windows[0]", "dead");
        let err = Diagnostic::new(Code::WindowAllDead, "spec.windows", "all dead");
        assert!(!has_errors(std::slice::from_ref(&warn)));
        assert!(has_errors(&[warn, err]));
        assert!(!has_errors(&[]));
    }
}

//! The script abstract interpreter — a symbolic walk of a
//! [`MgmtScript`] against an abstract machine model.
//!
//! The concrete driver ([`certify_guest_linux`]'s root guest) executes
//! scripts with *no data-dependent branches*: every op has exactly one
//! successor (`pc + 1`, a `Restart` target, or termination). That makes
//! the abstract walk exact on control flow: we execute each reachable
//! op once over an abstract state (hypervisor enabled?, cell created?,
//! image loaded?, which CPUs were offlined?) and stop the moment an op
//! is revisited — from there on the script provably loops forever.
//!
//! The walk yields two things:
//!
//! * an [`AbstractScript`] — the facts the certificate builder
//!   ([`crate::certificate`]) needs: reachability of `enable`,
//!   `cell_create`, the monitor and the watchdog, plus a lower-bound
//!   estimate of the step at which a non-looping script goes quiet;
//! * script-shape diagnostics (`cert-*` codes) for operations that are
//!   unreachable or reached in a state where the concrete driver's
//!   hypercall is guaranteed to fail or spin.

use crate::diagnostic::{Code, Diagnostic};
use certify_guest_linux::{MgmtOp, MgmtScript};
use std::collections::BTreeSet;

/// The facts a symbolic walk of a script establishes.
///
/// "Reachable" always means *reachable by the walk*, which — because
/// script control flow is deterministic — coincides with "executed by
/// every concrete trial" (up to hypercall failures, which never change
/// the driver's control flow).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractScript {
    /// Lower-bound estimate of the step at which the script goes
    /// quiet: explicit durations (`delay`, `run_for`, `monitor_for`)
    /// plus one step per other executed op. Meaningless when
    /// [`AbstractScript::loops`] is set.
    pub steps_consumed: u64,
    /// The walk revisited an op: the script provably never ends.
    pub loops: bool,
    /// `enable` is reachable.
    pub enable_reachable: bool,
    /// `cell_create` is reachable: the derived topology contains the
    /// non-root cell and its memory regions.
    pub cell_reachable: bool,
    /// The heartbeat safety monitor (`monitor_for`) is reachable.
    pub monitor_reachable: bool,
    /// `arm_watchdog` is reachable.
    pub watchdog_reachable: bool,
}

/// Symbolically execute `script`, returning the derived facts and any
/// script-shape diagnostics. Spans use the `script.ops[i]` form the
/// spec analyzer also uses.
pub fn interpret_script(script: &MgmtScript) -> (AbstractScript, Vec<Diagnostic>) {
    let mut diagnostics = Vec::new();
    let mut facts = AbstractScript {
        steps_consumed: 0,
        loops: false,
        enable_reachable: false,
        cell_reachable: false,
        monitor_reachable: false,
        watchdog_reachable: false,
    };

    // The abstract machine state the ops transform.
    let mut hv_enabled = false;
    let mut cell_exists = false;
    let mut cell_loaded = false;
    let mut offline: BTreeSet<u32> = BTreeSet::new();

    let mut visited = vec![false; script.ops.len()];
    let mut pc = 0usize;
    // Runs until the walk falls off the end (or a restart jumps past
    // it), halts, or revisits an op.
    while let Some(&op) = script.ops.get(pc) {
        if visited[pc] {
            facts.loops = true;
            break;
        }
        visited[pc] = true;
        let span = format!("script.ops[{pc}]");
        let mut next = pc + 1;
        match op {
            MgmtOp::Delay(n) | MgmtOp::RunFor(n) => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(n);
            }
            MgmtOp::MonitorFor { steps, .. } => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(steps);
                facts.monitor_reachable = true;
            }
            MgmtOp::PollInfo | MgmtOp::StageSystemConfig | MgmtOp::StageCellConfig => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
            }
            MgmtOp::Enable => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                hv_enabled = true;
                facts.enable_reachable = true;
            }
            MgmtOp::RequestCpuOffline(cpu) => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                offline.insert(cpu);
            }
            MgmtOp::WaitCpuParked(cpu) => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                if !offline.contains(&cpu) {
                    diagnostics.push(Diagnostic::new(
                        Code::CertWaitWithoutOffline,
                        span,
                        format!(
                            "waits for CPU {cpu} to park but no prior op requested it \
                             offline: the poll can never succeed"
                        ),
                    ));
                }
            }
            MgmtOp::CreateCell => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                if !hv_enabled {
                    diagnostics.push(Diagnostic::new(
                        Code::CertCellOpWithoutEnable,
                        span,
                        "cell_create is reached before any enable: the hypervisor is \
                         off and must reject it"
                            .to_string(),
                    ));
                } else if cell_exists {
                    diagnostics.push(Diagnostic::new(
                        Code::CertDoubleCreate,
                        span,
                        "cell_create is reached while the cell from an earlier create \
                         still exists"
                            .to_string(),
                    ));
                }
                cell_exists = true;
                cell_loaded = false;
                facts.cell_reachable = true;
            }
            MgmtOp::LoadCell | MgmtOp::StartCell | MgmtOp::ShutdownCell | MgmtOp::DestroyCell => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                if !cell_exists {
                    diagnostics.push(Diagnostic::new(
                        Code::CertCellOpWithoutCreate,
                        span,
                        format!("{op} is reached while no created cell exists"),
                    ));
                } else if matches!(op, MgmtOp::StartCell) && !cell_loaded {
                    diagnostics.push(Diagnostic::new(
                        Code::CertStartWithoutLoad,
                        span,
                        "cell_start is reached with no cell_set_loadable since the \
                         create: the guest image was never loaded"
                            .to_string(),
                    ));
                }
                match op {
                    MgmtOp::LoadCell => cell_loaded = true,
                    MgmtOp::DestroyCell => {
                        cell_exists = false;
                        cell_loaded = false;
                    }
                    _ => {}
                }
            }
            MgmtOp::QueryCellState => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
            }
            MgmtOp::ArmWatchdog => {
                facts.steps_consumed = facts.steps_consumed.saturating_add(1);
                facts.watchdog_reachable = true;
            }
            MgmtOp::Restart(target) => {
                // The concrete driver clamps an out-of-range target to
                // "end of script" (the existing
                // script-restart-out-of-bounds lint warns about that).
                next = target.min(script.ops.len());
            }
            MgmtOp::Halt => break,
        }
        pc = next;
    }

    for (index, reached) in visited.iter().enumerate() {
        if !reached {
            diagnostics.push(Diagnostic::new(
                Code::CertUnreachableOp,
                format!("script.ops[{index}]"),
                format!(
                    "`{}` can never execute: the walk ends before reaching it",
                    script.ops[index]
                ),
            ));
        }
    }

    (facts, diagnostics)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diagnostics: &[Diagnostic]) -> Vec<Code> {
        diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn stock_scripts_walk_clean() {
        for script in [
            MgmtScript::enable_attempt(49),
            MgmtScript::bring_up_and_run(1000),
            MgmtScript::lifecycle_cycling(100),
            MgmtScript::bring_up_with_watchdog(1000),
            MgmtScript::bring_up_with_monitor(1000, 32),
        ] {
            let (_, diagnostics) = interpret_script(&script);
            assert!(
                diagnostics.is_empty(),
                "{}: {:?}",
                script.name,
                codes(&diagnostics)
            );
        }
    }

    #[test]
    fn bring_up_facts_are_exact() {
        let (facts, _) = interpret_script(&MgmtScript::bring_up_and_run(1000));
        assert!(!facts.loops);
        assert!(facts.enable_reachable);
        assert!(facts.cell_reachable);
        assert!(!facts.monitor_reachable);
        assert!(!facts.watchdog_reachable);
        // delay(8) + 9 single-step ops + run_for(1000); halt consumes
        // nothing.
        assert_eq!(facts.steps_consumed, 8 + 9 + 1000);
    }

    #[test]
    fn lifecycle_cycling_is_detected_as_a_loop() {
        let (facts, diagnostics) = interpret_script(&MgmtScript::lifecycle_cycling(50));
        assert!(facts.loops);
        assert!(facts.cell_reachable);
        assert!(diagnostics.is_empty());
    }

    #[test]
    fn monitor_and_watchdog_reachability_is_tracked() {
        let (facts, _) = interpret_script(&MgmtScript::bring_up_with_monitor(500, 16));
        assert!(facts.monitor_reachable);
        let (facts, _) = interpret_script(&MgmtScript::bring_up_with_watchdog(500));
        assert!(facts.watchdog_reachable);
    }

    #[test]
    fn create_before_enable_is_an_error() {
        let script = MgmtScript {
            name: "bad".into(),
            ops: vec![MgmtOp::StageCellConfig, MgmtOp::CreateCell, MgmtOp::Halt],
        };
        let (facts, diagnostics) = interpret_script(&script);
        assert!(facts.cell_reachable);
        assert_eq!(codes(&diagnostics), vec![Code::CertCellOpWithoutEnable]);
        assert_eq!(diagnostics[0].span, "script.ops[1]");
    }

    #[test]
    fn cell_ops_without_create_are_errors() {
        let script = MgmtScript {
            name: "bad".into(),
            ops: vec![MgmtOp::Enable, MgmtOp::StartCell, MgmtOp::DestroyCell],
        };
        let (_, diagnostics) = interpret_script(&script);
        assert_eq!(
            codes(&diagnostics),
            vec![Code::CertCellOpWithoutCreate, Code::CertCellOpWithoutCreate]
        );
    }

    #[test]
    fn double_create_and_start_without_load_warn() {
        let script = MgmtScript {
            name: "bad".into(),
            ops: vec![
                MgmtOp::Enable,
                MgmtOp::CreateCell,
                MgmtOp::CreateCell,
                MgmtOp::StartCell,
            ],
        };
        let (_, diagnostics) = interpret_script(&script);
        assert_eq!(
            codes(&diagnostics),
            vec![Code::CertDoubleCreate, Code::CertStartWithoutLoad]
        );
    }

    #[test]
    fn destroy_resets_the_abstract_cell_state() {
        let script = MgmtScript {
            name: "ok".into(),
            ops: vec![
                MgmtOp::Enable,
                MgmtOp::CreateCell,
                MgmtOp::LoadCell,
                MgmtOp::DestroyCell,
                MgmtOp::CreateCell,
                MgmtOp::LoadCell,
                MgmtOp::StartCell,
            ],
        };
        let (_, diagnostics) = interpret_script(&script);
        assert!(diagnostics.is_empty(), "{:?}", codes(&diagnostics));
    }

    #[test]
    fn wait_without_offline_warns() {
        let script = MgmtScript {
            name: "bad".into(),
            ops: vec![MgmtOp::WaitCpuParked(1), MgmtOp::Halt],
        };
        let (_, diagnostics) = interpret_script(&script);
        assert_eq!(codes(&diagnostics), vec![Code::CertWaitWithoutOffline]);
    }

    #[test]
    fn ops_after_halt_or_skipped_by_restart_are_unreachable() {
        let script = MgmtScript {
            name: "bad".into(),
            ops: vec![MgmtOp::Delay(1), MgmtOp::Halt, MgmtOp::PollInfo],
        };
        let (facts, diagnostics) = interpret_script(&script);
        assert!(!facts.loops);
        assert_eq!(codes(&diagnostics), vec![Code::CertUnreachableOp]);
        assert_eq!(diagnostics[0].span, "script.ops[2]");

        let script = MgmtScript {
            name: "skip".into(),
            ops: vec![MgmtOp::Restart(2), MgmtOp::PollInfo, MgmtOp::Halt],
        };
        let (_, diagnostics) = interpret_script(&script);
        assert_eq!(codes(&diagnostics), vec![Code::CertUnreachableOp]);
        assert_eq!(diagnostics[0].span, "script.ops[1]");
    }

    #[test]
    fn restart_past_the_end_ends_the_walk() {
        let script = MgmtScript {
            name: "oob".into(),
            ops: vec![MgmtOp::Delay(4), MgmtOp::Restart(99)],
        };
        let (facts, diagnostics) = interpret_script(&script);
        assert!(!facts.loops);
        assert_eq!(facts.steps_consumed, 4);
        assert!(diagnostics.is_empty());
    }

    #[test]
    fn empty_script_is_quiet() {
        let script = MgmtScript {
            name: "empty".into(),
            ops: vec![],
        };
        let (facts, diagnostics) = interpret_script(&script);
        assert!(!facts.loops);
        assert_eq!(facts.steps_consumed, 0);
        assert!(diagnostics.is_empty());
    }
}

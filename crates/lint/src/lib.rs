//! `certify-lint` — static analysis for the fault-injection framework.
//!
//! Campaigns are cheap to *run* but expensive to *trust*: a spec whose
//! injection window never opens, whose rate can never be satisfied, or
//! whose memory target guarantees skipped injections still produces a
//! full campaign of green-looking trials — they just certify nothing.
//! This crate catches those specs (and two adjacent failure classes)
//! before any trial runs, as a library used by the shard coordinator
//! and as the `certify-lint` binary CI runs:
//!
//! * [`spec`] — the **spec analyzer**: resolves a
//!   [`Scenario`](certify_core::campaign::Scenario) against the
//!   platform memory map, script and trial horizon and diagnoses dead
//!   or overlapping windows, unsatisfiable rates, out-of-range memory
//!   regions, guaranteed-skip targets, phase-locked mixed specs, and
//!   (for `run_sharded`) broken shard partitions;
//! * [`schema`] — the **codec schema auditor**: pins a golden
//!   fingerprint for every [`certify_core::codec`] wire type so a
//!   silent protocol break fails the build;
//! * [`audit`] — the **determinism audit**: a text scan over the
//!   trial-hot-path crates refusing known nondeterminism sources
//!   (`HashMap`, wall clocks, OS entropy, ambient env reads) modulo a
//!   committed allowlist;
//! * [`interp`] + [`certificate`] — the **scenario abstract
//!   interpreter**: symbolically executes the management script and
//!   derives a pre-flight
//!   [`ScenarioCertificate`](certify_core::ScenarioCertificate) — the
//!   reachable-outcome over-approximation, injection budgets and
//!   fault-target footprint the runtime conformance monitor enforces.
//!
//! Every pass emits [`Diagnostic`]s; callers gate on [`has_errors`].
//! The `certify-lint` binary renders them as text or (`--json`)
//! machine-readable JSON and exits non-zero on any error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod certificate;
pub mod diagnostic;
pub mod interp;
pub mod schema;
pub mod spec;

pub use audit::{
    audit_repo, audit_repo_with_allowlist, audit_tree, audit_tree_with_allowlist, FORBIDDEN_TOKENS,
};
pub use certificate::certify_scenario;
pub use diagnostic::{diagnostics_to_json, has_errors, Code, Diagnostic, Severity};
pub use interp::{interpret_script, AbstractScript};
pub use schema::{check_schema, check_schema_against, current_schema, fingerprint, SchemaEntry};
pub use spec::{lint_mem_regions, lint_partition, lint_scenario, MAX_HANDLER_CALLS_PER_STEP};

use certify_core::campaign::Scenario;
use certify_core::json::Json;
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};

/// One pass's findings, tagged for the `certify-lint` report.
pub struct PassReport {
    /// The pass name (`specs`, `certify`, `schema`, `audit`).
    pub pass: &'static str,
    /// Everything the pass found.
    pub diagnostics: Vec<Diagnostic>,
}

/// The exact JSON object `certify-lint --json` prints for a set of
/// pass reports — kept in the library so its byte stability can be
/// pinned by a golden-file test.
pub fn report_to_json(reports: &[PassReport]) -> Json {
    let total: usize = reports.iter().map(|r| r.diagnostics.len()).sum();
    let failed = reports.iter().any(|r| has_errors(&r.diagnostics));
    Json::obj([
        (
            "passes",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("pass", Json::str(r.pass)),
                            ("diagnostics", diagnostics_to_json(&r.diagnostics)),
                            ("errors", Json::Bool(has_errors(&r.diagnostics))),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("total", Json::U64(total as u64)),
        ("failed", Json::Bool(failed)),
    ])
}

/// Every built-in scenario constructor the framework ships — the
/// experiment presets E1–E7 plus the golden run and the full
/// memory-model × region sweep. All of them must lint clean; CI
/// and the table-driven tests run [`lint_scenario`] over this list.
pub fn builtin_scenarios() -> Vec<Scenario> {
    let mut scenarios = vec![
        Scenario::golden(1500),
        Scenario::e1_root_high(),
        Scenario::e2_nonroot_high(),
        Scenario::e2_boot_window(),
        Scenario::e3_fig3(),
        Scenario::e5a_watchdog(),
        Scenario::e5b_monitor(),
        Scenario::e7_mixed(),
    ];
    for model in MemFaultModel::e6_models() {
        scenarios.push(Scenario::e6_memory(model, MemTarget::e6()));
    }
    for &region in &MemRegionKind::ALL {
        scenarios.push(Scenario::e6_memory(
            MemFaultModel::SingleBitFlip,
            MemTarget::only(region),
        ));
    }
    scenarios.push(Scenario::e6_memory(
        MemFaultModel::SingleBitFlip,
        MemTarget::all(),
    ));
    scenarios
}

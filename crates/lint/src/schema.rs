//! Pass 2 — the codec schema auditor.
//!
//! The hand-rolled binary codec in [`certify_core::codec`] is a wire
//! contract between coordinator and worker processes that may be built
//! from different checkouts. Nothing in the type system stops a
//! refactor from reordering struct fields, renumbering enum tags or
//! widening an integer — changes that decode *successfully* into wrong
//! values. This pass pins the encoding: for every wire type a fixed
//! *witness* value exercising all of its variants and fields is
//! encoded, and the byte stream's length and FNV-1a fingerprint are
//! compared against a golden table committed next to this file
//! (`schema.golden`). A mismatch is an [`Code::SchemaMismatch`] error
//! — the change needs either reverting or a deliberate golden-table
//! regeneration (`certify-lint --write-schema`) plus a wire-protocol
//! version bump.

use crate::diagnostic::{Code, Diagnostic};
use certify_analysis::export::CSV_HEADER;
use certify_arch::{CpuId, Reg};
use certify_core::campaign::Scenario;
use certify_core::codec::encode_to_vec;
use certify_core::fault::FaultModel;
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use certify_core::spec::{InjectionSpec, InjectionWindow, MemorySpec};
use certify_core::stats::{CampaignStats, CountSummary};
use certify_core::{
    engine_metrics_to_json, progress_to_json, shard_metrics_to_json, PhaseBound,
    ScenarioCertificate, Wire,
};
use certify_core::{DumpPolicy, TraceConfig, TraceDump};
use certify_guest_linux::{MgmtOp, MgmtScript};
use certify_hypervisor::HandlerKind;
use certify_obs::trace::{TraceEvent, TraceKind, NO_CPU};
use certify_obs::{EngineMetrics, PhaseSample, ProgressSnapshot, ShardMetrics};
use std::collections::{BTreeMap, BTreeSet};

/// One pinned wire-schema witness: the canonical encoding of a fixed
/// value of one wire type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchemaEntry {
    /// Witness name (stable; the golden table is keyed by it).
    pub name: &'static str,
    /// Encoded length in bytes.
    pub len: usize,
    /// FNV-1a 64-bit fingerprint of the encoded bytes.
    pub fingerprint: u64,
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and good enough to make
/// an accidental schema change colliding with the golden fingerprint
/// implausible.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn entry<T: Wire>(name: &'static str, value: &T) -> SchemaEntry {
    let bytes = encode_to_vec(value);
    SchemaEntry {
        name,
        len: bytes.len(),
        fingerprint: fingerprint(&bytes),
    }
}

fn entry_bytes(name: &'static str, bytes: &[u8]) -> SchemaEntry {
    SchemaEntry {
        name,
        len: bytes.len(),
        fingerprint: fingerprint(bytes),
    }
}

/// A register-injection spec with every field populated, so a change
/// to any field's encoding moves the fingerprint.
fn full_injection_spec() -> InjectionSpec {
    InjectionSpec {
        targets: HandlerKind::ALL.iter().copied().collect(),
        cpu_filter: Some(CpuId(1)),
        rate: 97,
        model: FaultModel::MultiRegisterFlip {
            regs: vec![Reg::ALL[0], Reg::ALL[1], Reg::ALL[2]],
        },
        max_injections: Some(5),
        phase_jitter: true,
        time_trigger: Some(250),
        windows: vec![InjectionWindow::new(10, 20), InjectionWindow::new(30, 40)],
    }
}

/// A memory-injection spec with every field populated.
fn full_memory_spec() -> MemorySpec {
    MemorySpec {
        targets: HandlerKind::ALL.iter().copied().collect(),
        cpu_filter: Some(CpuId(0)),
        rate: 41,
        model: MemFaultModel::WordStuckAt { value: 0xdead_beef },
        target: MemTarget::e6(),
        max_injections: Some(3),
        phase_jitter: true,
        windows: vec![InjectionWindow::new(100, 900)],
    }
}

/// Synthetic stats with every field non-default, so dropping or
/// reordering any field is visible.
fn full_stats() -> CampaignStats {
    use certify_core::Outcome;
    let mut distribution = BTreeMap::new();
    for (i, &outcome) in Outcome::ALL.iter().enumerate() {
        distribution.insert(outcome, i + 1);
    }
    let mut mem_region_distribution = BTreeMap::new();
    for (i, &region) in MemRegionKind::ALL.iter().enumerate() {
        mem_region_distribution.insert((region, Outcome::ALL[i % Outcome::ALL.len()]), i + 2);
    }
    CampaignStats {
        scenario_name: "schema-witness".into(),
        trials: 28,
        distribution,
        injected_trials: 21,
        mem_injected_trials: 13,
        mem_region_distribution,
        injections: CountSummary {
            min: 1,
            max: 4,
            total: 9,
        },
        mem_injections: CountSummary {
            min: 0,
            max: 2,
            total: 5,
        },
        watchdog_detected: 3,
        watchdog_expiry_sum: 1234,
        monitor_detected: 2,
        monitor_alarms_total: 7,
    }
}

/// A pre-flight certificate with every field populated: looping and
/// non-looping scripts are both covered by the two phase vectors, and
/// every outcome and region tag feeds the sets.
fn full_certificate() -> ScenarioCertificate {
    ScenarioCertificate {
        scenario_name: "schema-witness".into(),
        cell_reachable: true,
        script_steps: Some(1017),
        outcomes: certify_core::Outcome::ALL.iter().copied().collect(),
        reg_budget: Some(360),
        mem_budget: Some(12),
        tracked_regions: MemRegionKind::ALL.iter().copied().collect(),
        reg_phases: vec![PhaseBound {
            start: 0,
            end: 4500,
            max_handler_calls: 36_000,
            max_injections: 360,
        }],
        mem_phases: vec![PhaseBound {
            start: 100,
            end: 900,
            max_handler_calls: 6_400,
            max_injections: 12,
        }],
    }
}

/// Engine metrics with every counter, the residency gauge and all
/// phase histograms non-default.
fn full_engine_metrics() -> EngineMetrics {
    let mut metrics = EngineMetrics::default();
    metrics.trials.add(28);
    metrics.reorder_residency.set(5);
    metrics.reorder_residency.set(2); // high-water stays at 5
    metrics.sink_rows.add(28);
    metrics.sink_bytes.add(1234);
    metrics.phases.record(&PhaseSample {
        boot_ns: 1_000,
        steady_ns: 2_000,
        injection_ns: 300,
        classify_ns: 40,
    });
    metrics.phases.record(&PhaseSample {
        boot_ns: 5_000,
        steady_ns: 1_000,
        injection_ns: 0,
        classify_ns: 90,
    });
    metrics
}

/// Shard transport metrics with every counter non-default.
fn full_shard_metrics() -> ShardMetrics {
    let mut metrics = ShardMetrics::default();
    metrics.rows.add(240);
    metrics.frames.add(12);
    metrics.frame_bytes.add(4096);
    metrics.crc_rejects.add(1);
    metrics.retries.add(2);
    metrics.wasted_rerun_trials.add(40);
    metrics.elapsed_ns.set(2_000_000_000);
    metrics
}

/// A tracing configuration with every field non-default.
fn full_trace_config() -> TraceConfig {
    TraceConfig {
        capacity: 1024,
        policy: DumpPolicy {
            outcomes: [
                certify_core::Outcome::SilentDataCorruption,
                certify_core::Outcome::Correct,
            ]
            .into_iter()
            .collect(),
            on_conformance_violation: false,
            on_panic: false,
        },
    }
}

/// A trace dump whose events cover every [`TraceKind`] variant, both
/// CPU-bound and machine-level (`NO_CPU`) lanes, and a non-zero drop
/// counter — so any change to the event encoding or the dump framing
/// moves the fingerprint.
fn full_trace_dump() -> TraceDump {
    let events: Vec<TraceEvent> = TraceKind::ALL
        .iter()
        .enumerate()
        .map(|(i, &kind)| TraceEvent {
            step: 100 + i as u64,
            cpu: if i % 3 == 0 { NO_CPU } else { i as u32 },
            kind,
            arg_a: i as u64,
            arg_b: 0xb0 + i as u64,
        })
        .collect();
    TraceDump {
        seed: 77,
        scenario: "schema-witness".into(),
        outcome: certify_core::Outcome::SilentDataCorruption,
        total: events.len() as u64 + 3,
        dropped: 3,
        events,
    }
}

/// A mid-run shard snapshot with every field populated.
fn full_progress_snapshot() -> ProgressSnapshot {
    ProgressSnapshot {
        source: Some(3),
        done: 120,
        total: 240,
        elapsed_ns: 1_500_000_000,
        rows_per_sec: 80.0,
        eta_ns: Some(1_500_000_000),
        outcomes: vec![
            (String::from("correct"), 100),
            (String::from("panic park"), 20),
        ],
    }
}

/// The current schema: every wire type's witness, encoded and
/// fingerprinted, in stable order.
pub fn current_schema() -> Vec<SchemaEntry> {
    // Primitive layer: one buffer concatenating every primitive
    // encoder, so a width or prefix change anywhere shows up.
    let mut primitives = Vec::new();
    0xa5u8.encode(&mut primitives);
    0x1234u16.encode(&mut primitives);
    0x1122_3344u32.encode(&mut primitives);
    0x0102_0304_0506_0708u64.encode(&mut primitives);
    (-5i64).encode(&mut primitives);
    7usize.encode(&mut primitives);
    true.encode(&mut primitives);
    false.encode(&mut primitives);
    String::from("wire").encode(&mut primitives);
    Option::<u32>::None.encode(&mut primitives);
    Some(9u32).encode(&mut primitives);
    vec![1u16, 2, 3].encode(&mut primitives);
    BTreeSet::from([1u8, 2]).encode(&mut primitives);
    BTreeMap::from([(1u8, 2u16)]).encode(&mut primitives);
    (0xabu8, 0xcdef_0123u32).encode(&mut primitives);

    let all_mgmt_ops: Vec<MgmtOp> = vec![
        MgmtOp::Delay(7),
        MgmtOp::PollInfo,
        MgmtOp::StageSystemConfig,
        MgmtOp::Enable,
        MgmtOp::RequestCpuOffline(1),
        MgmtOp::WaitCpuParked(1),
        MgmtOp::StageCellConfig,
        MgmtOp::CreateCell,
        MgmtOp::LoadCell,
        MgmtOp::StartCell,
        MgmtOp::RunFor(400),
        MgmtOp::QueryCellState,
        MgmtOp::ShutdownCell,
        MgmtOp::DestroyCell,
        MgmtOp::ArmWatchdog,
        MgmtOp::MonitorFor {
            steps: 300,
            window: 60,
        },
        MgmtOp::Restart(6),
        MgmtOp::Halt,
    ];
    let all_fault_models: Vec<FaultModel> = vec![
        FaultModel::SingleBitFlip {
            pool: Reg::ALL.to_vec(),
        },
        FaultModel::MultiRegisterFlip {
            regs: vec![Reg::ALL[0], Reg::ALL[1]],
        },
        FaultModel::DoubleBitFlip {
            pool: vec![Reg::ALL[3]],
        },
        FaultModel::RegisterZero {
            pool: vec![Reg::ALL[4]],
        },
        FaultModel::RegisterRandom {
            pool: vec![Reg::ALL[5]],
        },
    ];
    let all_regions: Vec<MemRegionKind> = MemRegionKind::ALL
        .iter()
        .copied()
        .chain([MemRegionKind::Custom {
            base: 0x1000,
            size: 0x100,
        }])
        .collect();
    let all_mem_models: Vec<MemFaultModel> = vec![
        MemFaultModel::SingleBitFlip,
        MemFaultModel::DoubleBitFlip,
        MemFaultModel::WordStuckAt { value: 0xffff_0000 },
        MemFaultModel::PageBurst { words: 16 },
        MemFaultModel::DescriptorInvalidate,
        MemFaultModel::CommStateCorrupt,
    ];

    vec![
        entry_bytes("primitives", &primitives),
        entry("cpu-id", &CpuId(0x1122_3344)),
        entry("reg-tags", &Reg::ALL.to_vec()),
        entry("handler-tags", &HandlerKind::ALL.to_vec()),
        entry("outcome-tags", &certify_core::Outcome::ALL.to_vec()),
        entry("mgmt-op-variants", &all_mgmt_ops),
        entry("mgmt-script", &MgmtScript::lifecycle_cycling(100)),
        entry("injection-window", &InjectionWindow::new(3, 9)),
        entry("fault-model-variants", &all_fault_models),
        entry("injection-spec-full", &full_injection_spec()),
        entry("mem-region-variants", &all_regions),
        entry("mem-fault-model-variants", &all_mem_models),
        entry("mem-target", &MemTarget::all()),
        entry("memory-spec-full", &full_memory_spec()),
        entry("scenario-golden", &Scenario::golden(1500)),
        entry("scenario-e3", &Scenario::e3_fig3()),
        entry("scenario-e7", &Scenario::e7_mixed()),
        entry(
            "count-summary",
            &CountSummary {
                min: 1,
                max: 4,
                total: 9,
            },
        ),
        entry("campaign-stats", &full_stats()),
        entry_bytes("csv-header", CSV_HEADER.as_bytes()),
        entry("phase-bound", &full_certificate().reg_phases[0]),
        entry("scenario-certificate", &full_certificate()),
        entry("trace-kind-tags", &TraceKind::ALL.to_vec()),
        entry(
            "trace-event",
            &TraceEvent {
                step: 0x0102_0304_0506_0708,
                cpu: 2,
                kind: TraceKind::TrapTaken,
                arg_a: 0xaaaa_bbbb_cccc_dddd,
                arg_b: 0x1111_2222_3333_4444,
            },
        ),
        entry("trace-config-full", &full_trace_config()),
        entry("trace-dump-full", &full_trace_dump()),
        // JSON surfaces: the rendered byte streams clients parse. A
        // renamed key, reordered field or reformatted number is as
        // much a wire break as a codec change, so the rendered text of
        // a fully-populated value is pinned like any encoding.
        entry_bytes(
            "json-campaign-stats",
            full_stats().to_json().render().as_bytes(),
        ),
        entry_bytes(
            "json-progress-snapshot",
            progress_to_json(&full_progress_snapshot())
                .render()
                .as_bytes(),
        ),
        entry_bytes(
            "json-engine-metrics",
            engine_metrics_to_json(&full_engine_metrics())
                .render()
                .as_bytes(),
        ),
        entry_bytes(
            "json-shard-metrics",
            shard_metrics_to_json(&full_shard_metrics())
                .render()
                .as_bytes(),
        ),
        entry_bytes(
            "json-trace-dump",
            full_trace_dump().to_json().render().as_bytes(),
        ),
        entry_bytes(
            "chrome-trace",
            full_trace_dump().to_chrome_trace().as_bytes(),
        ),
    ]
}

/// Renders a schema as the golden-table text format: one
/// `name length fingerprint` line per witness, `#` comments allowed.
pub fn render_schema(entries: &[SchemaEntry]) -> String {
    let mut out = String::from(
        "# Golden wire-schema fingerprints. One line per witness:\n\
         #   <name> <encoded-length> <fnv1a64-hex>\n\
         # Regenerate deliberately with `certify-lint --write-schema`\n\
         # after a wire-protocol version bump.\n",
    );
    for entry in entries {
        out.push_str(&format!(
            "{} {} {:016x}\n",
            entry.name, entry.len, entry.fingerprint
        ));
    }
    out
}

/// The committed golden table this build is audited against.
pub const GOLDEN: &str = include_str!("../schema.golden");

/// Audits the current encoders against the committed golden table.
pub fn check_schema() -> Vec<Diagnostic> {
    check_schema_against(GOLDEN)
}

/// Audits the current encoders against an arbitrary golden table
/// (separated from [`check_schema`] so tests can feed bad fixtures).
pub fn check_schema_against(golden: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut pinned: BTreeMap<&str, (usize, u64)> = BTreeMap::new();
    for (line_no, raw) in golden.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let span = format!("schema.golden:{}", line_no + 1);
        let mut parts = line.split_whitespace();
        let parsed = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(name), Some(len), Some(hash), None) => len
                .parse::<usize>()
                .ok()
                .zip(u64::from_str_radix(hash, 16).ok())
                .map(|(len, hash)| (name, len, hash)),
            _ => None,
        };
        let Some((name, len, hash)) = parsed else {
            out.push(Diagnostic::new(
                Code::SchemaMalformedGolden,
                span,
                format!("cannot parse `{line}` as `<name> <length> <fnv1a64-hex>`"),
            ));
            continue;
        };
        if pinned.insert(name, (len, hash)).is_some() {
            out.push(Diagnostic::new(
                Code::SchemaMalformedGolden,
                span,
                format!("witness `{name}` is pinned twice"),
            ));
        }
    }
    let current = current_schema();
    for entry in &current {
        match pinned.remove(entry.name) {
            None => out.push(Diagnostic::new(
                Code::SchemaMissingGolden,
                entry.name,
                "witness has no golden fingerprint: regenerate the schema table",
            )),
            Some((len, hash)) if len != entry.len || hash != entry.fingerprint => {
                out.push(Diagnostic::new(
                    Code::SchemaMismatch,
                    entry.name,
                    format!(
                        "encoding changed: golden {len} bytes / {hash:016x}, \
                         current {} bytes / {:016x}",
                        entry.len, entry.fingerprint
                    ),
                ));
            }
            Some(_) => {}
        }
    }
    for (name, _) in pinned {
        out.push(Diagnostic::new(
            Code::SchemaUnknownGolden,
            name,
            "golden table pins a witness the current code no longer produces",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::has_errors;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn committed_golden_matches_current_encoders() {
        let diags = check_schema();
        assert!(
            diags.is_empty(),
            "wire schema drifted from schema.golden:\n{}",
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }

    #[test]
    fn fingerprint_is_fnv1a64() {
        // Published FNV-1a test vectors.
        assert_eq!(fingerprint(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fingerprint(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fingerprint(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn witness_names_are_unique_and_nonempty() {
        let schema = current_schema();
        let mut seen = std::collections::BTreeSet::new();
        for entry in &schema {
            assert!(seen.insert(entry.name), "duplicate witness {}", entry.name);
            assert!(entry.len > 0, "witness {} encodes to nothing", entry.name);
        }
    }

    #[test]
    fn round_trip_regeneration_is_clean() {
        let rendered = render_schema(&current_schema());
        assert!(check_schema_against(&rendered).is_empty());
    }

    #[test]
    fn a_drifted_fingerprint_is_a_mismatch_error() {
        let mut rendered = String::new();
        for entry in current_schema() {
            rendered.push_str(&format!(
                "{} {} {:016x}\n",
                entry.name,
                entry.len,
                entry.fingerprint ^ if entry.name == "scenario-e3" { 1 } else { 0 }
            ));
        }
        let diags = check_schema_against(&rendered);
        assert_eq!(codes(&diags), vec![Code::SchemaMismatch]);
        assert_eq!(diags[0].span, "scenario-e3");
        assert!(has_errors(&diags));
    }

    #[test]
    fn a_missing_pin_and_a_stale_pin_are_errors() {
        let mut rendered = String::from("retired-witness 4 00000000deadbeef\n");
        for entry in current_schema() {
            if entry.name == "cpu-id" {
                continue; // drop one pin
            }
            rendered.push_str(&format!(
                "{} {} {:016x}\n",
                entry.name, entry.len, entry.fingerprint
            ));
        }
        let diags = check_schema_against(&rendered);
        assert_eq!(
            codes(&diags),
            vec![Code::SchemaMissingGolden, Code::SchemaUnknownGolden]
        );
        assert_eq!(diags[0].span, "cpu-id");
        assert_eq!(diags[1].span, "retired-witness");
    }

    #[test]
    fn malformed_and_duplicate_golden_lines_are_reported() {
        let diags = check_schema_against("not a schema line at all extra\nbad-hash 4 zzzz\n");
        assert!(diags
            .iter()
            .take(2)
            .all(|d| d.code == Code::SchemaMalformedGolden));
        assert_eq!(diags[0].span, "schema.golden:1");
        let dup = "cpu-id 8 0000000000000001\ncpu-id 8 0000000000000001\n";
        assert!(check_schema_against(dup)
            .iter()
            .any(|d| d.code == Code::SchemaMalformedGolden && d.message.contains("twice")));
    }
}

//! Pass 1 — the campaign-spec analyzer.
//!
//! [`lint_scenario`] resolves everything a [`Scenario`] will meet at
//! run time — the platform memory map and CPU count, the management
//! script, the trial horizon — and statically diagnoses the ways a
//! spec can be silently meaningless: dead or overlapping injection
//! windows, out-of-range or zero-probability memory target regions,
//! unsatisfiable rates, CPU filters no call can match, mixed-spec
//! phase locks. [`lint_partition`] is the same discipline for shard
//! partitions: `run_sharded` refuses a partition that over- or
//! under-covers the seed space before a single worker is spawned.
//!
//! Everything here is *advice about reachable behaviour*, not type
//! checking: every diagnosed spec is constructible (and most are
//! encodable over the wire), it just cannot do what its author meant.

use crate::diagnostic::{Code, Diagnostic};
use certify_board::Machine;
use certify_core::campaign::Scenario;
use certify_core::memfault::{MemFaultModel, MemRegionKind, RamCoverage};
use certify_core::spec::{InjectionSpec, InjectionWindow, MemorySpec};
use certify_guest_linux::{MgmtOp, MgmtScript};

/// Conservative upper bound on filtered handler calls per CPU per
/// simulator step. A CPU triggers at most one trap/hypercall handler
/// per step plus a bounded burst of IRQ deliveries; eight is far above
/// anything the platform model produces, so a rate above
/// `steps * cpus * 8` provably never fires.
pub const MAX_HANDLER_CALLS_PER_STEP: u64 = 8;

/// The platform facts a spec is resolved against.
#[derive(Debug, Clone, Copy)]
struct LintContext {
    /// Trial horizon in simulator steps.
    steps: u64,
    /// Platform CPU count (CPU filters must name one of these).
    cpus: u32,
}

impl LintContext {
    fn for_scenario(scenario: &Scenario) -> LintContext {
        LintContext {
            steps: scenario.steps,
            cpus: Machine::new_banana_pi().num_cpus() as u32,
        }
    }

    /// The largest filtered-call count any spec can plausibly see.
    fn call_capacity(&self, cpu_filtered: bool) -> u64 {
        let cpus = if cpu_filtered {
            1
        } else {
            u64::from(self.cpus)
        };
        self.steps
            .saturating_mul(cpus)
            .saturating_mul(MAX_HANDLER_CALLS_PER_STEP)
    }
}

/// Lints a full scenario: horizon, script, both injection specs and
/// their interaction. Returns every finding; gate on
/// [`crate::has_errors`] to decide whether to refuse it.
pub fn lint_scenario(scenario: &Scenario) -> Vec<Diagnostic> {
    let ctx = LintContext::for_scenario(scenario);
    let mut out = Vec::new();

    if scenario.steps == 0 {
        out.push(Diagnostic::new(
            Code::SpecZeroSteps,
            "steps",
            "the trial horizon is zero steps",
        ));
    }
    lint_script(&scenario.script, &mut out);
    if let Some(spec) = &scenario.spec {
        lint_injection_spec(spec, ctx, &mut out);
    }
    if let Some(mem_spec) = &scenario.mem_spec {
        lint_memory_spec(mem_spec, ctx, &scenario.script, &mut out);
    }
    if let (Some(spec), Some(mem_spec)) = (&scenario.spec, &scenario.mem_spec) {
        lint_mixed(spec, mem_spec, &mut out);
    }
    out
}

/// Lints the management script: an empty workload, restart jumps past
/// the end of the op list.
fn lint_script(script: &MgmtScript, out: &mut Vec<Diagnostic>) {
    if script.ops.is_empty() {
        out.push(Diagnostic::new(
            Code::ScriptEmpty,
            "script.ops",
            format!("script `{}` has no operations", script.name),
        ));
    }
    for (i, op) in script.ops.iter().enumerate() {
        if let MgmtOp::Restart(target) = op {
            if *target >= script.ops.len() {
                out.push(Diagnostic::new(
                    Code::ScriptRestartOutOfBounds,
                    format!("script.ops[{i}]"),
                    format!(
                        "restart target {target} is past the end of the {}-op script \
                         and silently ends it",
                        script.ops.len()
                    ),
                ));
            }
        }
    }
}

/// Shared cadence checks of both spec kinds: target set, rate
/// satisfiability, CPU filter, injection cap, windows.
#[allow(clippy::too_many_arguments)]
fn lint_cadence(
    prefix: &str,
    targets_empty: bool,
    cpu_filter: Option<u32>,
    rate: u64,
    rate_in_use: bool,
    max_injections: Option<u64>,
    windows: &[InjectionWindow],
    ctx: LintContext,
    out: &mut Vec<Diagnostic>,
) {
    if targets_empty {
        out.push(Diagnostic::new(
            Code::SpecEmptyTargets,
            format!("{prefix}.targets"),
            "no handlers are targeted, so the cadence never advances",
        ));
    }
    if rate == 0 {
        out.push(Diagnostic::new(
            Code::SpecZeroRate,
            format!("{prefix}.rate"),
            "a rate of zero can never fire",
        ));
    } else if rate_in_use {
        let capacity = ctx.call_capacity(cpu_filter.is_some());
        if rate > capacity {
            out.push(Diagnostic::new(
                Code::SpecUnsatisfiableRate,
                format!("{prefix}.rate"),
                format!(
                    "rate {rate} exceeds the {capacity} filtered calls \
                     {} steps can plausibly produce",
                    ctx.steps
                ),
            ));
        }
    }
    if let Some(cpu) = cpu_filter {
        if cpu >= ctx.cpus {
            out.push(Diagnostic::new(
                Code::SpecCpuOutOfRange,
                format!("{prefix}.cpu_filter"),
                format!("CPU {cpu} does not exist (platform has {} CPUs)", ctx.cpus),
            ));
        }
    }
    if max_injections == Some(0) {
        out.push(Diagnostic::new(
            Code::SpecZeroInjectionCap,
            format!("{prefix}.max_injections"),
            "an injection cap of zero disables the spec",
        ));
    }
    lint_windows(prefix, windows, ctx.steps, out);
}

/// Window-list checks: inverted or dead windows, a list that never
/// arms, redundant overlaps.
fn lint_windows(prefix: &str, windows: &[InjectionWindow], steps: u64, out: &mut Vec<Diagnostic>) {
    if windows.is_empty() {
        return; // an empty list arms the whole run
    }
    let mut live = Vec::new();
    let mut dead = Vec::new();
    for (i, window) in windows.iter().enumerate() {
        if window.start >= window.end {
            out.push(Diagnostic::new(
                Code::WindowInverted,
                format!("{prefix}.windows[{i}]"),
                format!(
                    "window [{}, {}) is empty or inverted",
                    window.start, window.end
                ),
            ));
            dead.push(i);
        } else if window.start >= steps {
            dead.push(i);
        } else {
            live.push((window.start, window.end.min(steps), i));
        }
    }
    if live.is_empty() {
        out.push(Diagnostic::new(
            Code::WindowAllDead,
            format!("{prefix}.windows"),
            format!(
                "none of the {} windows opens before the {steps}-step horizon: \
                 the spec never arms",
                windows.len()
            ),
        ));
    } else {
        // Individual dead windows are only worth flagging when the
        // spec still does something.
        for &i in &dead {
            let window = &windows[i];
            if window.start < window.end {
                out.push(Diagnostic::new(
                    Code::WindowDead,
                    format!("{prefix}.windows[{i}]"),
                    format!(
                        "window [{}, {}) opens at or after the {steps}-step horizon",
                        window.start, window.end
                    ),
                ));
            }
        }
    }
    // Overlaps among the live windows (sorted by start, adjacent
    // comparison suffices for pairwise overlap detection).
    live.sort_unstable();
    for pair in live.windows(2) {
        let (a_start, a_end, a_idx) = pair[0];
        let (b_start, _, b_idx) = pair[1];
        if b_start < a_end {
            let _ = a_start;
            out.push(Diagnostic::new(
                Code::WindowOverlap,
                format!("{prefix}.windows[{b_idx}]"),
                format!("overlaps window at {prefix}.windows[{a_idx}]"),
            ));
        }
    }
}

/// Lints a register-injection spec.
fn lint_injection_spec(spec: &InjectionSpec, ctx: LintContext, out: &mut Vec<Diagnostic>) {
    lint_cadence(
        "spec",
        spec.targets.is_empty(),
        spec.cpu_filter.map(|c| c.0),
        spec.rate,
        spec.time_trigger.is_none(),
        spec.max_injections,
        &spec.windows,
        ctx,
        out,
    );
    match spec.time_trigger {
        Some(0) => out.push(Diagnostic::new(
            Code::SpecZeroTimeTrigger,
            "spec.time_trigger",
            "a time-trigger period of zero is rejected by the engine",
        )),
        Some(period) if period >= ctx.steps => out.push(Diagnostic::new(
            Code::SpecLateTimeTrigger,
            "spec.time_trigger",
            format!(
                "period {period} is not below the {}-step horizon: the trigger never fires",
                ctx.steps
            ),
        )),
        _ => {}
    }
}

/// Lints a memory-injection spec, including the skip guarantees the
/// campaign engine will debug-assert against.
fn lint_memory_spec(
    spec: &MemorySpec,
    ctx: LintContext,
    script: &MgmtScript,
    out: &mut Vec<Diagnostic>,
) {
    lint_cadence(
        "mem_spec",
        spec.targets.is_empty(),
        spec.cpu_filter.map(|c| c.0),
        spec.rate,
        true,
        spec.max_injections,
        &spec.windows,
        ctx,
        out,
    );
    out.extend(lint_mem_regions(
        &spec.model,
        spec.target.regions(),
        "mem_spec.target",
    ));
    let prediction = spec.skip_prediction();
    let creates_cell = script.ops.iter().any(|op| matches!(op, MgmtOp::CreateCell));
    if prediction.no_victim_possible && !creates_cell {
        out.push(Diagnostic::new(
            Code::MemNoVictimCell,
            "mem_spec.model",
            format!(
                "model {} needs a non-root victim cell but script `{}` never creates \
                 one: every such injection is a guaranteed skip",
                spec.model.name(),
                script.name
            ),
        ));
    }
}

/// Lints a memory target's region list under `model`: structural span
/// problems (too small, wrapping) and — for models that write physical
/// RAM — regions that guarantee or risk [`skipped
/// injections`](certify_core::memfault::MemFaultSkip::OutOfRange).
///
/// Public (rather than folded into [`lint_scenario`]) because
/// [`certify_core::memfault::MemTarget::new`] panics on structurally
/// bad regions: tests and tools can feed *arbitrary* region lists here
/// without being able to construct the target.
pub fn lint_mem_regions(
    model: &MemFaultModel,
    regions: &[MemRegionKind],
    span_prefix: &str,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if regions.is_empty() {
        out.push(Diagnostic::new(
            Code::MemEmptyRegions,
            format!("{span_prefix}.regions"),
            "the target samples from no regions",
        ));
        return out;
    }
    for (i, &region) in regions.iter().enumerate() {
        let span = format!("{span_prefix}.regions[{i}]");
        let (base, size) = region.span();
        if size < 4 {
            out.push(Diagnostic::new(
                Code::MemRegionTooSmall,
                span,
                format!("region {region} spans {size} bytes; a 32-bit word needs 4"),
            ));
            continue;
        }
        if base.checked_add(size - 1).is_none() {
            out.push(Diagnostic::new(
                Code::MemRegionWraps,
                span,
                format!("region {region} wraps the 32-bit address space"),
            ));
            continue;
        }
        // Out-of-range skips only exist on the RAM-word path:
        // comm-state corruption writes the comm region regardless of
        // the sample, and descriptor attacks treat the sample as an
        // IPA (mirrors `MemFaultModel::apply`).
        let ram_word_path = !matches!(
            model,
            MemFaultModel::CommStateCorrupt | MemFaultModel::DescriptorInvalidate
        ) && region != MemRegionKind::Stage2Tables;
        if ram_word_path {
            match RamCoverage::of(region) {
                RamCoverage::Inside => {}
                RamCoverage::Outside => out.push(Diagnostic::new(
                    Code::MemRegionOutsideRam,
                    span,
                    format!(
                        "region {region} ({base:#010x}+{size:#x}) lies entirely outside \
                         DRAM: every sample is a guaranteed skipped injection"
                    ),
                )),
                RamCoverage::Straddles => out.push(Diagnostic::new(
                    Code::MemRegionStraddlesRam,
                    span,
                    format!(
                        "region {region} ({base:#010x}+{size:#x}) partly leaves DRAM: \
                         samples outside it are skipped injections"
                    ),
                )),
            }
        }
    }
    out
}

/// Mixed-spec conflict: both injectors on exactly the same calls.
fn lint_mixed(spec: &InjectionSpec, mem_spec: &MemorySpec, out: &mut Vec<Diagnostic>) {
    if spec.targets == mem_spec.targets
        && spec.cpu_filter == mem_spec.cpu_filter
        && spec.rate == mem_spec.rate
        && !spec.phase_jitter
        && !mem_spec.phase_jitter
        && spec.time_trigger.is_none()
    {
        out.push(Diagnostic::new(
            Code::MixedPhaseLock,
            "mem_spec",
            "register and memory specs share targets, CPU filter and rate with no \
             phase jitter: both injectors fire on exactly the same calls",
        ));
    }
}

/// Validates that `ranges` is a contiguous, non-overlapping, exact
/// cover of the trial space `[start, start + len)` — the shard
/// partition contract `run_sharded` enforces before spawning workers.
///
/// Ranges must be given in ascending order (as
/// [`certify-shard`'s `partition`](https://docs.rs) produces them);
/// an out-of-order range reads as an overlap or gap.
pub fn lint_partition(start: usize, len: usize, ranges: &[(usize, usize)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    // u128 so `start + len` and range ends can never overflow.
    let limit = start as u128 + len as u128;
    let mut cursor = start as u128;
    for (i, &(range_start, range_len)) in ranges.iter().enumerate() {
        let span = format!("partition[{i}]");
        if range_len == 0 {
            out.push(Diagnostic::new(
                Code::PartitionEmptyRange,
                span.clone(),
                format!("shard range {i} covers zero trials"),
            ));
        }
        let range_start = range_start as u128;
        let range_end = range_start + range_len as u128;
        if range_start < cursor {
            out.push(Diagnostic::new(
                Code::PartitionOverlap,
                span.clone(),
                format!(
                    "range starts at trial {range_start} but trials below {cursor} \
                     are already covered"
                ),
            ));
        } else if range_start > cursor {
            out.push(Diagnostic::new(
                Code::PartitionGap,
                span.clone(),
                format!("trials [{cursor}, {range_start}) are covered by no shard"),
            ));
        }
        if range_end > limit {
            out.push(Diagnostic::new(
                Code::PartitionOutOfBounds,
                span,
                format!(
                    "range ends at trial {range_end}, past the campaign's \
                     trial space end {limit}"
                ),
            ));
        }
        cursor = cursor.max(range_end);
    }
    if cursor < limit {
        out.push(Diagnostic::new(
            Code::PartitionGap,
            "partition",
            format!("trials [{cursor}, {limit}) are covered by no shard"),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::has_errors;
    use certify_core::memfault::MemTarget;
    use certify_core::spec::InjectionWindow;

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    // ---- partition: one unit test per violation class -------------

    #[test]
    fn partition_exact_cover_is_clean() {
        assert!(lint_partition(0, 10, &[(0, 3), (3, 3), (6, 4)]).is_empty());
        assert!(lint_partition(5, 5, &[(5, 5)]).is_empty());
        assert!(lint_partition(0, 0, &[]).is_empty());
    }

    #[test]
    fn partition_gap_in_the_middle() {
        let diags = lint_partition(0, 10, &[(0, 3), (5, 5)]);
        assert_eq!(codes(&diags), vec![Code::PartitionGap]);
        assert!(diags[0].span.contains("partition[1]"));
    }

    #[test]
    fn partition_gap_at_the_tail() {
        let diags = lint_partition(0, 10, &[(0, 3), (3, 3)]);
        assert_eq!(codes(&diags), vec![Code::PartitionGap]);
        assert!(diags[0].message.contains("[6, 10)"));
    }

    #[test]
    fn partition_overlap() {
        let diags = lint_partition(0, 10, &[(0, 6), (4, 6)]);
        assert_eq!(codes(&diags), vec![Code::PartitionOverlap]);
    }

    #[test]
    fn partition_out_of_bounds() {
        let diags = lint_partition(0, 10, &[(0, 12)]);
        assert_eq!(codes(&diags), vec![Code::PartitionOutOfBounds]);
    }

    #[test]
    fn partition_empty_range_is_a_warning() {
        let diags = lint_partition(0, 4, &[(0, 2), (2, 0), (2, 2)]);
        assert_eq!(codes(&diags), vec![Code::PartitionEmptyRange]);
        assert!(!has_errors(&diags));
    }

    #[test]
    fn partition_huge_ranges_do_not_overflow() {
        let diags = lint_partition(usize::MAX - 4, 4, &[(usize::MAX - 4, 4)]);
        assert!(diags.is_empty());
        let diags = lint_partition(0, usize::MAX, &[(0, usize::MAX)]);
        assert!(diags.is_empty());
    }

    // ---- window analysis ------------------------------------------

    #[test]
    fn live_and_dead_windows_mix_warns_per_window() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().windows = vec![
            InjectionWindow::new(0, 100),
            InjectionWindow::new(9000, 9100), // beyond the 4500-step horizon
        ];
        let diags = lint_scenario(&scenario);
        assert_eq!(codes(&diags), vec![Code::WindowDead]);
        assert_eq!(diags[0].span, "spec.windows[1]");
    }

    #[test]
    fn all_dead_windows_is_an_error() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(5000, 6000)];
        let diags = lint_scenario(&scenario);
        assert_eq!(codes(&diags), vec![Code::WindowAllDead]);
        assert!(has_errors(&diags));
    }

    #[test]
    fn inverted_window_is_an_error() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().windows = vec![
            InjectionWindow { start: 20, end: 20 },
            InjectionWindow::new(0, 50),
        ];
        let diags = lint_scenario(&scenario);
        assert_eq!(codes(&diags), vec![Code::WindowInverted]);
    }

    #[test]
    fn overlapping_windows_warn_once_per_pair() {
        let mut scenario = Scenario::e3_fig3();
        scenario.spec.as_mut().unwrap().windows = vec![
            InjectionWindow::new(100, 300),
            InjectionWindow::new(200, 400),
            InjectionWindow::new(600, 700),
        ];
        let diags = lint_scenario(&scenario);
        assert_eq!(codes(&diags), vec![Code::WindowOverlap]);
        assert!(diags[0].message.contains("windows[0]"));
    }

    // ---- region analysis ------------------------------------------

    #[test]
    fn region_lint_rejects_structurally_bad_spans() {
        let tiny = MemRegionKind::Custom { base: 0, size: 2 };
        let wraps = MemRegionKind::Custom {
            base: 0xffff_fff0,
            size: 0x100,
        };
        let diags = lint_mem_regions(&MemFaultModel::SingleBitFlip, &[tiny, wraps], "t");
        assert_eq!(
            codes(&diags),
            vec![Code::MemRegionTooSmall, Code::MemRegionWraps]
        );
        assert!(has_errors(&diags));
    }

    #[test]
    fn region_lint_flags_out_of_ram_word_targets_only() {
        let hole = MemRegionKind::Custom {
            base: 0x1000_0000,
            size: 0x1000,
        };
        // Word model: guaranteed skips.
        let diags = lint_mem_regions(&MemFaultModel::SingleBitFlip, &[hole], "t");
        assert_eq!(codes(&diags), vec![Code::MemRegionOutsideRam]);
        // Descriptor / comm models never take the RAM-word path.
        assert!(lint_mem_regions(&MemFaultModel::DescriptorInvalidate, &[hole], "t").is_empty());
        assert!(lint_mem_regions(&MemFaultModel::CommStateCorrupt, &[hole], "t").is_empty());
    }

    #[test]
    fn region_lint_flags_straddles_and_empty_lists() {
        let straddle = MemRegionKind::Custom {
            base: certify_board::memmap::RAM_BASE - 0x100,
            size: 0x200,
        };
        let diags = lint_mem_regions(&MemFaultModel::DoubleBitFlip, &[straddle], "t");
        assert_eq!(codes(&diags), vec![Code::MemRegionStraddlesRam]);
        let diags = lint_mem_regions(&MemFaultModel::SingleBitFlip, &[], "t");
        assert_eq!(codes(&diags), vec![Code::MemEmptyRegions]);
    }

    #[test]
    fn victim_cell_warning_needs_a_cell_less_script() {
        let mut scenario = Scenario::e6_memory(
            MemFaultModel::DescriptorInvalidate,
            MemTarget::only(MemRegionKind::Stage2Tables),
        );
        assert!(lint_scenario(&scenario).is_empty(), "script creates a cell");
        scenario.script = MgmtScript::enable_attempt(3); // no CreateCell
        let diags = lint_scenario(&scenario);
        assert_eq!(codes(&diags), vec![Code::MemNoVictimCell]);
    }
}

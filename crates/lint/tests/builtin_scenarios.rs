//! Table-driven coverage of the spec analyzer.
//!
//! Two directions: every built-in scenario constructor must lint
//! *clean* (zero diagnostics — the presets are the documentation of
//! what a good spec looks like), and a table of targeted mutations
//! must each trigger exactly the documented diagnostic code. Together
//! the two tables give every spec-analyzer code at least one
//! triggering test and pin the analyzer against false positives on
//! real scenarios. Proptests then sweep window/region parameter
//! spaces for the reachability-analysis codes.

use certify_core::campaign::Scenario;
use certify_core::memfault::{MemFaultModel, MemRegionKind, MemTarget};
use certify_core::spec::InjectionWindow;
use certify_lint::{
    builtin_scenarios, certify_scenario, lint_mem_regions, lint_partition, lint_scenario, Code,
};
use proptest::prelude::*;

#[test]
fn every_builtin_scenario_lints_clean() {
    let scenarios = builtin_scenarios();
    assert!(scenarios.len() >= 14, "the sweep must cover E1–E7");
    for scenario in scenarios {
        let diags = lint_scenario(&scenario);
        assert!(
            diags.is_empty(),
            "built-in scenario `{}` must lint clean, got:\n{}",
            scenario.name,
            diags
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// One mutation: break an E3 scenario in a known way and name the
/// diagnostic code that must fire.
struct Mutation {
    name: &'static str,
    mutate: fn(&mut Scenario),
    expect: Code,
}

#[test]
fn every_spec_diagnostic_code_has_a_triggering_mutation() {
    let mutations: &[Mutation] = &[
        Mutation {
            name: "zero steps",
            mutate: |s| s.steps = 0,
            expect: Code::SpecZeroSteps,
        },
        Mutation {
            name: "empty targets",
            mutate: |s| s.spec.as_mut().unwrap().targets.clear(),
            expect: Code::SpecEmptyTargets,
        },
        Mutation {
            name: "zero rate",
            mutate: |s| s.spec.as_mut().unwrap().rate = 0,
            expect: Code::SpecZeroRate,
        },
        Mutation {
            name: "unsatisfiable rate",
            mutate: |s| s.spec.as_mut().unwrap().rate = u64::MAX,
            expect: Code::SpecUnsatisfiableRate,
        },
        Mutation {
            name: "zero time trigger",
            mutate: |s| s.spec.as_mut().unwrap().time_trigger = Some(0),
            expect: Code::SpecZeroTimeTrigger,
        },
        Mutation {
            name: "late time trigger",
            mutate: |s| {
                let steps = s.steps;
                s.spec.as_mut().unwrap().time_trigger = Some(steps);
            },
            expect: Code::SpecLateTimeTrigger,
        },
        Mutation {
            name: "cpu filter out of range",
            mutate: |s| s.spec.as_mut().unwrap().cpu_filter = Some(certify_arch::CpuId(7)),
            expect: Code::SpecCpuOutOfRange,
        },
        Mutation {
            name: "zero injection cap",
            mutate: |s| s.spec.as_mut().unwrap().max_injections = Some(0),
            expect: Code::SpecZeroInjectionCap,
        },
        Mutation {
            name: "inverted window",
            mutate: |s| {
                s.spec.as_mut().unwrap().windows = vec![
                    InjectionWindow { start: 9, end: 9 },
                    InjectionWindow::new(0, 50),
                ]
            },
            expect: Code::WindowInverted,
        },
        Mutation {
            name: "dead window beside a live one",
            mutate: |s| {
                let steps = s.steps;
                s.spec.as_mut().unwrap().windows = vec![
                    InjectionWindow::new(0, 50),
                    InjectionWindow::new(steps, steps + 10),
                ]
            },
            expect: Code::WindowDead,
        },
        Mutation {
            name: "all windows dead",
            mutate: |s| {
                let steps = s.steps;
                s.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(steps, steps + 10)]
            },
            expect: Code::WindowAllDead,
        },
        Mutation {
            name: "overlapping windows",
            mutate: |s| {
                s.spec.as_mut().unwrap().windows =
                    vec![InjectionWindow::new(0, 100), InjectionWindow::new(50, 150)]
            },
            expect: Code::WindowOverlap,
        },
        Mutation {
            name: "empty script",
            mutate: |s| s.script.ops.clear(),
            expect: Code::ScriptEmpty,
        },
        Mutation {
            name: "restart past script end",
            mutate: |s| {
                let end = s.script.ops.len();
                s.script
                    .ops
                    .push(certify_guest_linux::MgmtOp::Restart(end + 5));
            },
            expect: Code::ScriptRestartOutOfBounds,
        },
    ];
    for mutation in mutations {
        let mut scenario = Scenario::e3_fig3();
        (mutation.mutate)(&mut scenario);
        let codes: Vec<Code> = lint_scenario(&scenario).iter().map(|d| d.code).collect();
        assert!(
            codes.contains(&mutation.expect),
            "mutation `{}` must trigger {:?}, got {codes:?}",
            mutation.name,
            mutation.expect
        );
    }
}

/// Every certificate-interpreter code fires on a known mutation of a
/// clean scenario, mirroring the spec-analyzer table above. The codes
/// come out of `certify_scenario` (the abstract interpreter), not
/// `lint_scenario`.
#[test]
fn every_certificate_code_has_a_triggering_mutation() {
    use certify_guest_linux::{MgmtOp, MgmtScript};
    let mutations: &[Mutation] = &[
        Mutation {
            name: "cell op before enable",
            mutate: |s| s.script.ops = vec![MgmtOp::CreateCell],
            expect: Code::CertCellOpWithoutEnable,
        },
        Mutation {
            name: "cell op without create",
            mutate: |s| s.script.ops = vec![MgmtOp::Enable, MgmtOp::LoadCell],
            expect: Code::CertCellOpWithoutCreate,
        },
        Mutation {
            name: "double create",
            mutate: |s| s.script.ops = vec![MgmtOp::Enable, MgmtOp::CreateCell, MgmtOp::CreateCell],
            expect: Code::CertDoubleCreate,
        },
        Mutation {
            name: "start without load",
            mutate: |s| s.script.ops = vec![MgmtOp::Enable, MgmtOp::CreateCell, MgmtOp::StartCell],
            expect: Code::CertStartWithoutLoad,
        },
        Mutation {
            name: "wait without offline request",
            mutate: |s| s.script.ops = vec![MgmtOp::WaitCpuParked(1)],
            expect: Code::CertWaitWithoutOffline,
        },
        Mutation {
            name: "op shadowed by halt",
            mutate: |s| s.script.ops = vec![MgmtOp::Halt, MgmtOp::Delay(1)],
            expect: Code::CertUnreachableOp,
        },
        Mutation {
            name: "monitor without heartbeat",
            mutate: |s| {
                s.script = MgmtScript::bring_up_with_monitor(100, 10);
                s.rtos_heartbeat = false;
            },
            expect: Code::CertMonitorWithoutHeartbeat,
        },
        Mutation {
            name: "cell-backed region never mapped",
            mutate: |s| {
                s.script = MgmtScript::enable_attempt(3);
                s.mem_spec = Some(certify_core::spec::MemorySpec::e6_memory(
                    MemFaultModel::SingleBitFlip,
                    MemTarget::only(MemRegionKind::NonRootRam),
                ));
            },
            expect: Code::CertRegionUnmapped,
        },
        Mutation {
            name: "window too narrow for one fire",
            mutate: |s| s.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(0, 2)],
            expect: Code::CertZeroBudget,
        },
        Mutation {
            name: "script halts before the window opens",
            mutate: |s| {
                s.script = MgmtScript::bring_up_and_run(100);
                s.spec.as_mut().unwrap().windows = vec![InjectionWindow::new(3000, 4000)];
            },
            expect: Code::CertScriptEndsBeforeWindow,
        },
    ];
    for mutation in mutations {
        let mut scenario = Scenario::e3_fig3();
        (mutation.mutate)(&mut scenario);
        let codes: Vec<Code> = certify_scenario(&scenario)
            .1
            .iter()
            .map(|d| d.code)
            .collect();
        assert!(
            codes.contains(&mutation.expect),
            "mutation `{}` must trigger {:?}, got {codes:?}",
            mutation.name,
            mutation.expect
        );
    }
}

#[test]
fn memory_mutations_trigger_their_codes() {
    // Region codes go through `lint_mem_regions` (the constructors
    // panic on structurally bad targets, so the lint API takes raw
    // region lists).
    let cases: &[(&str, MemFaultModel, Vec<MemRegionKind>, Code)] = &[
        (
            "no regions",
            MemFaultModel::SingleBitFlip,
            vec![],
            Code::MemEmptyRegions,
        ),
        (
            "sub-word region",
            MemFaultModel::SingleBitFlip,
            vec![MemRegionKind::Custom { base: 64, size: 3 }],
            Code::MemRegionTooSmall,
        ),
        (
            "wrapping region",
            MemFaultModel::SingleBitFlip,
            vec![MemRegionKind::Custom {
                base: 0xffff_fffc,
                size: 8,
            }],
            Code::MemRegionWraps,
        ),
        (
            "region outside DRAM",
            MemFaultModel::PageBurst { words: 8 },
            vec![MemRegionKind::Custom {
                base: 0x1000_0000,
                size: 0x1000,
            }],
            Code::MemRegionOutsideRam,
        ),
        (
            "region straddling the DRAM edge",
            MemFaultModel::WordStuckAt { value: 0 },
            vec![MemRegionKind::Custom {
                base: certify_board::memmap::RAM_BASE - 0x800,
                size: 0x1000,
            }],
            Code::MemRegionStraddlesRam,
        ),
    ];
    for (name, model, regions, expect) in cases {
        let codes: Vec<Code> = lint_mem_regions(model, regions, "t")
            .iter()
            .map(|d| d.code)
            .collect();
        assert_eq!(codes, vec![*expect], "case `{name}`");
    }

    // The victim-cell and mixed-spec codes need whole scenarios.
    let mut scenario = Scenario::e6_memory(
        MemFaultModel::DescriptorInvalidate,
        MemTarget::only(MemRegionKind::Stage2Tables),
    );
    scenario.script = certify_guest_linux::MgmtScript::enable_attempt(3);
    let codes: Vec<Code> = lint_scenario(&scenario).iter().map(|d| d.code).collect();
    assert!(codes.contains(&Code::MemNoVictimCell), "{codes:?}");

    let mut scenario = Scenario::e7_mixed();
    {
        let spec = scenario.spec.as_mut().unwrap();
        spec.phase_jitter = false;
        spec.time_trigger = None;
    }
    let (targets, cpu_filter, rate) = {
        let spec = scenario.spec.as_ref().unwrap();
        (spec.targets.clone(), spec.cpu_filter, spec.rate)
    };
    {
        let mem = scenario.mem_spec.as_mut().unwrap();
        mem.targets = targets;
        mem.cpu_filter = cpu_filter;
        mem.rate = rate;
        mem.phase_jitter = false;
        mem.windows.clear();
    }
    let codes: Vec<Code> = lint_scenario(&scenario).iter().map(|d| d.code).collect();
    assert!(codes.contains(&Code::MixedPhaseLock), "{codes:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any window shrunk/shifted entirely past the horizon must fire
    /// window-all-dead; any window that still opens before the horizon
    /// must not.
    #[test]
    fn shrunk_windows_classify_by_horizon(start in 0u64..9000, len in 1u64..2000) {
        let mut scenario = Scenario::e3_fig3();
        let steps = scenario.steps;
        scenario.spec.as_mut().unwrap().windows =
            vec![InjectionWindow::new(start, start + len)];
        let codes: Vec<Code> = lint_scenario(&scenario).iter().map(|d| d.code).collect();
        if start >= steps {
            prop_assert_eq!(codes, vec![Code::WindowAllDead]);
        } else {
            prop_assert!(codes.is_empty(), "live window flagged: {:?}", codes);
        }
    }

    /// Custom regions classify against the DRAM window exactly as the
    /// runtime skip dispatch would: fully inside → clean, fully
    /// outside → guaranteed-skip warning, straddling → may-skip
    /// warning.
    #[test]
    fn shifted_regions_classify_by_ram_coverage(
        base in (0x3fff_0000u32..0x8001_0000).prop_map(|b| b & !3),
        size in (4u32..0x2_0000).prop_map(|s| s & !3),
    ) {
        prop_assume!(base.checked_add(size - 1).is_some());
        let region = MemRegionKind::Custom { base, size };
        let codes: Vec<Code> =
            lint_mem_regions(&MemFaultModel::SingleBitFlip, &[region], "t")
                .iter()
                .map(|d| d.code)
                .collect();
        let (ram_start, ram_end) = (
            certify_board::memmap::RAM_BASE as u64,
            certify_board::memmap::RAM_BASE as u64 + certify_board::memmap::RAM_SIZE as u64,
        );
        let (start, end) = (base as u64, base as u64 + size as u64);
        let expect = if start >= ram_start && end <= ram_end {
            vec![]
        } else if end <= ram_start || start >= ram_end {
            vec![Code::MemRegionOutsideRam]
        } else {
            vec![Code::MemRegionStraddlesRam]
        };
        prop_assert_eq!(codes, expect);
    }

    /// Whatever `partition` produces for any (trials, shards) lints
    /// clean — the coordinator's own partitions can never be refused.
    #[test]
    fn generated_partitions_always_lint_clean(trials in 0usize..10_000, shards in 0usize..64) {
        let ranges = certify_shard_partition(trials, shards);
        let diags = lint_partition(0, trials, &ranges);
        prop_assert!(diags.is_empty(), "partition({}, {}) flagged: {:?}", trials, shards, diags);
    }
}

/// Local re-implementation mirror of `certify_shard::partition` —
/// lint cannot depend on shard (shard depends on lint), so the
/// proptest pins the *contract* both sides implement.
fn certify_shard_partition(trials: usize, shards: usize) -> Vec<(usize, usize)> {
    let shards = shards.clamp(1, trials.max(1));
    (0..shards)
        .map(|i| {
            (
                i * trials / shards,
                (i + 1) * trials / shards - i * trials / shards,
            )
        })
        .collect()
}

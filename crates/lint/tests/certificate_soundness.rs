//! Soundness of the abstract interpreter's certificates.
//!
//! The certificate's contract is an over-approximation: every outcome
//! a concrete campaign can produce must be in the predicted set, and
//! no trial may exceed the certified injection budgets. These tests
//! run real campaigns over every built-in scenario behind a
//! `ConformanceMonitor` — and with the certificate attached to the
//! `Campaign` itself, so the engine's debug assertions double-check
//! each trial — and require zero violations. The `#[ignore]`d variant
//! runs 500 trials per scenario; CI runs it in release mode.

use certify_core::{Campaign, ConformanceMonitor, NullSink, Outcome};
use certify_lint::{builtin_scenarios, certify_scenario};
use std::sync::Arc;

/// Runs `trials` trials of every built-in scenario and asserts the
/// certificate predicted every observed behaviour.
fn assert_certificates_sound(trials: usize, base_seed: u64) {
    for scenario in builtin_scenarios() {
        let name = scenario.name.clone();
        let (certificate, diags) = certify_scenario(&scenario);
        assert!(
            diags.is_empty(),
            "built-in scenario `{name}` must certify clean, got {diags:?}"
        );
        let certificate = Arc::new(certificate);
        let campaign =
            Campaign::new(scenario, trials, base_seed).with_certificate(Arc::clone(&certificate));
        let mut monitor = ConformanceMonitor::new(Arc::clone(&certificate), NullSink);
        let stats = campaign.run_streamed(&mut monitor);
        assert_eq!(stats.trials, trials, "scenario `{name}`");
        assert!(
            monitor.is_conformant(),
            "scenario `{name}` violated its certificate {} time(s): {:?}",
            monitor.violations_total(),
            monitor.violations()
        );
    }
}

#[test]
fn builtin_certificates_are_sound_on_short_campaigns() {
    assert_certificates_sound(8, 0xC0FF_EE00);
}

/// The full-depth soundness sweep: 500 trials per built-in scenario.
/// Slow in debug builds — run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "500-trial sweep; run in release mode"]
fn builtin_certificates_are_sound_on_long_campaigns() {
    assert_certificates_sound(500, 0xC0FF_EE01);
}

/// The monitor is not vacuous: a deliberately narrowed certificate
/// (only `Correct` predicted, zero budget) must record violations on a
/// high-rate scenario that demonstrably produces failures.
#[test]
fn narrowed_certificate_is_caught_by_the_monitor() {
    let scenario = certify_core::Scenario::e1_root_high();
    let (mut certificate, diags) = certify_scenario(&scenario);
    assert!(diags.is_empty());
    certificate.outcomes.clear();
    certificate.outcomes.insert(Outcome::Correct);
    certificate.reg_budget = Some(0);
    let mut monitor = ConformanceMonitor::new(Arc::new(certificate), NullSink);
    Campaign::new(scenario, 16, 0xBAD_5EED).run_streamed(&mut monitor);
    assert!(
        !monitor.is_conformant(),
        "e1-root-high at 16 trials must trip a narrowed certificate"
    );
}

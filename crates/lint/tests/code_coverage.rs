//! Exhaustiveness of the diagnostic-code surface.
//!
//! Every code in `Code::ALL` must carry a canonical severity and a
//! non-empty description, appear as a row in the README's diagnostic
//! table, and be exercised by at least one test outside its
//! definition site — so a code can never be added without docs and a
//! triggering test, and never retired while docs still advertise it.

use certify_lint::{Code, Severity};
use std::fs;
use std::path::{Path, PathBuf};

/// The README at the repository root, resolved from this crate.
fn readme() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../README.md");
    fs::read_to_string(&path).expect("README.md at the repository root")
}

/// All `.rs` files under the lint crate's `src/` and `tests/`.
fn lint_sources() -> Vec<(PathBuf, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut out = Vec::new();
    for dir in ["src", "tests"] {
        collect(&root.join(dir), &mut out);
    }
    out
}

fn collect(dir: &Path, out: &mut Vec<(PathBuf, String)>) {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("readable source dir")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, out);
        } else if path.extension().is_some_and(|ext| ext == "rs") {
            let source = fs::read_to_string(&path).expect("readable source file");
            out.push((path, source));
        }
    }
}

#[test]
fn every_code_has_a_severity_and_description() {
    assert!(Code::ALL.len() >= 43, "codes must not silently disappear");
    for &code in Code::ALL {
        assert!(
            matches!(code.severity(), Severity::Error | Severity::Warning),
            "{code:?}"
        );
        let describe = code.describe();
        assert!(
            describe.len() > 20 && describe.ends_with('.'),
            "{code:?} needs a real description, got `{describe}`"
        );
        let name = code.as_str();
        assert!(
            !name.is_empty()
                && name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'),
            "{code:?} string form `{name}` must be kebab-case"
        );
    }
}

#[test]
fn every_code_has_a_readme_table_row() {
    let readme = readme();
    for &code in Code::ALL {
        let row = format!("| `{}` |", code.as_str());
        assert!(
            readme.contains(&row),
            "README diagnostic table is missing a row for `{}`",
            code.as_str()
        );
        // The row's severity column must agree with the code's.
        let sev = match code.severity() {
            Severity::Error => "E",
            Severity::Warning => "W",
        };
        let full = format!("| `{}` | {sev} |", code.as_str());
        assert!(
            readme.contains(&full),
            "README row for `{}` disagrees with its canonical severity {sev}",
            code.as_str()
        );
    }
}

#[test]
fn every_code_is_exercised_outside_its_definition() {
    let sources = lint_sources();
    for &code in Code::ALL {
        let needle = format!("Code::{code:?}");
        let hits = sources
            .iter()
            .filter(|(path, source)| !path.ends_with("diagnostic.rs") && source.contains(&needle))
            .count();
        assert!(
            hits > 0,
            "`{needle}` is never referenced outside diagnostic.rs — \
             it has no triggering test"
        );
    }
}

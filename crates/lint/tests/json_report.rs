//! Byte-stability of the `certify-lint --json` report.
//!
//! The JSON report is the machine-readable surface CI and tooling
//! parse; its shape and byte-level rendering must not drift by
//! accident. A doctored scenario that trips both the spec analyzer
//! (warning) and the certificate interpreter (error) is rendered
//! through the same `report_to_json` the binary uses, and compared
//! byte-for-byte against a committed fixture.

use certify_core::spec::InjectionWindow;
use certify_core::Scenario;
use certify_lint::{certify_scenario, lint_scenario, report_to_json, PassReport};

/// The committed golden rendering (exactly what the binary prints,
/// including the trailing newline).
const GOLDEN: &str = include_str!("fixtures/report.json.golden");

/// E3 doctored to produce deterministic findings in two passes: a
/// zero injection cap (spec warning) and a window too short for one
/// fire at E3's cadence (certificate error).
fn doctored_scenario() -> Scenario {
    let mut scenario = Scenario::e3_fig3();
    let spec = scenario.spec.as_mut().unwrap();
    spec.max_injections = Some(0);
    spec.windows = vec![InjectionWindow::new(0, 2)];
    scenario
}

fn render_report() -> String {
    let scenario = doctored_scenario();
    let reports = vec![
        PassReport {
            pass: "specs",
            diagnostics: lint_scenario(&scenario),
        },
        PassReport {
            pass: "certify",
            diagnostics: certify_scenario(&scenario).1,
        },
    ];
    format!("{}\n", report_to_json(&reports).render())
}

#[test]
fn json_report_rendering_is_byte_stable() {
    let rendered = render_report();
    assert!(
        rendered.contains("cert-zero-budget") && rendered.contains("spec-zero-injection-cap"),
        "the doctored scenario no longer trips both passes:\n{rendered}"
    );
    assert_eq!(
        rendered, GOLDEN,
        "JSON report drifted from tests/fixtures/report.json.golden; \
         if the change is deliberate, update the fixture to:\n{rendered}"
    );
}

#[test]
fn json_report_is_deterministic_across_renders() {
    assert_eq!(render_report(), render_report());
}

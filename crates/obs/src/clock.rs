//! The deterministic timing discipline.
//!
//! The framework's whole claim rests on seeded replay, and wall-clock
//! reads are a nondeterminism source — so the determinism audit
//! (`certify-lint audit`) forbids `Instant::now` outright on the
//! trial-hot-path crates. Telemetry still needs real time: every
//! wall-clock read in the workspace therefore goes through the
//! [`Clock`] trait. [`MonotonicClock`] is the single audited
//! exception (allowlisted for this file only in
//! `crates/lint/determinism-allow.txt`); [`ManualClock`] gives tests
//! fully scripted time, which is how the equivalence suite proves
//! timing can never leak into trial results.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock. Implementations must be monotonic
/// (successive reads never decrease) but need not be wall time —
/// [`ManualClock`] only moves when a test advances it.
pub trait Clock {
    /// Nanoseconds since this clock's arbitrary origin.
    fn now_ns(&self) -> u64;
}

/// The real monotonic clock, anchored at construction time.
///
/// This is the only place in the workspace that reads `Instant::now`
/// (audited: telemetry-only — the value feeds histograms and progress
/// snapshots, never a trial).
#[derive(Debug, Clone, Copy)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A scripted clock for tests: time only moves when told to.
///
/// The counter is atomic so one `ManualClock` can be shared across the
/// engine's worker threads (`&ManualClock` is `Sync`), keeping
/// observed test runs fully deterministic.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at 0 ns.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// A clock frozen at `now_ns`.
    pub fn at(now_ns: u64) -> ManualClock {
        ManualClock {
            now_ns: AtomicU64::new(now_ns),
        }
    }

    /// Advances the clock by `delta_ns` (saturating).
    pub fn advance(&self, delta_ns: u64) {
        self.now_ns
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |now| {
                Some(now.saturating_add(delta_ns))
            })
            .expect("fetch_update closure never fails");
    }

    /// Jumps the clock to `now_ns`. Monotonicity is the caller's
    /// contract; tests that jump backwards get what they asked for.
    pub fn set(&self, now_ns: u64) {
        self.now_ns.store(now_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_fully_scripted() {
        let clock = ManualClock::new();
        assert_eq!(clock.now_ns(), 0);
        clock.advance(250);
        assert_eq!(clock.now_ns(), 250);
        clock.advance(u64::MAX);
        assert_eq!(clock.now_ns(), u64::MAX, "advance saturates");
        clock.set(42);
        assert_eq!(clock.now_ns(), 42);
        assert_eq!(ManualClock::at(7).now_ns(), 7);
    }

    #[test]
    fn manual_clock_is_shareable_across_threads() {
        let clock = ManualClock::new();
        std::thread::scope(|scope| {
            let clock = &clock;
            for _ in 0..4 {
                scope.spawn(move || clock.advance(10));
            }
        });
        assert_eq!(clock.now_ns(), 40);
    }
}

//! Byte-counting I/O adapters.
//!
//! Transports that want wire-volume metrics wrap their streams in
//! [`CountingReader`] instead of re-buffering or re-encoding: the
//! adapter is transparent to the framing layer above it and costs one
//! addition per `read`.

use std::io::Read;

/// A [`Read`] adapter that counts the bytes flowing through it.
#[derive(Debug)]
pub struct CountingReader<R> {
    inner: R,
    bytes: u64,
}

impl<R> CountingReader<R> {
    /// Wraps `inner` with a zeroed byte count.
    pub fn new(inner: R) -> CountingReader<R> {
        CountingReader { inner, bytes: 0 }
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.bytes
    }

    /// The wrapped reader.
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Unwraps, discarding the count.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for CountingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufReader, Cursor};

    #[test]
    fn counts_exactly_the_bytes_read() {
        let mut reader = CountingReader::new(Cursor::new(vec![0u8; 100]));
        let mut buf = [0u8; 30];
        reader.read_exact(&mut buf).unwrap();
        assert_eq!(reader.bytes_read(), 30);
        let mut rest = Vec::new();
        reader.read_to_end(&mut rest).unwrap();
        assert_eq!(rest.len(), 70);
        assert_eq!(reader.bytes_read(), 100);
        assert_eq!(reader.get_ref().position(), 100);
        assert_eq!(reader.into_inner().into_inner().len(), 100);
    }

    #[test]
    fn buffered_reads_are_still_counted() {
        // The intended composition: BufReader<CountingReader<pipe>> —
        // the count then reflects bytes pulled off the pipe, which for
        // a fully drained stream equals the payload size.
        let data: Vec<u8> = (0..=255).collect();
        let mut reader = BufReader::new(CountingReader::new(Cursor::new(data.clone())));
        let mut out = Vec::new();
        reader.read_to_end(&mut out).unwrap();
        assert_eq!(out, data);
        assert_eq!(reader.get_ref().bytes_read(), 256);
    }
}

//! `certify-obs` — the observability substrate of the campaign stack.
//!
//! A campaign run is a black box without telemetry: the coordinator
//! gives no sign of per-shard health, retries, throughput or ETA until
//! the final merge, and the engine's phase costs are only visible to
//! one-off bench binaries. This crate is the dependency-free layer the
//! execution tiers thread their instrumentation through:
//!
//! * [`metrics`] — counters, gauges and fixed-bucket latency
//!   histograms (p50/p90/p99/max), all with a `merge()` law mirroring
//!   `CampaignStats`: shards fold locally, the coordinator merges, and
//!   shard-fold == single-fold. [`metrics::EngineMetrics`] and
//!   [`metrics::ShardMetrics`] bundle the per-tier instrument sets.
//! * [`clock`] — the deterministic timing discipline. Every wall-clock
//!   read in the workspace goes through the [`clock::Clock`] trait:
//!   [`clock::MonotonicClock`] is the *only* allowlisted
//!   `Instant::now` site (see `crates/lint/determinism-allow.txt`),
//!   and [`clock::ManualClock`] gives tests fully scripted time.
//! * [`progress`] — live campaign progress: the
//!   [`progress::ProgressObserver`] hook the streamed engine and the
//!   shard coordinator call with throughput / outcome-histogram / ETA
//!   [`progress::ProgressSnapshot`]s.
//! * [`io`] — byte-counting I/O adapters ([`io::CountingReader`]) so
//!   frame transports can report wire volume without re-buffering.
//! * [`trace`] — the causal trace layer: the step-stamped
//!   [`trace::TraceEvent`] vocabulary, the zero-cost-when-off
//!   [`trace::Tracer`] trait, and the bounded ring-buffer
//!   [`trace::FlightRecorder`] behind the cloneable
//!   [`trace::TraceLog`] handle the testbed's event sites share.
//!
//! The cardinal rule, pinned by `tests/hotpath_equivalence.rs` one
//! level up: **telemetry never influences trial results**. Observed
//! and unobserved runs of the same seeds produce identical stats and
//! byte-identical CSV; the clock feeds histograms, never the engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod io;
pub mod metrics;
pub mod progress;
pub mod trace;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use io::CountingReader;
pub use metrics::{
    Counter, EngineMetrics, Gauge, Histogram, PhaseSample, ShardMetrics, TrialPhaseMetrics,
};
pub use progress::{
    CollectObserver, NullObserver, ProgressObserver, ProgressSnapshot, ProgressTracker,
};
pub use trace::{FlightRecorder, NullTracer, TraceEvent, TraceKind, TraceLog, Tracer, NO_CPU};

//! Mergeable metrics: counters, gauges and latency histograms.
//!
//! Every instrument here obeys the same algebra as `CampaignStats`:
//! `merge` is associative, the default value is a two-sided identity,
//! and folding per-shard metrics equals folding everything in one
//! place (shard-fold == single-fold) — pinned by
//! `tests/metrics_merge.rs` at the workspace root. That law is what
//! lets workers keep thread-local instruments on the hot path and
//! fold them once at the end, and lets the shard coordinator merge
//! per-process metrics exactly as it merges stats.

/// A monotonically increasing event count. Merge law: sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.add(1);
    }

    /// Adds `n` (saturating — a counter pegs rather than wraps).
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.value
    }

    /// Folds another counter in.
    pub fn merge(&mut self, other: &Counter) {
        self.add(other.value);
    }
}

/// A high-water-mark gauge. Merge law: max — merged gauges answer
/// "what was the worst level anywhere", the question that matters
/// when shards report independently.
///
/// The gauge deliberately keeps *only* the high-water mark. An
/// earlier version also tracked the last-set level, which made
/// `merge` depend on fold order (whichever side happened to be set
/// last won) and broke full shard-fold == single-fold equality. Max
/// is commutative, associative and idempotent, so any fold order
/// gives the same gauge — pinned by `tests/metrics_merge.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Gauge {
    high_water: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Records a level, raising the high-water mark if it is a new
    /// maximum.
    pub fn set(&mut self, value: u64) {
        self.high_water = self.high_water.max(value);
    }

    /// The largest level ever recorded.
    pub fn get(&self) -> u64 {
        self.high_water
    }

    /// The largest level ever recorded.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Folds another gauge in (max).
    pub fn merge(&mut self, other: &Gauge) {
        self.high_water = self.high_water.max(other.high_water);
    }
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Buckets are defined by ascending inclusive upper `bounds`; one
/// extra overflow bucket catches samples above the last bound.
/// Quantiles are conservative bucket-upper-bound estimates clamped to
/// the observed `[min, max]` — exact at the resolution of the bucket
/// layout, never below the true value within a bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Ascending inclusive upper bounds of the regular buckets.
    bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts[bounds.len()]` is overflow.
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    /// `u64::MAX` sentinel while empty, so merge adopts the other
    /// side's minimum for free.
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over the given ascending, non-empty bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn with_bounds(bounds: Vec<u64>) -> Histogram {
        assert!(!bounds.is_empty(), "a histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = bounds.len() + 1;
        Histogram {
            bounds,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// The stock latency layout: a 1-2-5 series from 1 µs to 1 s, in
    /// nanoseconds. Wide enough for boot-to-classify phase timings at
    /// both debug and release speeds; sub-microsecond samples land in
    /// the first bucket.
    pub fn latency_ns() -> Histogram {
        let mut bounds = Vec::with_capacity(19);
        for decade in [
            1_000u64,
            10_000,
            100_000,
            1_000_000,
            10_000_000,
            100_000_000,
        ] {
            for step in [1, 2, 5] {
                bounds.push(decade * step);
            }
        }
        bounds.push(1_000_000_000);
        Histogram::with_bounds(bounds)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = self.bounds.partition_point(|&bound| bound < value);
        self.counts[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 while empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 while empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 while empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The bucket bounds this histogram was built with.
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The conservative `q`-quantile estimate (`q` clamped to
    /// `[0, 1]`): the upper bound of the bucket holding the rank-`⌈q·n⌉`
    /// sample, clamped to the observed `[min, max]`. Overflow-bucket
    /// ranks report `max`. 0 while empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0;
        for (bucket, &count) in self.counts.iter().enumerate() {
            cumulative += count;
            if cumulative >= rank {
                let estimate = if bucket < self.bounds.len() {
                    self.bounds[bucket]
                } else {
                    self.max
                };
                return estimate.clamp(self.min, self.max);
            }
        }
        unreachable!("rank is at most the total count");
    }

    /// Median estimate — see [`Histogram::quantile`].
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate — see [`Histogram::quantile`].
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate — see [`Histogram::quantile`].
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds another histogram in.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ — merging histograms of
    /// different resolution would silently degrade both.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket layouts"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::latency_ns()
    }
}

/// One trial's phase timings, as measured by
/// `TrialRunner::run_trial_observed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseSample {
    /// System construction + injector installation.
    pub boot_ns: u64,
    /// Steps before the first injection window opens.
    pub steady_ns: u64,
    /// Steps from the first window's opening to the horizon.
    pub injection_ns: u64,
    /// Outcome classification + report assembly.
    pub classify_ns: u64,
}

impl PhaseSample {
    /// The whole trial's wall time.
    pub fn total_ns(&self) -> u64 {
        self.boot_ns
            .saturating_add(self.steady_ns)
            .saturating_add(self.injection_ns)
            .saturating_add(self.classify_ns)
    }
}

/// Per-phase latency histograms over many trials.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrialPhaseMetrics {
    /// Boot-phase latencies.
    pub boot: Histogram,
    /// Steady-state-phase latencies.
    pub steady_state: Histogram,
    /// Injection-phase latencies.
    pub injection: Histogram,
    /// Classification latencies.
    pub classify: Histogram,
    /// Whole-trial latencies.
    pub total: Histogram,
}

impl TrialPhaseMetrics {
    /// Folds one trial's phase sample in.
    pub fn record(&mut self, sample: &PhaseSample) {
        self.boot.record(sample.boot_ns);
        self.steady_state.record(sample.steady_ns);
        self.injection.record(sample.injection_ns);
        self.classify.record(sample.classify_ns);
        self.total.record(sample.total_ns());
    }

    /// Folds another instrument set in.
    pub fn merge(&mut self, other: &TrialPhaseMetrics) {
        self.boot.merge(&other.boot);
        self.steady_state.merge(&other.steady_state);
        self.injection.merge(&other.injection);
        self.classify.merge(&other.classify);
        self.total.merge(&other.total);
    }
}

/// The in-process campaign engine's instrument set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineMetrics {
    /// Trials executed.
    pub trials: Counter,
    /// Per-phase trial latencies.
    pub phases: TrialPhaseMetrics,
    /// Reorder-buffer residency (completed-but-undelivered reports);
    /// the high-water mark is the engine's O(workers) bound made
    /// visible.
    pub reorder_residency: Gauge,
    /// Rows delivered to the sink.
    pub sink_rows: Counter,
    /// Bytes the sink reported writing (0 for sinks that don't count).
    pub sink_bytes: Counter,
}

impl EngineMetrics {
    /// Folds another engine's metrics in.
    pub fn merge(&mut self, other: &EngineMetrics) {
        self.trials.merge(&other.trials);
        self.phases.merge(&other.phases);
        self.reorder_residency.merge(&other.reorder_residency);
        self.sink_rows.merge(&other.sink_rows);
        self.sink_bytes.merge(&other.sink_bytes);
    }
}

/// One shard's (or a whole sharded run's, once merged) coordinator-
/// side instrument set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardMetrics {
    /// Rows accepted from workers on successful attempts.
    pub rows: Counter,
    /// Protocol frames read (all kinds, all attempts).
    pub frames: Counter,
    /// Wire bytes read off worker pipes (all attempts).
    pub frame_bytes: Counter,
    /// Frames rejected for a CRC mismatch.
    pub crc_rejects: Counter,
    /// Failed worker attempts that were retried.
    pub retries: Counter,
    /// Rows received on failed attempts — work a replacement worker
    /// re-executes, i.e. the price of crash recovery.
    pub wasted_rerun_trials: Counter,
    /// Wall time of the shard (max across merged shards — the
    /// critical-path shard).
    pub elapsed_ns: Gauge,
}

impl ShardMetrics {
    /// Successful-row throughput against the critical-path shard's
    /// wall time (0.0 before any time elapsed).
    pub fn rows_per_sec(&self) -> f64 {
        let elapsed = self.elapsed_ns.high_water();
        if elapsed == 0 {
            0.0
        } else {
            self.rows.get() as f64 * 1e9 / elapsed as f64
        }
    }

    /// Folds another shard's metrics in.
    pub fn merge(&mut self, other: &ShardMetrics) {
        self.rows.merge(&other.rows);
        self.frames.merge(&other.frames);
        self.frame_bytes.merge(&other.frame_bytes);
        self.crc_rejects.merge(&other.crc_rejects);
        self.retries.merge(&other.retries);
        self.wasted_rerun_trials.merge(&other.wasted_rerun_trials);
        self.elapsed_ns.merge(&other.elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_saturates() {
        let mut counter = Counter::new();
        counter.inc();
        counter.add(4);
        assert_eq!(counter.get(), 5);
        counter.add(u64::MAX);
        assert_eq!(counter.get(), u64::MAX);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let mut gauge = Gauge::new();
        gauge.set(7);
        gauge.set(3);
        assert_eq!(gauge.get(), 7);
        assert_eq!(gauge.high_water(), 7);
        let mut other = Gauge::new();
        other.set(5);
        gauge.merge(&other);
        assert_eq!(gauge.high_water(), 7);
        // Merge is commutative: the other direction lands in the same
        // place.
        let mut reversed = Gauge::new();
        reversed.set(5);
        let mut seven = Gauge::new();
        seven.set(7);
        seven.set(3);
        reversed.merge(&seven);
        assert_eq!(reversed, gauge);
    }

    #[test]
    fn histogram_buckets_are_inclusive_upper_bounds() {
        let mut h = Histogram::with_bounds(vec![10, 20, 30]);
        // Values exactly on a bound land in that bound's bucket.
        for value in [1, 10, 11, 20, 30] {
            h.record(value);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 0]);
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn histogram_overflow_reports_the_observed_max() {
        let mut h = Histogram::with_bounds(vec![10]);
        h.record(1_000);
        h.record(2_000);
        assert_eq!(h.counts(), &[0, 2]);
        // Every rank sits in the overflow bucket, whose only honest
        // (conservative) estimate is the observed max.
        assert_eq!(h.quantile(0.5), 2_000);
        assert_eq!(h.quantile(1.0), 2_000);
        assert_eq!(h.p99(), 2_000);
        assert_eq!(h.min(), 1_000);
    }

    #[test]
    fn quantiles_are_conservative_bucket_upper_bounds() {
        let mut h = Histogram::with_bounds(vec![10, 20, 30, 40]);
        for value in [5, 15, 25, 35] {
            h.record(value);
        }
        assert_eq!(h.p50(), 20);
        assert_eq!(h.p90(), 35, "clamped to observed max");
        assert_eq!(h.quantile(0.0), 10, "rank clamps to the first sample");
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn empty_histogram_is_harmless() {
        let h = Histogram::latency_ns();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    #[should_panic(expected = "different bucket layouts")]
    fn merging_mismatched_layouts_panics() {
        let mut a = Histogram::with_bounds(vec![10]);
        a.merge(&Histogram::with_bounds(vec![20]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_are_rejected() {
        Histogram::with_bounds(vec![10, 10]);
    }

    #[test]
    fn phase_sample_total_saturates() {
        let sample = PhaseSample {
            boot_ns: u64::MAX,
            steady_ns: 1,
            injection_ns: 1,
            classify_ns: 1,
        };
        assert_eq!(sample.total_ns(), u64::MAX);
    }

    #[test]
    fn engine_metrics_merge_is_fieldwise() {
        let mut a = EngineMetrics::default();
        a.trials.add(3);
        a.phases.record(&PhaseSample {
            boot_ns: 1_000,
            steady_ns: 2_000,
            injection_ns: 3_000,
            classify_ns: 500,
        });
        a.reorder_residency.set(2);
        let mut b = EngineMetrics::default();
        b.trials.add(4);
        b.reorder_residency.set(5);
        a.merge(&b);
        assert_eq!(a.trials.get(), 7);
        assert_eq!(a.reorder_residency.high_water(), 5);
        assert_eq!(a.phases.total.count(), 1);
        assert_eq!(a.phases.total.min(), 6_500);
    }

    #[test]
    fn shard_metrics_rate_uses_the_critical_path() {
        let mut m = ShardMetrics::default();
        assert_eq!(m.rows_per_sec(), 0.0);
        m.rows.add(500);
        m.elapsed_ns.set(250_000_000);
        let mut other = ShardMetrics::default();
        other.rows.add(500);
        other.elapsed_ns.set(500_000_000);
        m.merge(&other);
        assert_eq!(m.rows.get(), 1_000);
        // 1000 rows against the slowest shard's 0.5 s.
        assert_eq!(m.rows_per_sec(), 2_000.0);
    }
}

//! Live campaign progress: snapshots, observers, and the tracker that
//! derives throughput and ETA.
//!
//! The streamed engine and the shard coordinator call a
//! [`ProgressObserver`] with periodic [`ProgressSnapshot`]s — the
//! worker `Stats` frames that previously evaporated on validation,
//! surfaced as throughput / outcome-histogram / ETA views. Observers
//! are pure consumers: nothing they see or do can influence trial
//! results (pinned by the instrumented-vs-uninstrumented equivalence
//! tests).

use crate::clock::Clock;

/// One progress observation of a running campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// The reporting shard, or `None` for whole-campaign snapshots
    /// (the in-process engine, or the coordinator's final merge).
    pub source: Option<u32>,
    /// Trials completed by the source so far.
    pub done: u64,
    /// Trials the source will run in total.
    pub total: u64,
    /// Nanoseconds since the source started.
    pub elapsed_ns: u64,
    /// Completion throughput so far (0.0 before any time elapsed).
    pub rows_per_sec: f64,
    /// Estimated nanoseconds to completion, when the rate is non-zero.
    pub eta_ns: Option<u64>,
    /// Outcome histogram of the completed trials, as rendered outcome
    /// names with counts, in deterministic (classification
    /// precedence) order.
    pub outcomes: Vec<(String, u64)>,
}

/// A consumer of [`ProgressSnapshot`]s.
pub trait ProgressObserver {
    /// Called with each new snapshot, in source-local order.
    fn on_progress(&mut self, snapshot: &ProgressSnapshot);
}

/// Discards every snapshot — the unobserved default.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ProgressObserver for NullObserver {
    fn on_progress(&mut self, _snapshot: &ProgressSnapshot) {}
}

/// Buffers every snapshot (tests, post-run reporting).
#[derive(Debug, Clone, Default)]
pub struct CollectObserver {
    /// The snapshots received, in delivery order.
    pub snapshots: Vec<ProgressSnapshot>,
}

impl CollectObserver {
    /// An empty collector.
    pub fn new() -> CollectObserver {
        CollectObserver::default()
    }
}

impl ProgressObserver for CollectObserver {
    fn on_progress(&mut self, snapshot: &ProgressSnapshot) {
        self.snapshots.push(snapshot.clone());
    }
}

/// Any `FnMut(&ProgressSnapshot)` closure is an observer.
impl<F: FnMut(&ProgressSnapshot)> ProgressObserver for F {
    fn on_progress(&mut self, snapshot: &ProgressSnapshot) {
        self(snapshot)
    }
}

/// Derives throughput and ETA snapshots from a [`Clock`], anchored at
/// construction.
#[derive(Clone, Copy)]
pub struct ProgressTracker<'c> {
    clock: &'c dyn Clock,
    start_ns: u64,
    source: Option<u32>,
    total: u64,
}

impl<'c> ProgressTracker<'c> {
    /// A tracker for `total` trials from `source`, anchored at the
    /// clock's current reading.
    pub fn new(clock: &'c dyn Clock, source: Option<u32>, total: u64) -> ProgressTracker<'c> {
        ProgressTracker {
            start_ns: clock.now_ns(),
            clock,
            source,
            total,
        }
    }

    /// A snapshot for `done` completed trials with the given outcome
    /// histogram.
    pub fn snapshot(&self, done: u64, outcomes: Vec<(String, u64)>) -> ProgressSnapshot {
        let elapsed_ns = self.clock.now_ns().saturating_sub(self.start_ns);
        let rows_per_sec = if elapsed_ns == 0 {
            0.0
        } else {
            done as f64 * 1e9 / elapsed_ns as f64
        };
        let remaining = self.total.saturating_sub(done);
        let eta_ns = if rows_per_sec > 0.0 {
            Some((remaining as f64 * 1e9 / rows_per_sec) as u64)
        } else {
            None
        };
        ProgressSnapshot {
            source: self.source,
            done,
            total: self.total,
            elapsed_ns,
            rows_per_sec,
            eta_ns,
            outcomes,
        }
    }
}

impl std::fmt::Debug for ProgressTracker<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressTracker")
            .field("start_ns", &self.start_ns)
            .field("source", &self.source)
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn tracker_derives_rate_and_eta() {
        let clock = ManualClock::new();
        let tracker = ProgressTracker::new(&clock, Some(2), 100);
        clock.advance(1_000_000_000); // 1 s
        let snap = tracker.snapshot(25, vec![("correct".into(), 25)]);
        assert_eq!(snap.source, Some(2));
        assert_eq!(snap.done, 25);
        assert_eq!(snap.total, 100);
        assert_eq!(snap.elapsed_ns, 1_000_000_000);
        assert_eq!(snap.rows_per_sec, 25.0);
        // 75 remaining at 25/s = 3 s.
        assert_eq!(snap.eta_ns, Some(3_000_000_000));
        assert_eq!(snap.outcomes, vec![("correct".to_string(), 25)]);
    }

    #[test]
    fn zero_elapsed_means_no_rate_and_no_eta() {
        let clock = ManualClock::new();
        let tracker = ProgressTracker::new(&clock, None, 10);
        let snap = tracker.snapshot(0, Vec::new());
        assert_eq!(snap.rows_per_sec, 0.0);
        assert_eq!(snap.eta_ns, None);
    }

    #[test]
    fn observers_collect_and_close_over() {
        let clock = ManualClock::at(5);
        let tracker = ProgressTracker::new(&clock, None, 4);
        clock.advance(10);
        let snap = tracker.snapshot(4, Vec::new());

        let mut collect = CollectObserver::new();
        collect.on_progress(&snap);
        assert_eq!(collect.snapshots.len(), 1);
        assert_eq!(collect.snapshots[0].done, 4);

        let mut seen = 0u64;
        let mut closure = |s: &ProgressSnapshot| seen += s.done;
        closure.on_progress(&snap);
        assert_eq!(seen, 4);

        NullObserver.on_progress(&snap); // must not blow up
    }
}

//! The causal trace layer: a step-stamped, fixed-vocabulary event
//! stream and the bounded ring-buffer flight recorder that captures
//! it.
//!
//! The campaign stack answers *which* outcome a fault produced; this
//! module answers *how it got there*. Event sites across the testbed
//! (injectors, hypervisor handlers, the RTOS scheduler, the watchdog,
//! the classifier) emit [`TraceEvent`]s through a cloneable
//! [`TraceLog`] handle. Components hold an `Option<TraceLog>`: `None`
//! is the zero-cost-when-off path — a single branch per site, no
//! allocation, no locking.
//!
//! The recorder is a bounded ring ([`FlightRecorder`]): a trial that
//! runs long keeps only the most recent `capacity` events plus a
//! count of how many were dropped, exactly like an aircraft flight
//! recorder. Anomalous trials dump the ring; everything else is
//! discarded with the trial.
//!
//! Two invariants, pinned by tests one level up:
//!
//! * **Determinism** — the event stream is a pure function of the
//!   trial seed; sequential, parallel and sharded executions of the
//!   same seed record identical streams.
//! * **Isolation** — tracing never influences trial results; traced
//!   and untraced runs of the same seed produce identical outcomes.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The `cpu` value for events not attributable to a single CPU
/// (memory-domain injections, watchdog bites, classifier verdicts).
pub const NO_CPU: u32 = u32::MAX;

/// The fixed trace vocabulary. Every event a trial can record is one
/// of these kinds; the numeric code of a kind is its position in
/// [`TraceKind::ALL`] and is pinned by the wire schema — append new
/// kinds, never reorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceKind {
    /// A register-domain fault was applied inside a handler.
    /// `arg_a` = handler code, `arg_b` = per-handler call index.
    InjectionApplied,
    /// A memory-domain fault was applied. `arg_a` = fault count.
    MemInjectionApplied,
    /// A memory-domain injection fired but was skipped (unbacked
    /// target, predicted-dead address). `arg_a` = filtered-call count.
    MemInjectionSkipped,
    /// A hypervisor handler was entered. `arg_a` = handler code,
    /// `arg_b` = per-handler call index.
    HandlerEntry,
    /// A guest trap reached the hypervisor. `arg_a` = encoded
    /// syndrome, `arg_b` = faulting address.
    TrapTaken,
    /// A CPU was parked. `arg_a` = park-reason discriminant,
    /// `arg_b` = trap class code (0 unless an unhandled trap).
    CpuParked,
    /// The RTOS scheduler picked a task. `arg_a` = task id.
    SchedDecision,
    /// The watchdog expired. `arg_a` = expiry count so far.
    WatchdogBite,
    /// The hypervisor noticed guest-visible memory corruption and the
    /// orchestrator delivered the notice. `arg_a` = victim cell id.
    CorruptionNotice,
    /// The classifier's verdict, always the final event of a traced
    /// trial. `arg_a` = outcome code.
    ClassifyVerdict,
}

impl TraceKind {
    /// Every kind, in code order.
    pub const ALL: [TraceKind; 10] = [
        TraceKind::InjectionApplied,
        TraceKind::MemInjectionApplied,
        TraceKind::MemInjectionSkipped,
        TraceKind::HandlerEntry,
        TraceKind::TrapTaken,
        TraceKind::CpuParked,
        TraceKind::SchedDecision,
        TraceKind::WatchdogBite,
        TraceKind::CorruptionNotice,
        TraceKind::ClassifyVerdict,
    ];

    /// The kind's stable snake_case name (used in JSON and Chrome
    /// traces).
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::InjectionApplied => "injection_applied",
            TraceKind::MemInjectionApplied => "mem_injection_applied",
            TraceKind::MemInjectionSkipped => "mem_injection_skipped",
            TraceKind::HandlerEntry => "handler_entry",
            TraceKind::TrapTaken => "trap_taken",
            TraceKind::CpuParked => "cpu_parked",
            TraceKind::SchedDecision => "sched_decision",
            TraceKind::WatchdogBite => "watchdog_bite",
            TraceKind::CorruptionNotice => "corruption_notice",
            TraceKind::ClassifyVerdict => "classify_verdict",
        }
    }

    /// The kind's wire code: its position in [`TraceKind::ALL`].
    pub fn code(&self) -> u8 {
        TraceKind::ALL
            .iter()
            .position(|kind| kind == self)
            .expect("every kind is in ALL") as u8
    }

    /// The kind for a wire code, if in range.
    pub fn from_code(code: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(code as usize).copied()
    }
}

/// One step-stamped trace event.
///
/// The two argument words are kind-specific (see [`TraceKind`]); an
/// event is 29 bytes on the wire and `Copy` in memory so the hot path
/// never allocates per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// The machine step at which the event occurred.
    pub step: u64,
    /// The CPU involved, or [`NO_CPU`].
    pub cpu: u32,
    /// What happened.
    pub kind: TraceKind,
    /// First kind-specific argument.
    pub arg_a: u64,
    /// Second kind-specific argument.
    pub arg_b: u64,
}

/// A consumer of trace events. [`FlightRecorder`] is the stock
/// implementation; tests substitute their own to assert on streams.
pub trait Tracer {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);
}

/// The no-op tracer: every event vanishes.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullTracer;

impl Tracer for NullTracer {
    fn record(&mut self, _event: TraceEvent) {}
}

/// A bounded ring buffer of the most recent trace events.
///
/// Once `capacity` events are held, each new event evicts the oldest;
/// `total` keeps counting, so `dropped()` reports exactly how much of
/// the stream's head was lost.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    events: VecDeque<TraceEvent>,
    total: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            events: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (at most `capacity`).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Events evicted from the head of the ring.
    pub fn dropped(&self) -> u64 {
        self.total - self.events.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Copies the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().copied().collect()
    }
}

impl Tracer for FlightRecorder {
    fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(event);
        self.total += 1;
    }
}

/// A cloneable handle to a shared [`FlightRecorder`].
///
/// Event sites across the testbed (hypervisor, RTOS guest, injectors,
/// the system step loop) each hold a clone; they all feed the same
/// ring. The mutex is uncontended in practice — a trial is
/// single-threaded — and absent entirely on the untraced path, where
/// components hold `None` instead.
#[derive(Debug, Clone)]
pub struct TraceLog(Arc<Mutex<FlightRecorder>>);

impl TraceLog {
    /// A fresh log over a recorder of the given capacity.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog(Arc::new(Mutex::new(FlightRecorder::new(capacity))))
    }

    /// Records one event.
    pub fn record(&self, event: TraceEvent) {
        self.0.lock().expect("trace log poisoned").record(event);
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.0.lock().expect("trace log poisoned").snapshot()
    }

    /// Events ever recorded, including evicted ones.
    pub fn total(&self) -> u64 {
        self.0.lock().expect("trace log poisoned").total()
    }

    /// Events evicted from the head of the ring.
    pub fn dropped(&self) -> u64 {
        self.0.lock().expect("trace log poisoned").dropped()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(step: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            step,
            cpu: 0,
            kind,
            arg_a: 0,
            arg_b: 0,
        }
    }

    #[test]
    fn kind_codes_round_trip() {
        for (index, kind) in TraceKind::ALL.iter().enumerate() {
            assert_eq!(kind.code() as usize, index);
            assert_eq!(TraceKind::from_code(kind.code()), Some(*kind));
        }
        assert_eq!(TraceKind::from_code(TraceKind::ALL.len() as u8), None);
    }

    #[test]
    fn kind_names_are_unique() {
        let mut names: Vec<_> = TraceKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), TraceKind::ALL.len());
    }

    #[test]
    fn recorder_evicts_oldest_and_counts_drops() {
        let mut recorder = FlightRecorder::new(3);
        for step in 0..5 {
            recorder.record(event(step, TraceKind::HandlerEntry));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.total(), 5);
        assert_eq!(recorder.dropped(), 2);
        let steps: Vec<u64> = recorder.events().map(|e| e.step).collect();
        assert_eq!(steps, vec![2, 3, 4]);
    }

    #[test]
    fn recorder_capacity_floor_is_one() {
        let mut recorder = FlightRecorder::new(0);
        assert_eq!(recorder.capacity(), 1);
        recorder.record(event(1, TraceKind::WatchdogBite));
        recorder.record(event(2, TraceKind::WatchdogBite));
        assert_eq!(recorder.len(), 1);
        assert_eq!(recorder.snapshot()[0].step, 2);
    }

    #[test]
    fn log_clones_share_one_ring() {
        let log = TraceLog::new(8);
        let clone = log.clone();
        log.record(event(1, TraceKind::InjectionApplied));
        clone.record(event(2, TraceKind::ClassifyVerdict));
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].step, 1);
        assert_eq!(events[1].step, 2);
        assert_eq!(clone.total(), 2);
        assert_eq!(clone.dropped(), 0);
    }

    #[test]
    fn null_tracer_swallows_events() {
        let mut tracer = NullTracer;
        tracer.record(event(1, TraceKind::TrapTaken));
    }
}

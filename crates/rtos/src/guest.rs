//! The RTOS cell payload: a [`Guest`] implementation that boots the
//! FreeRTOS-like kernel with the paper's workload.

use crate::kernel::Rtos;
use crate::task::TaskId;
use crate::workload;
use certify_arch::IrqId;
use certify_board::memmap;
use certify_hypervisor::{Guest, GuestCtx, GuestHealth};
use certify_obs::trace::{TraceEvent, TraceKind, TraceLog};
use std::fmt;

/// The non-root cell guest of the paper: FreeRTOS with the blink /
/// send-receive / float / integer task set.
pub struct RtosGuest {
    kernel: Rtos,
    expected_entry: u32,
    health: GuestHealth,
    booted: bool,
    banner_printed: bool,
    /// Set when a wild hypervisor store corrupted this cell's memory:
    /// the next slice dereferences the mangled state and faults.
    pending_corruption: bool,
    /// Whether the workload includes the E5b safety-heartbeat task.
    with_heartbeat: bool,
    /// Booted, healthy, banner printed, no corruption pending: the
    /// per-slice fast path, re-derived whenever any of those change.
    steady: bool,
    /// The causal trace sink, if a flight recorder is attached; the
    /// guest records scheduler decisions into it.
    tracer: Option<TraceLog>,
}

impl RtosGuest {
    /// Creates the guest for a cell whose configured entry point is
    /// `expected_entry` (usually
    /// [`certify_hypervisor::SystemConfig::freertos_cell`]'s `entry`).
    pub fn new(expected_entry: u32) -> RtosGuest {
        Self::build(expected_entry, false)
    }

    /// Like [`RtosGuest::new`], with the safety-heartbeat task added
    /// to the workload (extension experiment E5b).
    pub fn with_heartbeat(expected_entry: u32) -> RtosGuest {
        Self::build(expected_entry, true)
    }

    fn build(expected_entry: u32, with_heartbeat: bool) -> RtosGuest {
        let mut kernel = Rtos::new("freertos-demo");
        if with_heartbeat {
            workload::spawn_paper_workload_with_heartbeat(&mut kernel);
        } else {
            workload::spawn_paper_workload(&mut kernel);
        }
        RtosGuest {
            kernel,
            expected_entry,
            health: GuestHealth::Healthy,
            booted: false,
            banner_printed: false,
            pending_corruption: false,
            with_heartbeat,
            steady: false,
            tracer: None,
        }
    }

    /// Attaches a causal trace log; every scheduler decision is
    /// recorded into it.
    pub fn set_tracer(&mut self, tracer: TraceLog) {
        self.tracer = Some(tracer);
    }

    fn trace_sched(&self, ctx: &GuestCtx<'_>, picked: Option<TaskId>) {
        if let (Some(tracer), Some(task)) = (&self.tracer, picked) {
            tracer.record(TraceEvent {
                step: ctx.now(),
                cpu: ctx.cpu.0,
                kind: TraceKind::SchedDecision,
                arg_a: task.0 as u64,
                arg_b: 0,
            });
        }
    }

    /// The guest's kernel (scheduler statistics for the analysis).
    pub fn kernel(&self) -> &Rtos {
        &self.kernel
    }

    /// Whether the guest was ever entered.
    pub fn is_booted(&self) -> bool {
        self.booted
    }
}

impl fmt::Debug for RtosGuest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RtosGuest")
            .field("health", &self.health)
            .field("booted", &self.booted)
            .finish()
    }
}

impl Guest for RtosGuest {
    fn name(&self) -> &str {
        "freertos"
    }

    fn step(&mut self, ctx: &mut GuestCtx<'_>) {
        // Hot path: a healthy, booted, banner-printed guest just runs
        // its next slice.
        if self.steady {
            let picked = self.kernel.run_slice(ctx);
            self.trace_sched(ctx, picked);
            if ctx.parked() {
                self.health = GuestHealth::HardFault;
                self.steady = false;
            }
            return;
        }
        if !self.booted || !self.health.is_alive() {
            // A broken or never-booted guest produces nothing — the
            // blank USART of experiment E2.
            return;
        }
        if self.pending_corruption {
            // The mangled kernel structure is dereferenced: a wild
            // store escapes the cell and the stage-2 violation parks
            // the CPU (fault contained to this cell).
            self.pending_corruption = false;
            self.health = GuestHealth::HardFault;
            ctx.ram_write32(memmap::ROOT_RAM_BASE + 0x10, 0xdead_dead);
            return;
        }
        if !self.banner_printed {
            self.banner_printed = true;
            let line = format!(
                "[rtos] FreeRTOS boot: {} tasks ready\n",
                self.kernel.task_count()
            );
            ctx.console_print(&line);
            if ctx.parked() {
                return;
            }
        }
        self.steady = true;
        let picked = self.kernel.run_slice(ctx);
        self.trace_sched(ctx, picked);
        if ctx.parked() {
            // The slice triggered an unrecoverable trap; stop making
            // progress.
            self.health = GuestHealth::HardFault;
            self.steady = false;
        }
    }

    fn on_tick(&mut self, _ctx: &mut GuestCtx<'_>) {
        if self.booted && self.health.is_alive() {
            self.kernel.tick();
        }
    }

    fn on_irq(&mut self, _irq: IrqId, _ctx: &mut GuestCtx<'_>) {
        // The workload uses no SPIs; ivshmem doorbells are absorbed.
    }

    fn on_reset(&mut self, entry: u32) {
        // A (re)start reloads the image: fresh kernel, fresh banner.
        // The very first boot of a never-entered guest reuses the
        // pristine kernel built at construction instead of spawning
        // the whole task set again (per-trial setup cost).
        if self.booted || self.kernel.total_slices() > 0 || self.kernel.tick_count() > 0 {
            let mut kernel = Rtos::new("freertos-demo");
            if self.with_heartbeat {
                workload::spawn_paper_workload_with_heartbeat(&mut kernel);
            } else {
                workload::spawn_paper_workload(&mut kernel);
            }
            self.kernel = kernel;
        }
        self.banner_printed = false;
        self.pending_corruption = false;
        self.steady = false;
        self.booted = true;
        if entry == self.expected_entry {
            self.health = GuestHealth::Healthy;
        } else {
            // Entered at a corrupted address: never becomes
            // executable (E2's second leg).
            self.health = GuestHealth::Broken;
        }
    }

    fn on_memory_corrupted(&mut self) {
        if self.health.is_alive() {
            self.pending_corruption = true;
            self.steady = false;
        }
    }

    fn health(&self) -> GuestHealth {
        self.health
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use certify_arch::CpuId;
    use certify_board::Machine;
    use certify_hypervisor::{Hypervisor, SystemConfig};

    fn ctx_parts() -> (Machine, Hypervisor) {
        let machine = Machine::new_banana_pi();
        let hv = Hypervisor::new(SystemConfig::banana_pi_demo());
        (machine, hv)
    }

    #[test]
    fn unbooted_guest_is_silent() {
        let (mut machine, mut hv) = ctx_parts();
        let mut guest = RtosGuest::new(0x7010_8000);
        let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
        guest.step(&mut ctx);
        assert_eq!(machine.uart.byte_count(), 0);
        assert!(!guest.is_booted());
    }

    #[test]
    fn reset_at_expected_entry_boots_healthy() {
        let mut guest = RtosGuest::new(0x7010_8000);
        guest.on_reset(0x7010_8000);
        assert!(guest.is_booted());
        assert_eq!(guest.health(), GuestHealth::Healthy);
    }

    #[test]
    fn reset_at_wrong_entry_is_broken_and_silent() {
        let (mut machine, mut hv) = ctx_parts();
        let mut guest = RtosGuest::new(0x7010_8000);
        guest.on_reset(0x7010_8010);
        assert_eq!(guest.health(), GuestHealth::Broken);
        let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
        guest.step(&mut ctx);
        guest.step(&mut ctx);
        // The blank-USART signature of E2.
        assert_eq!(machine.uart.byte_count(), 0);
    }

    #[test]
    fn memory_corruption_leads_to_contained_hard_fault() {
        let (mut machine, mut hv) = ctx_parts();
        let mut guest = RtosGuest::new(0x7010_8000);
        guest.on_reset(0x7010_8000);
        guest.on_memory_corrupted();
        let mut ctx = GuestCtx::new(CpuId(1), &mut machine, &mut hv);
        guest.step(&mut ctx);
        assert_eq!(guest.health(), GuestHealth::HardFault);
    }

    #[test]
    fn corruption_after_death_is_ignored() {
        let mut guest = RtosGuest::new(0x7010_8000);
        guest.on_reset(0x7010_9999);
        assert_eq!(guest.health(), GuestHealth::Broken);
        guest.on_memory_corrupted();
        assert!(!guest.pending_corruption);
    }
}
